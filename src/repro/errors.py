"""Exception hierarchy for the staircase join reproduction.

Every error raised by this package derives from :class:`ReproError`, so that
callers can catch package-level failures with a single ``except`` clause while
still being able to distinguish parsing problems from storage or query
evaluation problems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "XMLSyntaxError",
    "EncodingError",
    "StorageError",
    "StoreNotFoundError",
    "BTreeError",
    "XPathSyntaxError",
    "XPathEvaluationError",
    "PlanError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class XMLSyntaxError(ReproError):
    """Raised when XML text cannot be parsed.

    Carries the (1-based) line and column of the offending position when
    known, mirroring the conventions of familiar XML parsers.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class EncodingError(ReproError):
    """Raised when a document cannot be pre/post encoded or a DocTable is
    constructed from inconsistent columns."""


class StorageError(ReproError):
    """Raised on misuse of the column-store substrate (BATs, columns)."""


class StoreNotFoundError(ReproError, FileNotFoundError):
    """Raised when a path given as a sharded store is not one (no
    manifest).  Also a :class:`FileNotFoundError`, so callers that treat
    missing inputs uniformly (e.g. the CLI's usage-error exit code)
    need only one ``except`` clause."""


class BTreeError(StorageError):
    """Raised on invalid B+-tree operations (e.g. duplicate insert of a
    unique key, malformed key tuples)."""


class XPathSyntaxError(ReproError):
    """Raised when an XPath expression cannot be tokenised or parsed."""

    def __init__(
        self, message: str, position: int = -1, expression: str = ""
    ) -> None:
        self.position = position
        self.expression = expression
        if position >= 0 and expression:
            pointer = " " * position + "^"
            message = f"{message}\n  {expression}\n  {pointer}"
        super().__init__(message)


class XPathEvaluationError(ReproError):
    """Raised when a parsed XPath expression cannot be evaluated (e.g. an
    axis not supported by the chosen execution strategy)."""


class PlanError(ReproError):
    """Raised when the tree-unaware SQL engine is given an invalid plan."""


class WorkloadError(ReproError):
    """Raised by the experiment harness for unknown workloads/scales."""
