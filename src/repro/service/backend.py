"""Execution backends: how a query batch fans out over the shards.

The :class:`~repro.service.service.QueryService` compiles a batch into
``(plan, engine, document, mode)`` items and hands them to an
**execution backend** — the single object that owns worker lifecycle
and result transport.  All backends run the exact same per-shard code
(:class:`~repro.service.executor.ShardWorkerState`) and produce the
exact same :class:`~repro.service.executor.ShardResult` values, so the
choice is purely an execution-strategy one:

============  ======================================================
``serial``    In-process, zero worker processes.  The reference path
              (and the right choice under ``update``-heavy loads or
              in tests).
``pool``      A lazily created ``multiprocessing.Pool``; results are
              pickled back through the pool pipe.
``fabric``    Long-lived workers with **shard affinity** whose
              ``materialize`` payloads travel through shared-memory
              segments instead of pickle
              (:class:`~repro.service.fabric.FabricBackend`).
============  ======================================================

Construct one with :func:`make_backend` (or pass an instance /
spec string to ``QueryService(backend=...)``).  The historical
``workers=N`` sentinel still works everywhere it used to, through a
deprecation shim (:func:`resolve_backend`): ``workers=0`` maps to
``serial``, ``workers>0`` to ``pool``.  The ``REPRO_BACKEND``
environment variable supplies the *default* spec when neither
``backend`` nor ``workers`` is given — the hook the CI backend matrix
uses to run one test suite per backend.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.service.executor import (
    ShardResult,
    ShardTask,
    ShardWorkerState,
    _item_mode,
    _pool_init,
    _pool_run_group,
    _split_for_pool,
    default_workers,
)
from repro.service.store import ShardedStore
from repro.xpath.pipeline import MODES

__all__ = [
    "BACKEND_ENV",
    "ExecutionBackend",
    "PoolBackend",
    "SerialBackend",
    "make_backend",
    "resolve_backend",
]

#: Environment variable supplying the default backend spec (e.g.
#: ``serial``, ``pool``, ``pool:4``, ``fabric``) when a caller passes
#: neither ``backend`` nor ``workers``.  Explicit arguments always win.
BACKEND_ENV = "REPRO_BACKEND"


class ExecutionBackend:
    """Template for executing compiled query batches over the shards.

    Subclasses implement :meth:`_dispatch` — take per-shard task
    groups, return every group's :class:`ShardResult` list — and may
    override :meth:`close` to release workers.  Expansion (query ×
    shard → :class:`ShardTask`) and merging (shard results → one
    payload per item, global document order) live here so every
    backend answers byte-identically.
    """

    #: Registry name (``make_backend`` spec, CLI ``--backend`` value).
    name: str = "?"

    def __init__(self, store: ShardedStore):
        self.store = store

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Worker process count (0 = in-process)."""
        return 0

    def run_batch(self, items: Sequence[Sequence], sink: Optional[list] = None) -> List:
        """Evaluate a batch of ``(plan, engine, document[, mode])`` items.

        Returns, per item, the merged payload of the item's result
        mode: a mapping of document name → document-relative preorder
        ranks (``materialize``) or → cardinality (``count``), in global
        document order (scoped items report their single document
        only); ``exists`` items merge to one boolean — shard payloads
        are OR-ed together instead of concatenated.

        When ``sink`` (a list) is given, the batch is *observed*: every
        eligible task carries the observation layer and the resulting
        :class:`~repro.feedback.records.DriveObservation` stream is
        appended to ``sink``.  The service passes a sink on sampled
        batches only, so the hot path stays unobserved.
        """
        order = self.store.document_names()
        tasks = self._expand(items, observe=sink is not None)
        # One dispatch unit per shard: the worker holding a shard sees
        # the whole batch's plans for it and shares their prefixes.
        groups: Dict[int, List[ShardTask]] = {}
        for task in tasks:
            groups.setdefault(task.shard_id, []).append(task)
        outcomes = self._dispatch(list(groups.values()))
        if sink is not None:
            for result in outcomes:
                sink.extend(result.observations)
        return self._merge(items, outcomes, order)

    def _dispatch(
        self, grouped: List[List[ShardTask]]
    ) -> List[ShardResult]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _expand(
        self, items: Sequence[Sequence], observe: bool = False
    ) -> List[ShardTask]:
        feedback = getattr(self.store, "feedback", None)
        tasks = []
        for index, item in enumerate(items):
            plan, engine, document = item[0], item[1], item[2]
            mode = _item_mode(item)
            if mode not in MODES:
                raise ReproError(
                    f"unknown result mode {mode!r} (expected one of {MODES})"
                )
            if document is not None:
                shard_ids = [self.store.shard_of(document)]
            else:
                shard_ids = self.store.shard_ids()
            for shard_id in shard_ids:
                entry = self.store.shard_entry(shard_id)
                # Per-shard scalar skip override: measured skip efficacy
                # outranks the plan's plane-size heuristic.
                skip = (
                    feedback.tuned_skip_mode(shard_id)
                    if feedback is not None and engine == "scalar"
                    else None
                )
                tasks.append(
                    ShardTask(
                        index=index,
                        shard_id=shard_id,
                        shard_file=entry["file"],
                        names=tuple(entry["documents"]),
                        plan=plan,
                        engine=engine,
                        document=document,
                        mode=mode,
                        skip_mode=skip,
                        # Scoped and exists drives yield biased partial
                        # cardinalities — never observe them.
                        observe=observe and document is None and mode != "exists",
                    )
                )
        return tasks

    def _merge(
        self,
        items: Sequence[Sequence],
        outcomes: Sequence[ShardResult],
        order: Sequence[str],
    ) -> List:
        per_item: List[Optional[dict]] = [None] * len(items)
        exists: Dict[int, bool] = {}
        for result in outcomes:
            if result.mode == "exists":
                # OR the shard booleans instead of concatenating arrays.
                exists[result.index] = exists.get(result.index, False) or result.found
            else:
                if per_item[result.index] is None:
                    per_item[result.index] = {}
                per_item[result.index].update(result.payload)
        merged = []
        for index, (item, collected) in enumerate(zip(items, per_item)):
            document, mode = item[2], _item_mode(item)
            if mode == "exists":
                merged.append(exists.get(index, False))
                continue
            collected = collected if collected is not None else {}
            if document is not None:
                merged.append({document: collected[document]})
                continue
            # Global document order (snapshotted at batch start — a
            # racing update may add/drop members mid-flight; only names
            # present in both the snapshot and the results are reported).
            merged.append(
                {name: collected[name] for name in order if name in collected}
            )
        return merged

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release worker resources (idempotent; serial has none)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """In-process execution: one :class:`ShardWorkerState`, no workers."""

    name = "serial"

    def __init__(self, store: ShardedStore):
        super().__init__(store)
        self._serial_state: Optional[ShardWorkerState] = None

    def _dispatch(self, grouped: List[List[ShardTask]]) -> List[ShardResult]:
        if self._serial_state is None:
            self._serial_state = ShardWorkerState(
                self.store.directory, mmap=self.store.mmap
            )
        return [
            outcome
            for group in grouped
            for outcome in self._serial_state.run_group(group)
        ]


class PoolBackend(ExecutionBackend):
    """A lazily created ``multiprocessing.Pool`` of shard workers.

    Shard columns arrive memory-mapped in every worker, so the pool
    shares one page-cache copy of each shard file; results come back
    *pickled* through the pool pipe — the cost the fabric backend's
    shared-memory planes remove for ``materialize``.
    """

    name = "pool"

    def __init__(self, store: ShardedStore, workers: Optional[int] = None):
        super().__init__(store)
        if workers is not None and workers < 0:
            raise ReproError("workers must be >= 0")
        self._workers = (
            default_workers(store) if not workers else int(workers)
        )
        self._pool = None

    @property
    def workers(self) -> int:
        return self._workers

    def _dispatch(self, grouped: List[List[ShardTask]]) -> List[ShardResult]:
        # Fewer shards than workers would leave workers idle and
        # serialise whole query batches behind one process; split the
        # groups (contiguously — adjacent batch queries are the
        # likeliest prefix-sharers) until the pool is fed.
        batches = self._ensure_pool().map(
            _pool_run_group, _split_for_pool(grouped, self._workers)
        )
        return [outcome for batch in batches for outcome in batch]

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = multiprocessing.get_context().Pool(
                processes=self._workers,
                initializer=_pool_init,
                initargs=(self.store.directory, self.store.mmap),
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


def parse_backend_spec(spec: str) -> tuple:
    """Split ``"name[:N]"`` into ``(name, workers-or-None)``.

    Raises :class:`ReproError` on an unknown name or a malformed count
    — shared by :func:`make_backend` and the CLI's argument validation
    (which maps it to a usage error).
    """
    name, _, suffix = spec.partition(":")
    name = name.strip().lower()
    if name not in ("serial", "pool", "fabric"):
        raise ReproError(
            f"unknown backend {name!r} (expected serial, pool, or fabric)"
        )
    workers = None
    if suffix:
        try:
            workers = int(suffix)
        except ValueError:
            raise ReproError(f"bad worker count in backend spec {spec!r}")
    return name, workers


def make_backend(
    spec, store: ShardedStore, workers: Optional[int] = None
) -> ExecutionBackend:
    """Build a backend from a spec.

    ``spec`` is a backend instance (returned as-is), a name
    (``"serial"``, ``"pool"``, ``"fabric"``), or a ``"name:N"`` string
    fixing the worker count (``"pool:4"``).  An explicit ``workers``
    argument overrides the suffix.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if not isinstance(spec, str):
        raise ReproError(f"not a backend spec: {spec!r}")
    name, suffix_workers = parse_backend_spec(spec)
    if workers is None:
        workers = suffix_workers
    if name == "serial":
        return SerialBackend(store)
    if name == "pool":
        return PoolBackend(store, workers=workers)
    from repro.service.fabric import FabricBackend

    return FabricBackend(store, workers=workers)


#: Sentinel distinguishing "argument not passed" from an explicit None.
_UNSET = object()


def resolve_backend(
    store: ShardedStore, backend=None, workers=_UNSET
) -> ExecutionBackend:
    """Resolve ``QueryService``'s ``backend``/``workers`` arguments.

    Precedence: an explicit ``backend`` wins; else an explicit
    ``workers`` count is honoured through the deprecation shim
    (``0`` → serial, else pool — the historical sentinel); else the
    ``REPRO_BACKEND`` environment variable names the default; else a
    pool sized by :func:`~repro.service.executor.default_workers`.
    """
    if backend is not None:
        if workers is not _UNSET and workers is not None:
            raise ReproError("pass backend= or workers=, not both")
        return make_backend(backend, store)
    if workers is not _UNSET and workers is not None:
        warnings.warn(
            "QueryService(workers=...) is deprecated; use "
            "backend='serial'/'pool'/'fabric' (or a backend instance)",
            DeprecationWarning,
            stacklevel=3,
        )
        if workers == 0:
            return SerialBackend(store)
        return PoolBackend(store, workers=workers)
    spec = os.environ.get(BACKEND_ENV)
    if spec:
        return make_backend(spec, store)
    return PoolBackend(store)
