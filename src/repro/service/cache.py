"""Bounded LRU caching for the query service.

Two caches keep the service's hot path away from the parser and the
engines entirely:

* the **plan cache** maps query text to its parsed AST, so each distinct
  query is lexed/parsed once per service lifetime;
* the **result cache** maps ``(shard_epoch, query, engine, scope,
  mode)`` to a finished :class:`~repro.service.service.ServiceResult`
  payload — the result mode is part of the key, so a ``count`` answer
  can never satisfy a ``materialize`` lookup.  The epoch component is
  the staleness guard: replacing a shard bumps the store epoch, so
  every key minted before the replacement can never be looked up again
  — stale entries simply age out of the LRU order.

The cache is a plain ``OrderedDict`` under a lock: the service fans work
out to *processes* (which never share this memory), so the lock only has
to cover concurrent use of one service object from multiple threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable

from repro.errors import ReproError

__all__ = ["LRUCache"]


class LRUCache:
    """A thread-safe, bounded, least-recently-used mapping.

    ``get`` refreshes recency and counts hits/misses; ``put`` evicts the
    coldest entry once ``capacity`` is exceeded.  A capacity of zero
    disables the cache (every ``get`` misses, ``put`` is a no-op), which
    gives callers a uniform "caching off" spelling.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ReproError("cache capacity must be non-negative")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()  # guarded-by: _lock
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return default

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        # Reading the OrderedDict while ``put`` evicts from another
        # thread is a data race; even "just a read" takes the lock.
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        """Drop every entry *and* the hit/miss counters.

        ``clear()`` marks an epoch boundary (shard replacement, update
        batch): counters restart with the entries, so ``serve-batch
        --stats`` reports per-epoch hit rates instead of numbers
        polluted across update batches.
        """
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def reset_stats(self) -> None:
        """Zero the hit/miss counters without touching the entries
        (measure a warm cache over a fresh observation window)."""
        with self._lock:
            self.hits = 0
            self.misses = 0

    def info(self) -> Dict[str, int]:
        """Occupancy and hit statistics (for ``serve-batch --stats``)."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.info()
        return (
            f"LRUCache(size={stats['size']}, capacity={self.capacity}, "
            f"hits={stats['hits']}, misses={stats['misses']})"
        )
