"""Query serving over sharded, persisted document collections.

The paper encodes one document and answers one query at a time; this
package turns that into a servable system:

* :class:`~repro.service.store.ShardedStore` — documents partitioned
  into persisted collection shards (memory-mapped, epoch-versioned);
* :class:`~repro.service.cache.LRUCache` — bounded caches for parsed
  plans and finished results;
* :class:`~repro.service.executor.ShardExecutor` — serial or
  multiprocessing fan-out of (query, shard) tasks with pre-ordered
  merge;
* :class:`~repro.service.service.QueryService` — the front door:
  ``execute`` / ``execute_batch`` with plan + result caching, and
  ``apply_updates`` for the live write path;
* :class:`~repro.service.updates.UpdateOp` — the write-path vocabulary
  (document add/remove/update plus subtree insert/delete/replace),
  with :func:`~repro.service.updates.parse_ops` for the JSON ops-file
  format.

CLI: ``python -m repro shard`` builds a store, ``python -m repro
serve-batch`` runs query batches against one, ``python -m repro
update`` applies an ops file to one.
"""

from repro.service.cache import LRUCache
from repro.service.executor import (
    ShardExecutor,
    ShardWorkerState,
    available_cpus,
    default_workers,
)
from repro.service.service import QueryService, ServiceResult
from repro.service.store import ShardedStore
from repro.service.updates import UpdateOp, parse_ops

__all__ = [
    "LRUCache",
    "available_cpus",
    "ShardExecutor",
    "ShardWorkerState",
    "default_workers",
    "QueryService",
    "ServiceResult",
    "ShardedStore",
    "UpdateOp",
    "parse_ops",
]
