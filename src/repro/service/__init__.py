"""Query serving over sharded, persisted document collections.

The paper encodes one document and answers one query at a time; this
package turns that into a servable system:

* :class:`~repro.service.store.ShardedStore` — documents partitioned
  into persisted collection shards (memory-mapped, epoch-versioned);
* :class:`~repro.service.cache.LRUCache` — bounded caches for parsed
  plans and finished results;
* :class:`~repro.service.backend.ExecutionBackend` — how batches fan
  out over the shards: :class:`~repro.service.backend.SerialBackend`
  (in-process), :class:`~repro.service.backend.PoolBackend`
  (multiprocessing, pickled results), or
  :class:`~repro.service.fabric.FabricBackend` (long-lived
  shard-affine workers returning ``materialize`` payloads through
  shared-memory segments), all with the same pre-ordered merge;
* :class:`~repro.service.service.QueryService` — the front door:
  ``execute`` / ``execute_batch`` with plan + result caching, and
  ``apply_updates`` for the live write path;
* :class:`~repro.service.updates.UpdateOp` — the write-path vocabulary
  (document add/remove/update plus subtree insert/delete/replace),
  with :func:`~repro.service.updates.parse_ops` for the JSON ops-file
  format.

CLI: ``python -m repro shard`` builds a store, ``python -m repro
serve-batch`` runs query batches against one, ``python -m repro
update`` applies an ops file to one.
"""

from repro.service.backend import (
    ExecutionBackend,
    PoolBackend,
    SerialBackend,
    make_backend,
)
from repro.service.cache import LRUCache
from repro.service.executor import (
    ShardExecutor,
    ShardResult,
    ShardWorkerState,
    available_cpus,
    default_workers,
)
from repro.service.fabric import FabricBackend
from repro.service.service import QueryService, ServiceResult
from repro.service.store import ShardedStore
from repro.service.updates import UpdateOp, parse_ops

__all__ = [
    "LRUCache",
    "available_cpus",
    "ExecutionBackend",
    "FabricBackend",
    "PoolBackend",
    "SerialBackend",
    "ShardExecutor",
    "ShardResult",
    "ShardWorkerState",
    "default_workers",
    "make_backend",
    "QueryService",
    "ServiceResult",
    "ShardedStore",
    "UpdateOp",
    "parse_ops",
]
