"""Shard-level execution units shared by every execution backend.

Each unit of work is a :class:`ShardTask`: run one compiled
:class:`~repro.xpath.pipeline.PhysicalPlan` against one shard and
return a :class:`ShardResult` carrying the payload of the task's
**result mode** — per-document *relative* preorder ranks
(``materialize``), per-document cardinalities (``count``), or a single
shard-level boolean (``exists``).  The same :class:`ShardWorkerState`
object executes tasks for every backend:

* :class:`~repro.service.backend.SerialBackend` — in-process (the
  serial reference path; also what the tests cover line-by-line);
* :class:`~repro.service.backend.PoolBackend` — a ``multiprocessing``
  pool whose initializer opens the store read-only in every worker.
  Shard columns arrive memory-mapped (``persist.load(mmap=True)``), so
  all workers share one page-cache copy of each shard file; only the
  task tuples and the result payloads cross the process boundary — for
  ``count``/``exists`` that payload is a handful of integers instead of
  rank arrays;
* :class:`~repro.service.fabric.FabricBackend` — long-lived workers
  with shard affinity that return ``materialize`` payloads through
  shared-memory segments instead of pickle.

Tasks are dispatched *grouped by shard* (one pool item per shard, not
per query × shard): a worker holding a whole batch's plans for one
shard factors them into an **operator-prefix trie** and evaluates each
distinct pipeline prefix once — eight queries opening with
``/site/open_auctions/open_auction`` pay for that chain once, not eight
times (:meth:`ShardWorkerState.run_group`), and a ``count`` or
``exists`` query shares every prefix with a materializing one because
the terminal is not part of the prefix.  ``exists`` tasks additionally
leave the trie at their final producing operator, which is then driven
over geometrically growing context chunks and stops at the first hit
(:func:`~repro.xpath.pipeline.exists_tail`).  Intermediate context
arrays are kept in a per-worker, byte-budgeted LRU keyed by
``(shard file, engine, operator prefix)``; the shard file name carries
the store epoch (``shard-0000.e0005.npz``), so the same epoch fencing
that protects the result cache makes stale prefix entries unreachable
after any commit.

Plans are parsed, planned, and compiled once in the service process and
sent to workers pickled — workers never touch the XPath parser (raw
query strings and uncompiled plans are still accepted and compiled on
arrival, for direct callers).  Worker-side collections and evaluators
are cached per shard *file*, so a replaced shard (new file name) is
picked up on the next task without restarting the pool.
"""

from __future__ import annotations

import contextlib
import os
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.core.staircase import SkipMode
from repro.errors import ReproError
from repro.feedback.records import DriveObservation, PipelineObserver
from repro.service.cache import LRUCache
from repro.service.store import ShardedStore
from repro.xpath.axes import DOCUMENT_CONTEXT
from repro.xpath.evaluator import Evaluator, parse_with_cache
from repro.xpath.pipeline import (
    PhysicalPlan,
    compile_plan,
    dispatch,
    drive,
    exists_ready,
    exists_tail,
)

__all__ = [
    "PrefixContextCache",
    "ShardExecutor",
    "ShardResult",
    "ShardTask",
    "ShardWorkerState",
    "available_cpus",
    "default_workers",
]


class ShardTask(NamedTuple):
    """One (query, shard) evaluation unit."""

    index: int  #: position of the query in the batch
    shard_id: int
    shard_file: str  #: file name relative to the store directory
    names: Tuple[str, ...]  #: member documents, in shard order
    plan: object  #: compiled PhysicalPlan (or QueryPlan / AST / string)
    engine: str
    document: Optional[str]  #: scope to one member, or None for the shard
    mode: str = "materialize"  #: result mode: materialize | count | exists
    #: Feedback-tuned scalar SkipMode override, as the enum's *value*
    #: string (kept primitive so the task pickles cheaply), or None to
    #: honour the plan's choice.
    skip_mode: Optional[str] = None
    #: Sample this drive into the feedback loop (attach the observation
    #: layer and return a DriveObservation with the result).
    observe: bool = False


@dataclass(frozen=True)
class ShardResult:
    """One shard's answer to one query of a batch.

    Exactly one of the three payload fields is meaningful, selected by
    ``mode`` — ``ranks`` (document name → document-relative preorder
    ranks) for ``materialize``, ``counts`` (document name →
    cardinality) for ``count``, ``found`` for ``exists``.  Every
    backend produces and merges the same shape: the serial and pool
    paths pickle it whole, while the fabric ships ``ranks`` through a
    shared-memory segment and rebuilds the dataclass around zero-copy
    views on arrival.
    """

    index: int  #: position of the query in the batch
    shard_id: int
    mode: str = "materialize"
    ranks: Dict[str, np.ndarray] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)
    found: bool = False
    #: DriveObservations of sampled (``observe=True``) tasks — empty on
    #: the unobserved hot path, at most one entry per task.
    observations: tuple = ()

    @classmethod
    def of(cls, task: "ShardTask", payload) -> "ShardResult":
        """Wrap a mode-shaped worker payload for ``task``."""
        if task.mode == "exists":
            return cls(task.index, task.shard_id, "exists", found=bool(payload))
        if task.mode == "count":
            return cls(task.index, task.shard_id, "count", counts=dict(payload))
        return cls(task.index, task.shard_id, "materialize", ranks=dict(payload))

    @property
    def payload(self):
        """The mode's natural payload (rank mapping, counts, or bool)."""
        if self.mode == "exists":
            return self.found
        if self.mode == "count":
            return self.counts
        return self.ranks


def available_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.sched_getaffinity`` respects container/cgroup CPU masks (the
    common CI case), where ``os.cpu_count`` reports the whole machine
    and would oversubscribe the pool; platforms without affinity fall
    back to the plain count.
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def default_workers(store: ShardedStore) -> int:
    """Auto worker count: one per shard, capped by the usable CPUs."""
    return max(1, min(store.shard_count, available_cpus()))


#: How often a worker will chase a shard file that commits keep
#: replacing under it before giving up (each retry reads a strictly
#: newer manifest, so this only trips on a pathological commit storm).
_FALL_FORWARD_ATTEMPTS = 10


class _ShardVanished(Exception):
    """The task's shard was dropped from the store mid-flight."""


class PrefixContextCache(LRUCache):
    """An LRU of intermediate context arrays, bounded by total *bytes*.

    Entries are O(plane-size) ``int64`` arrays — a count-bounded LRU
    could pin hundreds of MB per worker on large shards (and stale
    epochs' entries only age out, they are never swept).  Bounding by
    bytes keeps every worker's footprint fixed; an array bigger than
    the whole budget is simply not cached (the trie still shares it
    within the batch — the cache only accelerates *cross*-batch reuse).
    """

    #: Charged per entry on top of the array payload: keys are
    #: (shard-file string, engine, tuple-of-operators) plus OrderedDict
    #: slots — without this, thousands of empty-array entries (absent
    #: tags, selective prefixes) would never trigger eviction.
    ENTRY_OVERHEAD = 512

    def __init__(self, budget_bytes: int = 32 << 20, capacity: int = 4096):
        # Both bounds apply: bytes for the array payloads, entry count
        # as a backstop for key/bookkeeping overhead.
        super().__init__(capacity=capacity)
        self.budget_bytes = int(budget_bytes)
        self._bytes = 0  # guarded-by: _lock

    def _cost(self, value) -> int:
        return int(value.nbytes) + self.ENTRY_OVERHEAD

    def put(self, key, value) -> None:
        if self._cost(value) > self.budget_bytes:
            return
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= self._cost(previous)
            self._entries[key] = value
            self._bytes += self._cost(value)
            while self._entries and (
                self._bytes > self.budget_bytes
                or len(self._entries) > self.capacity
            ):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= self._cost(evicted)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0

    def info(self):
        with self._lock:  # one consistent snapshot of size + bytes
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "bytes": self._bytes,
                "budget_bytes": self.budget_bytes,
            }


class ShardWorkerState:
    """Per-process execution state: open collections and evaluators.

    Lives once per worker process (module global set by the pool
    initializer) and once inside the executor for serial mode.
    """

    def __init__(
        self,
        directory: str,
        mmap: bool = True,
        plan_cache_size: int = 128,
        prefix_cache_bytes: int = 32 << 20,
    ):
        self.directory = directory
        self.mmap = mmap
        # Shared by this worker's evaluators: tasks normally carry
        # compiled pipelines, but raw query strings are accepted and
        # then parsed once.
        self.plan_cache = LRUCache(plan_cache_size)
        # Intermediate operator-prefix contexts, keyed
        # (shard file, engine, prefix) — the file name carries the epoch,
        # so every committed mutation orphans the keys minted before it.
        self.prefix_cache = PrefixContextCache(prefix_cache_bytes)
        self._collections: Dict[int, tuple] = {}
        self._evaluators: Dict[Tuple[int, str], Evaluator] = {}

    def _collection(self, task: ShardTask):
        from repro.encoding.collection import DocumentCollection
        from repro.encoding.persist import load

        cached = self._collections.get(task.shard_id)
        if cached is not None and cached[0] == task.shard_file:
            return cached[1]
        shard_file, names = task.shard_file, list(task.names)
        for _ in range(_FALL_FORWARD_ATTEMPTS):
            try:
                table = load(
                    os.path.join(self.directory, shard_file), mmap=self.mmap
                )
                break
            except FileNotFoundError:
                # The shard was mutated between task creation and
                # execution (commits unlink the superseded file).  Fall
                # forward to the manifest's current file — and retry,
                # because a further commit can unlink *that* file before
                # the load opens it.  Answering from newer data is safe:
                # the service caches this batch under the pre-update
                # epoch, which the commit just made unreachable.
                shard_file, names = self._current_entry(task.shard_id)
        else:  # pragma: no cover - needs a commit per retry to trip
            raise ReproError(
                f"shard {task.shard_id}: file replaced "
                f"{_FALL_FORWARD_ATTEMPTS} times while opening it"
            )
        collection = DocumentCollection.from_table(table, names)
        self._collections[task.shard_id] = (shard_file, collection)
        # Evaluators bound to the replaced shard's old table are dead.
        for key in [k for k in self._evaluators if k[0] == task.shard_id]:
            del self._evaluators[key]
        return collection

    def _current_entry(self, shard_id: int):
        """Re-read the manifest for a shard's live file and member names."""
        import json

        from repro.service.store import MANIFEST

        with open(os.path.join(self.directory, MANIFEST)) as f:
            manifest = json.load(f)
        for entry in manifest["shards"]:
            if entry["id"] == shard_id:
                return entry["file"], list(entry["documents"])
        raise _ShardVanished(shard_id)

    def _evaluator(self, shard_id: int, engine: str, collection) -> Evaluator:
        key = (shard_id, engine)
        evaluator = self._evaluators.get(key)
        if evaluator is None:
            evaluator = Evaluator(
                collection.doc, engine=engine, plan_cache=self.plan_cache
            )
            self._evaluators[key] = evaluator
        return evaluator

    def _pipeline(self, task: ShardTask) -> PhysicalPlan:
        """The task's compiled pipeline, in the task's result mode.

        Service-dispatched tasks already carry a :class:`PhysicalPlan`;
        direct callers may still hand a query string, a parsed AST, or a
        :class:`~repro.xpath.planner.QueryPlan` — compiled here.
        """
        plan = task.plan
        if isinstance(plan, str):
            plan = parse_with_cache(plan, self.plan_cache)
        return compile_plan(plan, mode=task.mode)

    @staticmethod
    @contextlib.contextmanager
    def _applied(
        evaluator: Evaluator, plan: PhysicalPlan, skip: Optional[str] = None
    ):
        """Apply a compiled plan's evaluator-level decisions (per-step
        pushdown set for scoped re-anchoring, scalar skip mode) for one
        evaluation, restoring the worker-cached evaluator afterwards.
        A feedback-tuned ``skip`` value string outranks the plan's
        statically chosen skip mode (the shard's measured skip efficacy
        beats any plane-size heuristic)."""
        saved = (evaluator.pushdown, evaluator._pushdown_steps, evaluator.axes.mode)
        evaluator._set_pushdown(plan.pushdown_steps)
        if skip is not None:
            evaluator.axes.mode = SkipMode(skip)
        elif plan.skip_mode is not None:
            evaluator.axes.mode = plan.skip_mode
        try:
            yield
        finally:
            evaluator.pushdown, evaluator._pushdown_steps = saved[0], saved[1]
            evaluator.axes.mode = saved[2]

    def _finish(self, task: ShardTask, collection, pres: np.ndarray):
        """Convert a shard-plane frontier into the task's mode payload."""
        if task.mode == "exists":
            return bool(len(pres))
        if task.mode == "count":
            return collection.partition_counts(pres)
        return collection.partition_relative(pres)

    def run(
        self, task: ShardTask, pipeline: Optional[PhysicalPlan] = None
    ) -> ShardResult:
        """Execute one task; returns its :class:`ShardResult`.

        A shard (or scoped document) a racing update removed mid-flight
        contributes an empty result instead of failing the batch — the
        result lands under the pre-update epoch, already unreachable.
        """
        try:
            collection = self._collection(task)
        except _ShardVanished:
            return ShardResult.of(task, self._gone(task))
        if task.document is not None and task.document not in collection:
            return ShardResult.of(task, self._gone(task))
        evaluator = self._evaluator(task.shard_id, task.engine, collection)
        if pipeline is None:
            pipeline = self._pipeline(task)
        with self._applied(evaluator, pipeline, task.skip_mode):
            if task.document is not None:
                # Scoped evaluation re-anchors the path at the member
                # root (an AST transformation), so it materializes and
                # derives count/exists from the single document's ranks.
                pres = collection.evaluate(
                    pipeline.source, document=task.document, evaluator=evaluator
                )
                if task.mode == "exists":
                    payload = bool(len(pres))
                elif task.mode == "count":
                    payload = {task.document: int(len(pres))}
                else:
                    start, _ = collection.span(task.document)
                    payload = {
                        task.document: (pres - start).astype(np.int64, copy=False)
                    }
                return ShardResult.of(task, payload)
            root = collection.doc.root
            if task.mode == "exists":
                payload = drive(pipeline, evaluator, exclude_pre=root)
            elif task.observe:
                # Sampled drive: the observation layer rides along.
                # Exists-mode tasks are never observed — their early
                # termination yields biased partial cardinalities.
                observation, pres = self._observed_drive(
                    task, collection, evaluator, pipeline
                )
                payload = self._finish(task, collection, pres)
                return replace(
                    ShardResult.of(task, payload), observations=(observation,)
                )
            else:
                pres = drive(
                    pipeline.with_mode("materialize"), evaluator, exclude_pre=root
                )
                payload = self._finish(task, collection, pres)
        return ShardResult.of(task, payload)

    def _observed_drive(
        self,
        task: ShardTask,
        collection,
        evaluator: Evaluator,
        pipeline: PhysicalPlan,
    ):
        """Drive one pipeline with the observation layer attached.

        Caller holds :meth:`_applied`.  Returns ``(observation, pres)``;
        the result frontier is byte-identical to an unobserved drive —
        observation only reads counters, it never steers execution.
        """
        observer = PipelineObserver()
        stats = evaluator.stats
        plane = getattr(collection.doc, "plane", None)
        blocks_before = (
            plane.totals()["blocks_decoded"] if plane is not None else 0
        )
        scanned_before = stats.nodes_scanned
        skipped_before = stats.nodes_skipped
        evaluator.observer = observer
        started = time.perf_counter_ns()
        try:
            pres = drive(
                pipeline.with_mode("materialize"),
                evaluator,
                exclude_pre=collection.doc.root,
            )
        finally:
            evaluator.observer = None
        elapsed = time.perf_counter_ns() - started
        blocks_after = (
            plane.totals()["blocks_decoded"] if plane is not None else 0
        )
        observation = DriveObservation(
            shard_id=task.shard_id,
            engine=task.engine,
            elapsed_ns=elapsed,
            steps=tuple(observer.steps),
            scanned=stats.nodes_scanned - scanned_before,
            skipped=stats.nodes_skipped - skipped_before,
            blocks=blocks_after - blocks_before,
        )
        return observation, pres

    # ------------------------------------------------------------------
    # Shared-prefix batch execution
    # ------------------------------------------------------------------
    def run_group(self, tasks: Sequence[ShardTask]) -> List[ShardResult]:
        """Execute one shard's slice of a whole batch.

        Planned single-branch pipelines over the whole shard are
        factored into an operator-prefix trie and evaluated one
        distinct prefix at a time (consulting the prefix cache) —
        result modes mix freely, since the terminal is not part of any
        prefix; everything else — scoped tasks, unions, unplanned
        plans — falls back to :meth:`run` per task.  Observed tasks also
        bypass the trie: a shared prefix's time and cardinality cannot
        be attributed to any one query, so sampled drives run whole.
        """
        shared: Dict[str, List[Tuple[ShardTask, PhysicalPlan]]] = {}
        outcomes: List[ShardResult] = []
        for task in tasks:
            pipeline = (
                self._pipeline(task) if task.document is None else None
            )
            if (
                pipeline is not None
                and pipeline.planned
                and pipeline.single_path
                and not task.observe
            ):
                shared.setdefault(task.engine, []).append((task, pipeline))
            else:
                outcomes.append(self.run(task, pipeline))
        for engine, group in shared.items():
            if len(group) == 1:
                # Nothing to share: the trie's bookkeeping (grouping,
                # freezing, cache writes) would be pure overhead.  Exact
                # repeats are the result cache's job, not this one's.
                outcomes.append(self.run(*group[0]))
            else:
                outcomes.extend(self._run_trie(engine, group))
        return outcomes

    def _run_trie(
        self, engine: str, members: List[Tuple[ShardTask, PhysicalPlan]]
    ) -> List[ShardResult]:
        """Evaluate same-shard pipelines, sharing operator prefixes."""
        try:
            collection = self._collection(members[0][0])
        except _ShardVanished:
            return [ShardResult.of(t, self._gone(t)) for t, _ in members]
        # The *loaded* file (fall-forward may differ from the task's
        # snapshot) keys the prefix cache, so cached contexts always
        # describe the plane they were computed on.
        shard_file = self._collections[members[0][0].shard_id][0]
        evaluator = self._evaluator(members[0][0].shard_id, engine, collection)
        outcomes: List[ShardResult] = []
        root = collection.doc.root

        def finish(task: ShardTask, collection, final) -> None:
            if final is DOCUMENT_CONTEXT:  # a bare "/" — nothing encoded
                final = np.empty(0, dtype=np.int64)
            final = final[final != root]
            outcomes.append(
                ShardResult.of(task, self._finish(task, collection, final))
            )

        def finish_exists(
            task: ShardTask, pipeline: PhysicalPlan, prefix, tail, context
        ) -> None:
            # A materializing sibling may already have cached the full
            # chain — answering from it beats re-running the tail.
            chain = prefix + tail
            cached = self.prefix_cache.get((shard_file, task.engine, chain))
            if cached is not None:
                finish(task, collection, cached)
                return
            with self._applied(evaluator, pipeline, task.skip_mode):
                hit = exists_tail(tail, evaluator, context, exclude_pre=root)
            outcomes.append(ShardResult.of(task, bool(hit)))

        def descend(members, depth: int, prefix, context) -> None:
            groups: Dict[object, list] = {}
            for task, pipeline in members:
                ops = pipeline.branches[0]
                if len(ops) == depth:
                    finish(task, collection, context)
                elif task.mode == "exists" and exists_ready(ops, depth, context):
                    # A chunkable frontier: leave the trie and drive the
                    # remaining tail over growing context chunks,
                    # stopping at the first hit.  Partial frontiers are
                    # deliberately not cached.  Document-anchored and
                    # single-node contexts have nothing to chunk — they
                    # stay in the trie and share its cache instead.
                    finish_exists(task, pipeline, prefix, ops[depth:], context)
                else:
                    groups.setdefault(ops[depth], []).append((task, pipeline))
            for op, sub in groups.items():
                child = prefix + (op,)
                key = (shard_file, engine, child)
                out = self.prefix_cache.get(key)
                if out is None:
                    with self._applied(evaluator, sub[0][1], sub[0][0].skip_mode):
                        out = dispatch(op, evaluator, context)
                    if isinstance(out, np.ndarray):
                        # Cached contexts are shared across queries and
                        # batches: freeze a view so no later consumer can
                        # mutate what another query will read.
                        out = out.view()
                        out.flags.writeable = False
                        self.prefix_cache.put(key, out)
                descend(sub, depth + 1, child, out)

        descend(members, 0, (), None)
        return outcomes

    @staticmethod
    def _gone(task: ShardTask):
        """The empty payload of a shard/document removed mid-flight."""
        if task.mode == "exists":
            return False
        if task.document is not None:
            if task.mode == "count":
                return {task.document: 0}
            return {task.document: np.empty(0, dtype=np.int64)}
        return {}


_POOL_STATE: Optional[ShardWorkerState] = None


def _pool_init(directory: str, mmap: bool) -> None:
    global _POOL_STATE
    _POOL_STATE = ShardWorkerState(directory, mmap=mmap)


def _pool_run(task: ShardTask):
    return _POOL_STATE.run(task)


def _pool_run_group(tasks: Sequence[ShardTask]):
    return _POOL_STATE.run_group(tasks)


def _split_for_pool(
    grouped: List[List[ShardTask]], workers: int
) -> List[List[ShardTask]]:
    """Split per-shard task groups into enough units to feed the pool.

    Each shard's group is cut into at most ``ceil(workers / shards)``
    contiguous chunks — query-level parallelism is restored when shards
    are scarce, while tasks that stay chunked together can still share
    operator prefixes (and every worker's prefix cache still serves
    repeat prefixes across batches).
    """
    if not grouped or len(grouped) >= workers:
        return grouped
    per_group = -(-workers // len(grouped))  # ceil
    units: List[List[ShardTask]] = []
    for group in grouped:
        chunks = min(per_group, len(group))
        size = -(-len(group) // chunks)
        units.extend(group[i : i + size] for i in range(0, len(group), size))
    return units


def _item_mode(item: Sequence) -> str:
    """Result mode of a ``run_batch`` item (3-tuples materialize)."""
    return item[3] if len(item) > 3 else "materialize"


def ShardExecutor(store: ShardedStore, workers: Optional[int] = None):
    """Deprecated: the ``workers`` sentinel mapped onto a backend.

    ``ShardExecutor(store, workers=0)`` returns a
    :class:`~repro.service.backend.SerialBackend`; any other worker
    count returns a :class:`~repro.service.backend.PoolBackend`.  New
    code should construct backends directly (or pass
    ``QueryService(backend=...)``).
    """
    from repro.service.backend import make_backend

    warnings.warn(
        "ShardExecutor is deprecated; use make_backend()/QueryService(backend=...)",
        DeprecationWarning,
        stacklevel=2,
    )
    if workers == 0:
        return make_backend("serial", store)
    return make_backend("pool", store, workers=workers)
