"""Fan a query (or a batch) across shards, serially or over processes.

Each unit of work is a :class:`ShardTask`: evaluate one parsed plan
against one shard, return per-document *relative* preorder ranks.  The
same :class:`ShardWorkerState` object executes tasks in both modes:

* ``workers=0`` — in-process, task by task (the serial reference path;
  also what the tests cover line-by-line);
* ``workers>0`` — a ``multiprocessing`` pool whose initializer opens the
  store read-only in every worker.  Shard columns arrive memory-mapped
  (``persist.load(mmap=True)``), so all workers share one page-cache
  copy of each shard file; only the task tuples and the result rank
  arrays cross the process boundary.

Plans are parsed once in the service process and shipped to workers as
pickled ASTs — workers never touch the XPath parser.  Worker-side
collections and evaluators are cached per shard *file*, so a replaced
shard (new file name) is picked up on the next task without restarting
the pool.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.service.cache import LRUCache
from repro.service.store import ShardedStore
from repro.xpath.evaluator import Evaluator

__all__ = ["ShardExecutor", "ShardTask", "ShardWorkerState", "default_workers"]


class ShardTask(NamedTuple):
    """One (query, shard) evaluation unit."""

    index: int  #: position of the query in the batch
    shard_id: int
    shard_file: str  #: file name relative to the store directory
    names: Tuple[str, ...]  #: member documents, in shard order
    plan: object  #: parsed XPath AST (or raw query string)
    engine: str
    document: Optional[str]  #: scope to one member, or None for the shard


def default_workers(store: ShardedStore) -> int:
    """Auto worker count: one per shard, capped by the machine."""
    return max(1, min(store.shard_count, os.cpu_count() or 1))


#: How often a worker will chase a shard file that commits keep
#: replacing under it before giving up (each retry reads a strictly
#: newer manifest, so this only trips on a pathological commit storm).
_FALL_FORWARD_ATTEMPTS = 10


class _ShardVanished(Exception):
    """The task's shard was dropped from the store mid-flight."""


class ShardWorkerState:
    """Per-process execution state: open collections and evaluators.

    Lives once per worker process (module global set by the pool
    initializer) and once inside the executor for serial mode.
    """

    def __init__(self, directory: str, mmap: bool = True, plan_cache_size: int = 128):
        self.directory = directory
        self.mmap = mmap
        # Shared by this worker's evaluators: tasks normally carry parsed
        # ASTs, but raw query strings are accepted and then parsed once.
        self.plan_cache = LRUCache(plan_cache_size)
        self._collections: Dict[int, tuple] = {}
        self._evaluators: Dict[Tuple[int, str], Evaluator] = {}

    def _collection(self, task: ShardTask):
        from repro.encoding.collection import DocumentCollection
        from repro.encoding.persist import load

        cached = self._collections.get(task.shard_id)
        if cached is not None and cached[0] == task.shard_file:
            return cached[1]
        shard_file, names = task.shard_file, list(task.names)
        for _ in range(_FALL_FORWARD_ATTEMPTS):
            try:
                table = load(
                    os.path.join(self.directory, shard_file), mmap=self.mmap
                )
                break
            except FileNotFoundError:
                # The shard was mutated between task creation and
                # execution (commits unlink the superseded file).  Fall
                # forward to the manifest's current file — and retry,
                # because a further commit can unlink *that* file before
                # the load opens it.  Answering from newer data is safe:
                # the service caches this batch under the pre-update
                # epoch, which the commit just made unreachable.
                shard_file, names = self._current_entry(task.shard_id)
        else:  # pragma: no cover - needs a commit per retry to trip
            raise ReproError(
                f"shard {task.shard_id}: file replaced "
                f"{_FALL_FORWARD_ATTEMPTS} times while opening it"
            )
        collection = DocumentCollection.from_table(table, names)
        self._collections[task.shard_id] = (shard_file, collection)
        # Evaluators bound to the replaced shard's old table are dead.
        for key in [k for k in self._evaluators if k[0] == task.shard_id]:
            del self._evaluators[key]
        return collection

    def _current_entry(self, shard_id: int):
        """Re-read the manifest for a shard's live file and member names."""
        import json

        from repro.service.store import MANIFEST

        with open(os.path.join(self.directory, MANIFEST)) as f:
            manifest = json.load(f)
        for entry in manifest["shards"]:
            if entry["id"] == shard_id:
                return entry["file"], list(entry["documents"])
        raise _ShardVanished(shard_id)

    def run(self, task: ShardTask) -> Tuple[int, int, Dict[str, np.ndarray]]:
        """Execute one task; returns ``(index, shard_id, per-doc ranks)``.

        A shard (or scoped document) a racing update removed mid-flight
        contributes an empty result instead of failing the batch — the
        result lands under the pre-update epoch, already unreachable.
        """
        try:
            collection = self._collection(task)
        except _ShardVanished:
            return task.index, task.shard_id, self._gone(task)
        if task.document is not None and task.document not in collection:
            return task.index, task.shard_id, self._gone(task)
        key = (task.shard_id, task.engine)
        evaluator = self._evaluators.get(key)
        if evaluator is None:
            evaluator = Evaluator(
                collection.doc, engine=task.engine, plan_cache=self.plan_cache
            )
            self._evaluators[key] = evaluator
        pres = collection.evaluate(
            task.plan, document=task.document, evaluator=evaluator
        )
        if task.document is not None:
            start, _ = collection.span(task.document)
            relative = {task.document: (pres - start).astype(np.int64, copy=False)}
        else:
            relative = collection.partition_relative(pres)
        return task.index, task.shard_id, relative

    @staticmethod
    def _gone(task: ShardTask) -> Dict[str, np.ndarray]:
        """The empty payload of a shard/document removed mid-flight."""
        if task.document is not None:
            return {task.document: np.empty(0, dtype=np.int64)}
        return {}


_POOL_STATE: Optional[ShardWorkerState] = None


def _pool_init(directory: str, mmap: bool) -> None:
    global _POOL_STATE
    _POOL_STATE = ShardWorkerState(directory, mmap=mmap)


def _pool_run(task: ShardTask):
    return _POOL_STATE.run(task)


class ShardExecutor:
    """Dispatches shard tasks and merges per-shard results.

    Parameters
    ----------
    store:
        The sharded store to execute against.
    workers:
        ``0`` — serial, in this process.  ``n > 0`` — a lazily created
        pool of ``n`` processes.  ``None`` — :func:`default_workers`.
    """

    def __init__(self, store: ShardedStore, workers: Optional[int] = None):
        if workers is not None and workers < 0:
            raise ReproError("workers must be >= 0")
        self.store = store
        self.workers = default_workers(store) if workers is None else int(workers)
        self._pool = None
        self._serial_state: Optional[ShardWorkerState] = None

    # ------------------------------------------------------------------
    def run_batch(
        self,
        items: Sequence[Tuple[object, str, Optional[str]]],
    ) -> List[Dict[str, np.ndarray]]:
        """Evaluate a batch of ``(plan, engine, document)`` items.

        Returns, per item, the merged mapping of document name →
        document-relative preorder ranks, in global document order
        (scoped items report their single document only).
        """
        order = self.store.document_names()
        tasks = self._expand(items)
        if self.workers == 0:
            if self._serial_state is None:
                self._serial_state = ShardWorkerState(
                    self.store.directory, mmap=self.store.mmap
                )
            outcomes = [self._serial_state.run(task) for task in tasks]
        else:
            outcomes = self._ensure_pool().map(_pool_run, tasks)
        return self._merge(items, outcomes, order)

    # ------------------------------------------------------------------
    def _expand(
        self, items: Sequence[Tuple[object, str, Optional[str]]]
    ) -> List[ShardTask]:
        tasks = []
        for index, (plan, engine, document) in enumerate(items):
            if document is not None:
                shard_ids = [self.store.shard_of(document)]
            else:
                shard_ids = self.store.shard_ids()
            for shard_id in shard_ids:
                entry = self.store.shard_entry(shard_id)
                tasks.append(
                    ShardTask(
                        index=index,
                        shard_id=shard_id,
                        shard_file=entry["file"],
                        names=tuple(entry["documents"]),
                        plan=plan,
                        engine=engine,
                        document=document,
                    )
                )
        return tasks

    def _merge(
        self,
        items: Sequence[Tuple[object, str, Optional[str]]],
        outcomes: Sequence[Tuple[int, int, Dict[str, np.ndarray]]],
        order: Sequence[str],
    ) -> List[Dict[str, np.ndarray]]:
        per_item: List[Dict[str, np.ndarray]] = [{} for _ in items]
        for index, _, relative in outcomes:
            per_item[index].update(relative)
        merged = []
        for (plan, engine, document), collected in zip(items, per_item):
            if document is not None:
                merged.append({document: collected[document]})
                continue
            # Global document order (snapshotted at batch start — a
            # racing update may add/drop members mid-flight; only names
            # present in both the snapshot and the results are reported).
            merged.append(
                {name: collected[name] for name in order if name in collected}
            )
        return merged

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            self._pool = multiprocessing.get_context().Pool(
                processes=self.workers,
                initializer=_pool_init,
                initargs=(self.store.directory, self.store.mmap),
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
