"""Fan a query (or a batch) across shards, serially or over processes.

Each unit of work is a :class:`ShardTask`: evaluate one plan against
one shard, return per-document *relative* preorder ranks.  The same
:class:`ShardWorkerState` object executes tasks in both modes:

* ``workers=0`` — in-process (the serial reference path; also what the
  tests cover line-by-line);
* ``workers>0`` — a ``multiprocessing`` pool whose initializer opens the
  store read-only in every worker.  Shard columns arrive memory-mapped
  (``persist.load(mmap=True)``), so all workers share one page-cache
  copy of each shard file; only the task tuples and the result rank
  arrays cross the process boundary.

Tasks are dispatched *grouped by shard* (one pool item per shard, not
per query × shard): a worker holding a whole batch's plans for one
shard factors them into a **step-prefix trie** and evaluates each
distinct prefix once — eight queries opening with
``/site/open_auctions/open_auction`` pay for that chain once, not eight
times (:meth:`ShardWorkerState.run_group`).  Intermediate context
arrays are kept in a per-worker, byte-budgeted LRU keyed by
``(shard file, engine, prefix)``; the shard file name carries the store
epoch (``shard-0000.e0005.npz``), so the same epoch fencing that
protects the result cache makes stale prefix entries unreachable after
any commit.

Plans are parsed (and planned — :class:`~repro.xpath.planner.QueryPlan`
ships whole) once in the service process and sent to workers pickled —
workers never touch the XPath parser.  Worker-side collections and
evaluators are cached per shard *file*, so a replaced shard (new file
name) is picked up on the next task without restarting the pool.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.service.cache import LRUCache
from repro.service.store import ShardedStore
from repro.xpath.ast import LocationPath
from repro.xpath.axes import DOCUMENT_CONTEXT
from repro.xpath.evaluator import Evaluator
from repro.xpath.planner import QueryPlan

__all__ = [
    "PrefixContextCache",
    "ShardExecutor",
    "ShardTask",
    "ShardWorkerState",
    "default_workers",
]


class ShardTask(NamedTuple):
    """One (query, shard) evaluation unit."""

    index: int  #: position of the query in the batch
    shard_id: int
    shard_file: str  #: file name relative to the store directory
    names: Tuple[str, ...]  #: member documents, in shard order
    plan: object  #: parsed XPath AST (or raw query string)
    engine: str
    document: Optional[str]  #: scope to one member, or None for the shard


def default_workers(store: ShardedStore) -> int:
    """Auto worker count: one per shard, capped by the machine."""
    return max(1, min(store.shard_count, os.cpu_count() or 1))


#: How often a worker will chase a shard file that commits keep
#: replacing under it before giving up (each retry reads a strictly
#: newer manifest, so this only trips on a pathological commit storm).
_FALL_FORWARD_ATTEMPTS = 10


class _ShardVanished(Exception):
    """The task's shard was dropped from the store mid-flight."""


class PrefixContextCache(LRUCache):
    """An LRU of intermediate context arrays, bounded by total *bytes*.

    Entries are O(plane-size) ``int64`` arrays — a count-bounded LRU
    could pin hundreds of MB per worker on large shards (and stale
    epochs' entries only age out, they are never swept).  Bounding by
    bytes keeps every worker's footprint fixed; an array bigger than
    the whole budget is simply not cached (the trie still shares it
    within the batch — the cache only accelerates *cross*-batch reuse).
    """

    #: Charged per entry on top of the array payload: keys are
    #: (shard-file string, engine, tuple-of-Steps) plus OrderedDict
    #: slots — without this, thousands of empty-array entries (absent
    #: tags, selective prefixes) would never trigger eviction.
    ENTRY_OVERHEAD = 512

    def __init__(self, budget_bytes: int = 32 << 20, capacity: int = 4096):
        # Both bounds apply: bytes for the array payloads, entry count
        # as a backstop for key/bookkeeping overhead.
        super().__init__(capacity=capacity)
        self.budget_bytes = int(budget_bytes)
        self._bytes = 0

    def _cost(self, value) -> int:
        return int(value.nbytes) + self.ENTRY_OVERHEAD

    def put(self, key, value) -> None:
        if self._cost(value) > self.budget_bytes:
            return
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= self._cost(previous)
            self._entries[key] = value
            self._bytes += self._cost(value)
            while self._entries and (
                self._bytes > self.budget_bytes
                or len(self._entries) > self.capacity
            ):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= self._cost(evicted)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0

    def info(self):
        with self._lock:  # one consistent snapshot of size + bytes
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "bytes": self._bytes,
                "budget_bytes": self.budget_bytes,
            }


class ShardWorkerState:
    """Per-process execution state: open collections and evaluators.

    Lives once per worker process (module global set by the pool
    initializer) and once inside the executor for serial mode.
    """

    def __init__(
        self,
        directory: str,
        mmap: bool = True,
        plan_cache_size: int = 128,
        prefix_cache_bytes: int = 32 << 20,
    ):
        self.directory = directory
        self.mmap = mmap
        # Shared by this worker's evaluators: tasks normally carry parsed
        # ASTs, but raw query strings are accepted and then parsed once.
        self.plan_cache = LRUCache(plan_cache_size)
        # Intermediate step-prefix contexts, keyed
        # (shard file, engine, prefix) — the file name carries the epoch,
        # so every committed mutation orphans the keys minted before it.
        self.prefix_cache = PrefixContextCache(prefix_cache_bytes)
        self._collections: Dict[int, tuple] = {}
        self._evaluators: Dict[Tuple[int, str], Evaluator] = {}

    def _collection(self, task: ShardTask):
        from repro.encoding.collection import DocumentCollection
        from repro.encoding.persist import load

        cached = self._collections.get(task.shard_id)
        if cached is not None and cached[0] == task.shard_file:
            return cached[1]
        shard_file, names = task.shard_file, list(task.names)
        for _ in range(_FALL_FORWARD_ATTEMPTS):
            try:
                table = load(
                    os.path.join(self.directory, shard_file), mmap=self.mmap
                )
                break
            except FileNotFoundError:
                # The shard was mutated between task creation and
                # execution (commits unlink the superseded file).  Fall
                # forward to the manifest's current file — and retry,
                # because a further commit can unlink *that* file before
                # the load opens it.  Answering from newer data is safe:
                # the service caches this batch under the pre-update
                # epoch, which the commit just made unreachable.
                shard_file, names = self._current_entry(task.shard_id)
        else:  # pragma: no cover - needs a commit per retry to trip
            raise ReproError(
                f"shard {task.shard_id}: file replaced "
                f"{_FALL_FORWARD_ATTEMPTS} times while opening it"
            )
        collection = DocumentCollection.from_table(table, names)
        self._collections[task.shard_id] = (shard_file, collection)
        # Evaluators bound to the replaced shard's old table are dead.
        for key in [k for k in self._evaluators if k[0] == task.shard_id]:
            del self._evaluators[key]
        return collection

    def _current_entry(self, shard_id: int):
        """Re-read the manifest for a shard's live file and member names."""
        import json

        from repro.service.store import MANIFEST

        with open(os.path.join(self.directory, MANIFEST)) as f:
            manifest = json.load(f)
        for entry in manifest["shards"]:
            if entry["id"] == shard_id:
                return entry["file"], list(entry["documents"])
        raise _ShardVanished(shard_id)

    def _evaluator(self, shard_id: int, engine: str, collection) -> Evaluator:
        key = (shard_id, engine)
        evaluator = self._evaluators.get(key)
        if evaluator is None:
            evaluator = Evaluator(
                collection.doc, engine=engine, plan_cache=self.plan_cache
            )
            self._evaluators[key] = evaluator
        return evaluator

    @staticmethod
    @contextlib.contextmanager
    def _applied(evaluator: Evaluator, plan: object):
        """Apply a :class:`QueryPlan`'s evaluator-level decisions
        (per-step pushdown set, scalar skip mode) for one evaluation,
        restoring the worker-cached evaluator afterwards."""
        if not isinstance(plan, QueryPlan):
            yield
            return
        saved = (evaluator.pushdown, evaluator._pushdown_steps, evaluator.axes.mode)
        evaluator._set_pushdown(plan.pushdown_steps)
        evaluator.axes.mode = plan.skip_mode
        try:
            yield
        finally:
            evaluator.pushdown, evaluator._pushdown_steps = saved[0], saved[1]
            evaluator.axes.mode = saved[2]

    def run(self, task: ShardTask) -> Tuple[int, int, Dict[str, np.ndarray]]:
        """Execute one task; returns ``(index, shard_id, per-doc ranks)``.

        A shard (or scoped document) a racing update removed mid-flight
        contributes an empty result instead of failing the batch — the
        result lands under the pre-update epoch, already unreachable.
        """
        try:
            collection = self._collection(task)
        except _ShardVanished:
            return task.index, task.shard_id, self._gone(task)
        if task.document is not None and task.document not in collection:
            return task.index, task.shard_id, self._gone(task)
        evaluator = self._evaluator(task.shard_id, task.engine, collection)
        plan = task.plan
        expression = plan.path if isinstance(plan, QueryPlan) else plan
        with self._applied(evaluator, plan):
            pres = collection.evaluate(
                expression, document=task.document, evaluator=evaluator
            )
        if task.document is not None:
            start, _ = collection.span(task.document)
            relative = {task.document: (pres - start).astype(np.int64, copy=False)}
        else:
            relative = collection.partition_relative(pres)
        return task.index, task.shard_id, relative

    # ------------------------------------------------------------------
    # Shared-prefix batch execution
    # ------------------------------------------------------------------
    def run_group(
        self, tasks: Sequence[ShardTask]
    ) -> List[Tuple[int, int, Dict[str, np.ndarray]]]:
        """Execute one shard's slice of a whole batch.

        Planned, shard-wide location-path tasks are factored into a
        step-prefix trie and evaluated one distinct prefix at a time
        (consulting the prefix cache); everything else — scoped tasks,
        unions, unplanned plans — falls back to :meth:`run` per task.
        """
        shared: Dict[str, List[ShardTask]] = {}
        outcomes: List[Tuple[int, int, Dict[str, np.ndarray]]] = []
        for task in tasks:
            plan = task.plan
            if (
                task.document is None
                and isinstance(plan, QueryPlan)
                and isinstance(plan.path, LocationPath)
            ):
                shared.setdefault(task.engine, []).append(task)
            else:
                outcomes.append(self.run(task))
        for engine, group in shared.items():
            if len(group) == 1:
                # Nothing to share: the trie's bookkeeping (grouping,
                # freezing, cache writes) would be pure overhead.  Exact
                # repeats are the result cache's job, not this one's.
                outcomes.append(self.run(group[0]))
            else:
                outcomes.extend(self._run_trie(engine, group))
        return outcomes

    def _run_trie(
        self, engine: str, tasks: List[ShardTask]
    ) -> List[Tuple[int, int, Dict[str, np.ndarray]]]:
        """Evaluate same-shard planned paths, sharing step prefixes."""
        try:
            collection = self._collection(tasks[0])
        except _ShardVanished:
            return [(t.index, t.shard_id, self._gone(t)) for t in tasks]
        # The *loaded* file (fall-forward may differ from the task's
        # snapshot) keys the prefix cache, so cached contexts always
        # describe the plane they were computed on.
        shard_file = self._collections[tasks[0].shard_id][0]
        evaluator = self._evaluator(tasks[0].shard_id, engine, collection)
        outcomes: List[Tuple[int, int, Dict[str, np.ndarray]]] = []
        root = collection.doc.root

        def finish(task: ShardTask, final) -> None:
            if final is DOCUMENT_CONTEXT:  # a bare "/" — nothing encoded
                final = np.empty(0, dtype=np.int64)
            final = final[final != root]
            outcomes.append(
                (task.index, task.shard_id, collection.partition_relative(final))
            )

        def descend(members: List[ShardTask], depth: int, prefix, context) -> None:
            groups: Dict[object, List[ShardTask]] = {}
            for task in members:
                steps = task.plan.path.steps
                if len(steps) == depth:
                    finish(task, context)
                else:
                    groups.setdefault(steps[depth], []).append(task)
            for step, sub in groups.items():
                child = prefix + (step,)
                key = (shard_file, engine, child)
                out = self.prefix_cache.get(key)
                if out is None:
                    plan = sub[0].plan
                    with self._applied(evaluator, plan):
                        out = evaluator.evaluate_step(context, step, depth)
                    # Cached contexts are shared across queries and
                    # batches: freeze a view so no later consumer can
                    # mutate what another query will read.
                    out = out.view()
                    out.flags.writeable = False
                    self.prefix_cache.put(key, out)
                descend(sub, depth + 1, child, out)

        absolute = [t for t in tasks if t.plan.path.absolute]
        relative = [t for t in tasks if not t.plan.path.absolute]
        if absolute:
            descend(absolute, 0, ("/",), DOCUMENT_CONTEXT)
        if relative:
            seed = np.asarray([root], dtype=np.int64)
            descend(relative, 0, (".",), seed)
        return outcomes

    @staticmethod
    def _gone(task: ShardTask) -> Dict[str, np.ndarray]:
        """The empty payload of a shard/document removed mid-flight."""
        if task.document is not None:
            return {task.document: np.empty(0, dtype=np.int64)}
        return {}


_POOL_STATE: Optional[ShardWorkerState] = None


def _pool_init(directory: str, mmap: bool) -> None:
    global _POOL_STATE
    _POOL_STATE = ShardWorkerState(directory, mmap=mmap)


def _pool_run(task: ShardTask):
    return _POOL_STATE.run(task)


def _pool_run_group(tasks: Sequence[ShardTask]):
    return _POOL_STATE.run_group(tasks)


def _split_for_pool(
    grouped: List[List[ShardTask]], workers: int
) -> List[List[ShardTask]]:
    """Split per-shard task groups into enough units to feed the pool.

    Each shard's group is cut into at most ``ceil(workers / shards)``
    contiguous chunks — query-level parallelism is restored when shards
    are scarce, while tasks that stay chunked together can still share
    step prefixes (and every worker's prefix cache still serves repeat
    prefixes across batches).
    """
    if not grouped or len(grouped) >= workers:
        return grouped
    per_group = -(-workers // len(grouped))  # ceil
    units: List[List[ShardTask]] = []
    for group in grouped:
        chunks = min(per_group, len(group))
        size = -(-len(group) // chunks)
        units.extend(group[i : i + size] for i in range(0, len(group), size))
    return units


class ShardExecutor:
    """Dispatches shard tasks and merges per-shard results.

    Parameters
    ----------
    store:
        The sharded store to execute against.
    workers:
        ``0`` — serial, in this process.  ``n > 0`` — a lazily created
        pool of ``n`` processes.  ``None`` — :func:`default_workers`.
    """

    def __init__(self, store: ShardedStore, workers: Optional[int] = None):
        if workers is not None and workers < 0:
            raise ReproError("workers must be >= 0")
        self.store = store
        self.workers = default_workers(store) if workers is None else int(workers)
        self._pool = None
        self._serial_state: Optional[ShardWorkerState] = None

    # ------------------------------------------------------------------
    def run_batch(
        self,
        items: Sequence[Tuple[object, str, Optional[str]]],
    ) -> List[Dict[str, np.ndarray]]:
        """Evaluate a batch of ``(plan, engine, document)`` items.

        Returns, per item, the merged mapping of document name →
        document-relative preorder ranks, in global document order
        (scoped items report their single document only).
        """
        order = self.store.document_names()
        tasks = self._expand(items)
        # One dispatch unit per shard: the worker holding a shard sees
        # the whole batch's plans for it and shares their step prefixes.
        groups: Dict[int, List[ShardTask]] = {}
        for task in tasks:
            groups.setdefault(task.shard_id, []).append(task)
        grouped = list(groups.values())
        if self.workers == 0:
            if self._serial_state is None:
                self._serial_state = ShardWorkerState(
                    self.store.directory, mmap=self.store.mmap
                )
            batches = [self._serial_state.run_group(group) for group in grouped]
        else:
            # Fewer shards than workers would leave workers idle and
            # serialise whole query batches behind one process; split
            # the groups (contiguously — adjacent batch queries are the
            # likeliest prefix-sharers) until the pool is fed.
            batches = self._ensure_pool().map(
                _pool_run_group, _split_for_pool(grouped, self.workers)
            )
        outcomes = [outcome for batch in batches for outcome in batch]
        return self._merge(items, outcomes, order)

    # ------------------------------------------------------------------
    def _expand(
        self, items: Sequence[Tuple[object, str, Optional[str]]]
    ) -> List[ShardTask]:
        tasks = []
        for index, (plan, engine, document) in enumerate(items):
            if document is not None:
                shard_ids = [self.store.shard_of(document)]
            else:
                shard_ids = self.store.shard_ids()
            for shard_id in shard_ids:
                entry = self.store.shard_entry(shard_id)
                tasks.append(
                    ShardTask(
                        index=index,
                        shard_id=shard_id,
                        shard_file=entry["file"],
                        names=tuple(entry["documents"]),
                        plan=plan,
                        engine=engine,
                        document=document,
                    )
                )
        return tasks

    def _merge(
        self,
        items: Sequence[Tuple[object, str, Optional[str]]],
        outcomes: Sequence[Tuple[int, int, Dict[str, np.ndarray]]],
        order: Sequence[str],
    ) -> List[Dict[str, np.ndarray]]:
        per_item: List[Dict[str, np.ndarray]] = [{} for _ in items]
        for index, _, relative in outcomes:
            per_item[index].update(relative)
        merged = []
        for (plan, engine, document), collected in zip(items, per_item):
            if document is not None:
                merged.append({document: collected[document]})
                continue
            # Global document order (snapshotted at batch start — a
            # racing update may add/drop members mid-flight; only names
            # present in both the snapshot and the results are reported).
            merged.append(
                {name: collected[name] for name in order if name in collected}
            )
        return merged

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            self._pool = multiprocessing.get_context().Pool(
                processes=self.workers,
                initializer=_pool_init,
                initargs=(self.store.directory, self.store.mmap),
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
