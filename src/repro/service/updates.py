"""The write-path vocabulary: update operations and their JSON wire form.

An :class:`UpdateOp` names one mutation of a sharded store.  Three act at
document granularity (``add``, ``remove``, ``update``) and three splice a
subtree inside one member (``insert``, ``delete``, ``replace``) — the
O(n) rank-splicing path of :mod:`repro.encoding.updates` instead of a
full shard re-encode.  Ranks are *document-relative* (rank 0 = the
member's root element), matching the shape query results are reported
in, so a rank read off a :class:`~repro.service.service.ServiceResult`
can be fed straight back into a splice.

:func:`parse_ops` turns the JSON ops-file format of ``python -m repro
update`` into validated ops.  Subtree payloads may be inline XML
(``"xml"``), a file path (``"file"``), a bare text node (``"text"``) or
an attribute (``"attribute": {"name": ..., "value": ...}``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.xmltree.model import Node, NodeKind, attribute, text

__all__ = ["UpdateOp", "parse_ops", "DOCUMENT_OPS", "SPLICE_OPS"]

#: Ops acting on a whole member document.
DOCUMENT_OPS = ("add", "remove", "update")

#: Ops splicing a subtree inside one member.
SPLICE_OPS = ("insert", "delete", "replace")


@dataclass(frozen=True)
class UpdateOp:
    """One mutation of a sharded store.

    Parameters
    ----------
    op:
        One of :data:`DOCUMENT_OPS` or :data:`SPLICE_OPS`.
    document:
        Member name the op targets (for ``add``: the new member's name).
    tree:
        Subtree payload (``add``/``update``/``insert``/``replace``).
    pre:
        Document-relative preorder rank: the parent for ``insert``, the
        subtree root for ``delete``/``replace``.
    before:
        ``insert`` only — document-relative rank of the existing child
        the new subtree lands ahead of (``None`` appends).
    shard:
        ``add`` only — explicit target shard (``None`` picks the
        smallest shard by node count).
    """

    op: str
    document: str
    tree: Optional[Node] = None
    pre: Optional[int] = None
    before: Optional[int] = None
    shard: Optional[int] = None

    def __post_init__(self) -> None:
        if self.op not in DOCUMENT_OPS + SPLICE_OPS:
            raise ReproError(
                f"unknown update op {self.op!r} (expected one of "
                f"{', '.join(DOCUMENT_OPS + SPLICE_OPS)})"
            )
        if not self.document:
            raise ReproError(f"op {self.op!r} needs a target document name")
        if self.op in ("add", "update", "insert", "replace") and self.tree is None:
            raise ReproError(f"op {self.op!r} needs a subtree payload")
        if self.op in SPLICE_OPS and self.pre is None:
            raise ReproError(f"op {self.op!r} needs a document-relative rank")


def _payload(raw: dict, position: int) -> Optional[Node]:
    """Decode the subtree payload of one JSON op (or ``None``)."""
    given = [k for k in ("xml", "file", "text", "attribute") if k in raw]
    if len(given) > 1:
        raise ReproError(
            f"ops[{position}]: give at most one of xml/file/text/attribute"
        )
    if not given:
        return None
    kind = given[0]
    if kind == "text":
        return text(str(raw["text"]))
    if kind == "attribute":
        spec = raw["attribute"]
        if not isinstance(spec, dict) or "name" not in spec:
            raise ReproError(
                f'ops[{position}]: "attribute" must be '
                '{"name": ..., "value": ...}'
            )
        return attribute(str(spec["name"]), str(spec.get("value", "")))
    from repro.xmltree.parser import parse, parse_file

    parsed = parse(raw["xml"]) if kind == "xml" else parse_file(raw["file"])
    # The parser wraps everything in a DOCUMENT node; subtree ops want
    # the element itself (document-level ops accept either).
    roots = [c for c in parsed.children if c.kind == NodeKind.ELEMENT]
    if len(roots) != 1:
        raise ReproError(
            f"ops[{position}]: payload must have exactly one root element"
        )
    return roots[0]


def parse_ops(raw_ops: Sequence[dict]) -> list:
    """Validate a JSON ops list (``python -m repro update``) into ops."""
    if isinstance(raw_ops, dict):
        raw_ops = raw_ops.get("ops", raw_ops)
    if not isinstance(raw_ops, (list, tuple)):
        raise ReproError('an ops file holds a JSON list (or {"ops": [...]})')
    ops = []
    for position, raw in enumerate(raw_ops):
        if not isinstance(raw, dict):
            raise ReproError(f"ops[{position}]: not a JSON object")
        unknown = set(raw) - {
            "op", "document", "pre", "before", "shard",
            "xml", "file", "text", "attribute",
        }
        if unknown:
            raise ReproError(
                f"ops[{position}]: unknown keys {sorted(unknown)}"
            )
        ops.append(
            UpdateOp(
                op=str(raw.get("op", "")),
                document=str(raw.get("document", "")),
                tree=_payload(raw, position),
                pre=None if raw.get("pre") is None else int(raw["pre"]),
                before=None if raw.get("before") is None else int(raw["before"]),
                shard=None if raw.get("shard") is None else int(raw["shard"]),
            )
        )
    return ops
