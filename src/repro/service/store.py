"""Sharded, persistent document storage for the query service.

Footnote 1 of the paper gathers several documents under one virtual
root; a :class:`ShardedStore` keeps *several such planes* — shards —
each persisted as one v2 ``.npz`` archive
(:mod:`repro.encoding.persist`), plus a small JSON manifest recording
the epoch, the shard files, and which member documents live where.

The layout on disk::

    store/
      manifest.json            epoch, shard → file/documents mapping
      shard-0000.e0001.npz     one gathered pre/post plane per shard
      shard-0001.e0001.npz

Why it is shaped this way:

* shards load **memory-mapped** by default — worker processes that open
  the same shard file share the OS page cache instead of materialising
  private copies (the zero-copy open of ``persist.load(mmap=True)``);
* shard files are **immutable**: :meth:`replace_shard` writes a *new*
  file (the epoch is part of the filename), flips the manifest, then
  removes the old file.  Workers holding the old mapping stay valid
  (POSIX unlink semantics) and converge on the new file at their next
  task, and every result-cache key minted against the old epoch is dead
  on arrival — the cache can never serve stale results;
* the manifest keeps global document order, so merged results are
  reported in the order documents were loaded, independent of sharding.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence, Tuple

from repro.encoding.collection import DocumentCollection
from repro.encoding.persist import FORMAT_VERSION, load, save
from repro.errors import ReproError
from repro.xmltree.model import Node

__all__ = ["ShardedStore", "STORE_FORMAT"]

#: Version of the manifest schema (independent of the archive format).
STORE_FORMAT = 1

MANIFEST = "manifest.json"


class ShardedStore:
    """A directory of persisted document-collection shards.

    Build one with :meth:`build`, reopen it with :meth:`open`.  The
    constructor is internal — it trusts a parsed manifest.
    """

    def __init__(self, directory: str, manifest: dict, mmap: bool = True):
        self.directory = directory
        self.mmap = mmap
        self._manifest = manifest
        self._collections: Dict[int, Tuple[str, DocumentCollection]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        directory: str,
        documents: Sequence[Tuple[str, Node]],
        shards: int = 1,
        virtual_root_tag: str = "collection",
        mmap: bool = True,
    ) -> "ShardedStore":
        """Partition ``documents`` into ``shards`` collections and persist.

        Documents are split contiguously in the given order (shard 0
        gets the first ``ceil(n/k)`` documents, and so on), which keeps
        the global document order reconstructible from the manifest.
        """
        if not documents:
            raise ReproError("a sharded store needs at least one document")
        names = [name for name, _ in documents]
        if len(set(names)) != len(names):
            raise ReproError("document names must be unique across the store")
        shards = max(1, min(int(shards), len(documents)))
        os.makedirs(directory, exist_ok=True)
        epoch = 1
        entries = []
        for shard_id, chunk in enumerate(_split(list(documents), shards)):
            collection = DocumentCollection(chunk, virtual_root_tag)
            file_name = _shard_file_name(shard_id, epoch)
            save(collection.doc, os.path.join(directory, file_name))
            entries.append(
                {
                    "id": shard_id,
                    "file": file_name,
                    "documents": [name for name, _ in chunk],
                    "nodes": len(collection.doc),
                }
            )
        manifest = {
            "store_format": STORE_FORMAT,
            "persist_format": FORMAT_VERSION,
            "epoch": epoch,
            "virtual_root_tag": virtual_root_tag,
            "shards": entries,
        }
        _write_manifest(directory, manifest)
        return cls(directory, manifest, mmap=mmap)

    @classmethod
    def open(cls, directory: str, mmap: bool = True) -> "ShardedStore":
        """Open an existing store directory."""
        path = os.path.join(directory, MANIFEST)
        try:
            with open(path) as f:
                manifest = json.load(f)
        except FileNotFoundError:
            raise ReproError(f"{directory}: not a sharded store (no {MANIFEST})")
        except json.JSONDecodeError as error:
            raise ReproError(f"{path}: corrupt manifest ({error})") from None
        if manifest.get("store_format") != STORE_FORMAT:
            raise ReproError(
                f"{path}: store format {manifest.get('store_format')!r} != "
                f"supported {STORE_FORMAT}"
            )
        return cls(directory, manifest, mmap=mmap)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Monotonic store version; bumped by every shard replacement."""
        return int(self._manifest["epoch"])

    @property
    def virtual_root_tag(self) -> str:
        return self._manifest["virtual_root_tag"]

    @property
    def shard_count(self) -> int:
        return len(self._manifest["shards"])

    def shard_ids(self) -> List[int]:
        return [entry["id"] for entry in self._manifest["shards"]]

    def shard_entry(self, shard_id: int) -> dict:
        """The manifest record of one shard (id, file, documents, nodes)."""
        for entry in self._manifest["shards"]:
            if entry["id"] == shard_id:
                return entry
        raise ReproError(f"no shard {shard_id} in store {self.directory}")

    def document_names(self) -> List[str]:
        """All member document names, in global (load) order."""
        names: List[str] = []
        for entry in self._manifest["shards"]:
            names.extend(entry["documents"])
        return names

    def shard_of(self, document: str) -> int:
        """Which shard holds ``document``."""
        for entry in self._manifest["shards"]:
            if document in entry["documents"]:
                return entry["id"]
        raise ReproError(f"no document named {document!r} in store")

    def describe(self) -> dict:
        """A JSON-friendly summary (used by ``python -m repro shard``)."""
        return {
            "directory": self.directory,
            "epoch": self.epoch,
            "shards": [
                {
                    "id": entry["id"],
                    "file": entry["file"],
                    "documents": list(entry["documents"]),
                    "nodes": entry["nodes"],
                }
                for entry in self._manifest["shards"]
            ],
            "documents": len(self.document_names()),
        }

    # ------------------------------------------------------------------
    # Shard access
    # ------------------------------------------------------------------
    def collection(self, shard_id: int) -> DocumentCollection:
        """The shard's gathered plane, loaded lazily (mmap by default).

        Cached per shard file: after :meth:`replace_shard` the next call
        observes the new file name and reloads.
        """
        entry = self.shard_entry(shard_id)
        cached = self._collections.get(shard_id)
        if cached is not None and cached[0] == entry["file"]:
            return cached[1]
        table = load(os.path.join(self.directory, entry["file"]), mmap=self.mmap)
        collection = DocumentCollection.from_table(
            table, entry["documents"], self.virtual_root_tag
        )
        self._collections[shard_id] = (entry["file"], collection)
        return collection

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def replace_shard(
        self, shard_id: int, documents: Sequence[Tuple[str, Node]]
    ) -> None:
        """Swap one shard's documents wholesale and bump the store epoch.

        The new collection is written to a fresh file before the
        manifest flips, so a crash mid-replace leaves the old manifest
        (and old file) fully intact.
        """
        entry = self.shard_entry(shard_id)
        if not documents:
            raise ReproError("a shard needs at least one document")
        new_names = [name for name, _ in documents]
        other_names = set(self.document_names()) - set(entry["documents"])
        collisions = other_names & set(new_names)
        if len(set(new_names)) != len(new_names) or collisions:
            raise ReproError("document names must be unique across the store")
        collection = DocumentCollection(documents, self.virtual_root_tag)
        epoch = self.epoch + 1
        file_name = _shard_file_name(shard_id, epoch)
        save(collection.doc, os.path.join(self.directory, file_name))
        old_file = entry["file"]
        entry["file"] = file_name
        entry["documents"] = list(new_names)
        entry["nodes"] = len(collection.doc)
        self._manifest["epoch"] = epoch
        _write_manifest(self.directory, self._manifest)
        self._collections.pop(shard_id, None)
        try:
            os.remove(os.path.join(self.directory, old_file))
        except OSError:  # pragma: no cover - another process may race the unlink
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedStore({self.directory!r}, shards={self.shard_count}, "
            f"epoch={self.epoch})"
        )


# ----------------------------------------------------------------------
def _split(items: list, parts: int) -> List[list]:
    """Contiguous split of ``items`` into ``parts`` non-empty chunks."""
    quotient, remainder = divmod(len(items), parts)
    chunks = []
    start = 0
    for index in range(parts):
        size = quotient + (1 if index < remainder else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def _shard_file_name(shard_id: int, epoch: int) -> str:
    return f"shard-{shard_id:04d}.e{epoch:04d}.npz"


def _write_manifest(directory: str, manifest: dict) -> None:
    """Atomically (write + rename) persist the manifest."""
    path = os.path.join(directory, MANIFEST)
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(manifest, f, indent=1)
    os.replace(tmp, path)
