"""Sharded, persistent document storage for the query service.

Footnote 1 of the paper gathers several documents under one virtual
root; a :class:`ShardedStore` keeps *several such planes* — shards —
each persisted as one v2 ``.npz`` archive
(:mod:`repro.encoding.persist`), plus a small JSON manifest recording
the epoch, the shard files, and which member documents live where.

The layout on disk::

    store/
      manifest.json            epoch, shard → file/documents mapping
      shard-0000.e0001.npz     one gathered pre/post plane per shard
      shard-0001.e0001.npz

Why it is shaped this way:

* shards load **memory-mapped** by default — worker processes that open
  the same shard file share the OS page cache instead of materialising
  private copies (the zero-copy open of ``persist.load(mmap=True)``);
* shard files are **immutable**: every mutation writes *new* files (the
  epoch is part of the filename), flips the manifest once, then removes
  the old files.  Workers holding an old mapping stay valid (POSIX
  unlink semantics) and converge on the new files at their next task,
  and every result-cache key minted against the old epoch is dead on
  arrival — the cache can never serve stale results;
* a crash between writing new shard files and the manifest flip leaves
  the old manifest fully intact and merely strands the new files;
  :meth:`open` sweeps unreferenced shard files, so orphans never
  accumulate;
* the manifest keeps global document order, so merged results are
  reported in the order documents were loaded, independent of sharding.

**Write path.**  Wholesale :meth:`replace_shard` re-encodes a shard from
trees; the subtree-granular path (:meth:`apply_updates`, plus the
:meth:`add_document` / :meth:`remove_document` / :meth:`update_document`
/ :meth:`splice` conveniences) instead splices ranks on the existing
plane via :mod:`repro.encoding.updates` — O(n) array surgery per shard,
no re-encoding of untouched documents.  A batch stages every touched
shard in memory, writes all new files, then flips the manifest *once*:
the batch is atomic on disk and bumps the epoch exactly once.
"""

from __future__ import annotations

import json
import os
import re
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.lockgraph import assert_held
from repro.encoding.collection import DocumentCollection
from repro.encoding.decode import subtree as _decode_subtree
from repro.encoding.persist import (
    FORMAT_VERSION,
    describe_archive,
    load,
    save,
)
from repro.errors import ReproError, StoreNotFoundError
from repro.feedback.store import FeedbackStore
from repro.service.updates import UpdateOp
from repro.xmltree.model import Node

__all__ = ["ShardedStore", "STORE_FORMAT", "COMPRESSION_SETTINGS", "AUTO_PACK_NODES"]

#: Version of the manifest schema (independent of the archive format).
STORE_FORMAT = 1

MANIFEST = "manifest.json"

#: ``compression=`` settings a store accepts.  ``auto`` packs a shard
#: when it crosses :data:`AUTO_PACK_NODES`; ``none``/``packed`` force the
#: archive format unconditionally.  The setting persists in the manifest
#: and governs every later commit (``apply_updates`` re-packs touched
#: shards under the same policy).
COMPRESSION_SETTINGS = ("auto", "none", "packed")

#: ``auto`` threshold: shards at or above this node count are written
#: packed (FORMAT_VERSION 3).  Small shards gain little from packing and
#: load faster eagerly.
AUTO_PACK_NODES = 65536


def _resolve_compression(setting: str, nodes: int) -> str:
    """Map a store-level setting to a per-shard ``save`` compression."""
    if setting == "packed":
        return "packed"
    if setting == "none":
        return "none"
    return "packed" if nodes >= AUTO_PACK_NODES else "none"

#: Shard archive naming scheme; anything matching it that the manifest
#: does not reference is a crash leftover :meth:`ShardedStore.open` sweeps.
_SHARD_FILE = re.compile(r"shard-\d{4,}\.e\d{4,}\.npz")


class ShardedStore:
    """A directory of persisted document-collection shards.

    Build one with :meth:`build`, reopen it with :meth:`open`.  The
    constructor is internal — it trusts a parsed manifest.

    One store object may be shared by a query thread and an updating
    thread: mutation and manifest reads are serialised by an internal
    lock, and the epoch in every result-cache key keeps the caches
    coherent.

    The store also owns the adaptive loop's
    :class:`~repro.feedback.store.FeedbackStore` (``self.feedback``):
    its aggregates persist inside the manifest, and commits consult its
    per-shard heat to split hot shards / merge cold ones
    (:meth:`_rebalance_locked`), bounded moves per commit.
    """

    #: Most documents a commit's heat rebalancing may move — a bound on
    #: splice work per commit, so rebalancing can never stall an update
    #: batch behind wholesale re-sharding.
    REBALANCE_MAX_MOVES = 4
    #: Sampled drives a shard needs before its heat is trusted (keeps
    #: rebalancing inert in short-lived stores and in tests that apply
    #: updates without a steady observed workload).
    MIN_HEAT_SAMPLES = 32
    #: A shard hogging this share of sampled wall time is split.
    HOT_SHARE = 0.7
    #: Shards below this share are merge candidates.
    COLD_SHARE = 0.05

    def __init__(
        self,
        directory: str,
        manifest: dict,
        mmap: bool = True,
        decode_cache: str = "full",
    ):
        self.directory = directory
        self.mmap = mmap
        self.decode_cache = decode_cache
        self._manifest = manifest  # guarded-by: _lock
        self._collections: Dict[int, Tuple[str, DocumentCollection]] = {}  # guarded-by: _lock
        self._lock = threading.RLock()
        #: Adaptive-loop aggregates (internally locked; persisted in the
        #: manifest and rewritten with it at every commit).
        self.feedback = FeedbackStore.from_manifest(manifest.get("feedback"))
        with self._lock:
            self._reindex_locked()

    def _reindex_locked(self) -> None:
        """Rebuild the name → shard index and the global name order.

        Called at open and after every mutation (with ``_lock`` held),
        so document-scoped lookups are O(1) instead of a scan over
        shards × documents.
        """
        assert_held(self._lock)
        self._doc_shard: Dict[str, int] = {}  # guarded-by: _lock
        self._names: List[str] = []  # guarded-by: _lock
        for entry in self._manifest["shards"]:
            for name in entry["documents"]:
                self._doc_shard[name] = entry["id"]
                self._names.append(name)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        directory: str,
        documents: Sequence[Tuple[str, Node]],
        shards: int = 1,
        virtual_root_tag: str = "collection",
        mmap: bool = True,
        compression: str = "auto",
    ) -> "ShardedStore":
        """Partition ``documents`` into ``shards`` collections and persist.

        Documents are split contiguously in the given order (shard 0
        gets the first ``ceil(n/k)`` documents, and so on), which keeps
        the global document order reconstructible from the manifest.

        ``compression`` (``"auto"``/``"none"``/``"packed"``) selects the
        shard archive format: ``packed`` writes compressed pageable
        FORMAT_VERSION 3 planes, ``none`` the eager v2 layout, and
        ``auto`` packs shards of :data:`AUTO_PACK_NODES` nodes or more.
        The setting persists in the manifest and applies to every later
        commit.
        """
        if not documents:
            raise ReproError("a sharded store needs at least one document")
        if compression not in COMPRESSION_SETTINGS:
            raise ReproError(
                f"unknown compression {compression!r}; expected one of "
                f"{COMPRESSION_SETTINGS}"
            )
        names = [name for name, _ in documents]
        if len(set(names)) != len(names):
            raise ReproError("document names must be unique across the store")
        shards = max(1, min(int(shards), len(documents)))
        os.makedirs(directory, exist_ok=True)
        epoch = 1
        entries = []
        for shard_id, chunk in enumerate(_split(list(documents), shards)):
            collection = DocumentCollection(chunk, virtual_root_tag)
            file_name = _shard_file_name(shard_id, epoch)
            shard_compression = _resolve_compression(
                compression, len(collection.doc)
            )
            save(
                collection.doc,
                os.path.join(directory, file_name),
                compression=shard_compression,
            )
            entries.append(
                {
                    "id": shard_id,
                    "file": file_name,
                    "documents": [name for name, _ in chunk],
                    "nodes": len(collection.doc),
                    "height": collection.doc.height,
                    "tags": collection.tag_statistics(),
                    "format": 3 if shard_compression == "packed" else 2,
                }
            )
        manifest = {
            "store_format": STORE_FORMAT,
            "persist_format": FORMAT_VERSION,
            "epoch": epoch,
            "virtual_root_tag": virtual_root_tag,
            "compression": compression,
            "shards": entries,
        }
        _write_manifest(directory, manifest)
        return cls(directory, manifest, mmap=mmap)

    @classmethod
    def open(
        cls, directory: str, mmap: bool = True, decode_cache: str = "full"
    ) -> "ShardedStore":
        """Open an existing store directory.

        Sweeps shard files the manifest does not reference — leftovers
        of a crash between writing new shard files and the manifest
        flip (the flip is the commit point, so unreferenced files are
        garbage by construction).

        ``decode_cache`` governs packed shards opened with ``mmap``:
        ``"full"`` caches whole-column decodes (fastest when the plane
        fits in RAM), ``"blocks"`` keeps only the bounded page-block LRU
        — the out-of-core mode for shards bigger than memory.
        """
        path = os.path.join(directory, MANIFEST)
        try:
            with open(path) as f:
                manifest = json.load(f)
        except FileNotFoundError:
            raise StoreNotFoundError(
                f"{directory}: not a sharded store (no {MANIFEST})"
            ) from None
        except json.JSONDecodeError as error:
            raise ReproError(f"{path}: corrupt manifest ({error})") from None
        if manifest.get("store_format") != STORE_FORMAT:
            raise ReproError(
                f"{path}: store format {manifest.get('store_format')!r} != "
                f"supported {STORE_FORMAT}"
            )
        store = cls(directory, manifest, mmap=mmap, decode_cache=decode_cache)
        store._sweep_orphans()
        return store

    def _sweep_orphans(self) -> List[str]:
        """Remove shard-pattern files the manifest does not reference."""
        with self._lock:
            referenced = {entry["file"] for entry in self._manifest["shards"]}
        swept = []
        for file_name in os.listdir(self.directory):
            if file_name in referenced or not _SHARD_FILE.fullmatch(file_name):
                continue
            try:
                os.remove(os.path.join(self.directory, file_name))
                swept.append(file_name)
            except OSError:  # pragma: no cover - another opener may race
                pass
        return swept

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Monotonic store version; bumped by every committed mutation."""
        with self._lock:
            return int(self._manifest["epoch"])

    @property
    def virtual_root_tag(self) -> str:
        with self._lock:
            return self._manifest["virtual_root_tag"]

    @property
    def shard_count(self) -> int:
        with self._lock:
            return len(self._manifest["shards"])

    def shard_ids(self) -> List[int]:
        with self._lock:
            return [entry["id"] for entry in self._manifest["shards"]]

    def shard_entry(self, shard_id: int) -> dict:
        """The manifest record of one shard (id, file, documents, nodes)."""
        with self._lock:
            for entry in self._manifest["shards"]:
                if entry["id"] == shard_id:
                    return entry
        raise ReproError(f"no shard {shard_id} in store {self.directory}")

    def document_names(self) -> List[str]:
        """All member document names, in global (load) order."""
        with self._lock:
            return list(self._names)

    def shard_of(self, document: str) -> int:
        """Which shard holds ``document`` (O(1) via the name index)."""
        with self._lock:
            try:
                return self._doc_shard[document]
            except KeyError:
                raise ReproError(
                    f"no document named {document!r} in store"
                ) from None

    # ------------------------------------------------------------------
    # Catalogue statistics (planner input)
    # ------------------------------------------------------------------
    def shard_tag_statistics(self, shard_id: int) -> Dict[str, int]:
        """Per-tag element counts of one shard, from the manifest.

        Persisted at build/commit time, so reads are O(#tags) with no
        shard I/O.  Stores written before statistics existed fall back
        to computing from the (lazily loaded) shard plane.
        """
        with self._lock:
            entry = self.shard_entry(shard_id)
            if "tags" not in entry or "height" not in entry:
                # pre-statistics manifest: compute once and keep
                collection = self.collection(shard_id)
                entry["tags"] = collection.tag_statistics()
                entry["height"] = collection.doc.height
            return dict(entry["tags"])

    def tag_statistics(self) -> Dict[str, int]:
        """Store-wide per-tag element counts (sum over shards)."""
        with self._lock:
            total: Dict[str, int] = {}
            for shard_id in self.shard_ids():
                for tag, count in self.shard_tag_statistics(shard_id).items():
                    total[tag] = total.get(tag, 0) + count
            return total

    def total_nodes(self) -> int:
        """Encoded nodes across all shards (from the manifest)."""
        with self._lock:
            return sum(entry["nodes"] for entry in self._manifest["shards"])

    def height(self) -> int:
        """Tallest shard plane's height (document height upper bound)."""
        with self._lock:
            if any("height" not in e for e in self._manifest["shards"]):
                for shard_id in self.shard_ids():  # pre-statistics manifest
                    self.shard_tag_statistics(shard_id)
            return max(e["height"] for e in self._manifest["shards"])

    @property
    def compression(self) -> str:
        """The store's compression setting (pre-compression stores: none)."""
        with self._lock:
            return self._manifest.get("compression", "none")

    def describe(self) -> dict:
        """A JSON-friendly summary (used by ``python -m repro shard``)."""
        with self._lock:
            return {
                "directory": self.directory,
                "epoch": self.epoch,
                "compression": self.compression,
                "shards": [
                    {
                        "id": entry["id"],
                        "file": entry["file"],
                        "documents": list(entry["documents"]),
                        "nodes": entry["nodes"],
                    }
                    for entry in self._manifest["shards"]
                ],
                "documents": len(self._names),
            }

    def info(self) -> dict:
        """Bytes-level report: disk/decoded accounting per shard.

        Backs the ``store info`` CLI verb.  Per shard: bytes on disk,
        archive format version, page counts and dictionary sizes (packed
        shards), and — when the shard plane is open in this process —
        blocks/bytes decoded per column, so the paging behaviour is
        observable without running the bench.
        """
        with self._lock:
            shards = []
            total_disk = 0
            total_logical = 0
            for entry in self._manifest["shards"]:
                path = os.path.join(self.directory, entry["file"])
                archive = describe_archive(path)
                record = {
                    "id": entry["id"],
                    "file": entry["file"],
                    "documents": len(entry["documents"]),
                    "nodes": entry["nodes"],
                    "format_version": archive["format_version"],
                    "bytes_on_disk": archive["bytes_on_disk"],
                }
                total_disk += archive["bytes_on_disk"]
                if archive["format_version"] == 3:
                    columns = archive["columns"]
                    record["page_size"] = archive["page_size"]
                    record["pages"] = sum(c["pages"] for c in columns.values())
                    record["packed_bytes"] = sum(
                        c["packed_bytes"] for c in columns.values()
                    )
                    record["logical_bytes"] = sum(
                        c["logical_bytes"] for c in columns.values()
                    )
                    record["tag_dictionary"] = archive["tag_dictionary"]
                    record["value_dictionary"] = archive["value_dictionary"]
                    total_logical += record["logical_bytes"]
                cached = self._collections.get(entry["id"])
                if cached is not None and cached[0] == entry["file"]:
                    plane = getattr(cached[1].doc, "plane", None)
                    if plane is not None:
                        totals = plane.totals()
                        record["decoded"] = {
                            "blocks": totals["blocks_decoded"],
                            "bytes": totals["bytes_decoded"],
                            "columns": {
                                name: {
                                    "blocks_decoded": stat["blocks_decoded"],
                                    "bytes_decoded": stat["bytes_decoded"],
                                }
                                for name, stat in plane.column_stats().items()
                            },
                        }
                shards.append(record)
            return {
                "directory": self.directory,
                "epoch": self.epoch,
                "compression": self.compression,
                "documents": len(self._names),
                "total_bytes_on_disk": total_disk,
                "total_logical_bytes": total_logical,
                "shards": shards,
            }

    # ------------------------------------------------------------------
    # Shard access
    # ------------------------------------------------------------------
    def collection(self, shard_id: int) -> DocumentCollection:
        """The shard's gathered plane, loaded lazily (mmap by default).

        Cached per shard file: after a mutation the next call observes
        the new file name and reloads.
        """
        with self._lock:
            entry = self.shard_entry(shard_id)
            cached = self._collections.get(shard_id)
            if cached is not None and cached[0] == entry["file"]:
                return cached[1]
            table = load(
                os.path.join(self.directory, entry["file"]),
                mmap=self.mmap,
                decode_cache=self.decode_cache,
            )
            collection = DocumentCollection.from_table(
                table, entry["documents"], self.virtual_root_tag
            )
            self._collections[shard_id] = (entry["file"], collection)
            return collection

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def replace_shard(
        self, shard_id: int, documents: Sequence[Tuple[str, Node]]
    ) -> None:
        """Swap one shard's documents wholesale and bump the store epoch.

        Re-encodes every given tree.  For edits touching a few subtrees
        prefer :meth:`apply_updates`, which splices the existing plane.
        """
        with self._lock:
            self.shard_entry(shard_id)  # validates the id
            if not documents:
                raise ReproError("a shard needs at least one document")
            new_names = [name for name, _ in documents]
            others = {
                name for name, sid in self._doc_shard.items() if sid != shard_id
            }
            if len(set(new_names)) != len(new_names) or others & set(new_names):
                raise ReproError("document names must be unique across the store")
            collection = DocumentCollection(documents, self.virtual_root_tag)
            self._commit_locked({shard_id: collection})

    def add_document(
        self, name: str, tree: Node, shard_id: Optional[int] = None
    ) -> int:
        """Add one document (to the smallest shard unless one is given).

        Returns the new store epoch.
        """
        return self.apply_updates(
            [UpdateOp("add", name, tree=tree, shard=shard_id)]
        )["epoch"]

    def remove_document(self, name: str) -> int:
        """Remove one document; an emptied shard leaves the manifest."""
        return self.apply_updates([UpdateOp("remove", name)])["epoch"]

    def update_document(self, name: str, tree: Node) -> int:
        """Replace one document's tree in place (rank splice, no shard
        re-encode)."""
        return self.apply_updates([UpdateOp("update", name, tree=tree)])["epoch"]

    def splice(
        self,
        name: str,
        op: str,
        pre: int,
        tree: Optional[Node] = None,
        before: Optional[int] = None,
    ) -> int:
        """Subtree-granular edit inside one document (document-relative
        ranks; see :meth:`DocumentCollection.splice`)."""
        return self.apply_updates(
            [UpdateOp(op, name, tree=tree, pre=pre, before=before)]
        )["epoch"]

    def apply_updates(
        self,
        ops: Sequence[UpdateOp],
        compression: Optional[str] = None,
        rebalance: bool = True,
    ) -> dict:
        """Apply a batch of :class:`UpdateOp` and commit it atomically.

        With ``rebalance`` (the default), the commit also consults the
        feedback store's per-shard heat: a shard hogging the sampled
        wall time is split, two cold shards are merged — at most
        :data:`REBALANCE_MAX_MOVES` documents move per commit, and the
        summary gains a ``"rebalanced"`` entry when any do.

        Every op splices in memory first — a validation error anywhere
        in the batch leaves the store untouched.  All staged shard
        planes are then written as new epoch files and the manifest
        flips once (one epoch bump per batch; a crash before the flip
        strands files that :meth:`open` sweeps).

        Only *touched* shards are staged and rewritten: on a compressed
        store the splice decodes the touched shard's page blocks,
        splices ranks, and re-packs at commit — untouched shards (and
        their pages) are never decoded.  Tag statistics are recomputed
        from the spliced plane, so they stay exact.  Passing
        ``compression`` re-pins the store's setting for this and all
        later commits.
        """
        with self._lock:
            if compression is not None:
                if compression not in COMPRESSION_SETTINGS:
                    raise ReproError(
                        f"unknown compression {compression!r}; expected one "
                        f"of {COMPRESSION_SETTINGS}"
                    )
                self._manifest = dict(self._manifest, compression=compression)
            if not ops:
                return {"epoch": self.epoch, "applied": 0, "shards": []}
            # shard id → staged plane (None = shard emptied by removals)
            staged: Dict[int, Optional[DocumentCollection]] = {}
            placement = dict(self._doc_shard)

            def shard_state(shard_id: int) -> Optional[DocumentCollection]:
                if shard_id not in staged:
                    staged[shard_id] = self.collection(shard_id)
                return staged[shard_id]

            def nodes_in(shard_id: int) -> int:
                if shard_id in staged:
                    plane = staged[shard_id]
                    return len(plane.doc) if plane is not None else 0
                return int(self.shard_entry(shard_id)["nodes"])

            for op in ops:
                if op.op == "add":
                    if op.document in placement:
                        raise ReproError(
                            f"document {op.document!r} already in the store"
                        )
                    shard_id = op.shard
                    if shard_id is None:
                        shard_id = min(self.shard_ids(), key=nodes_in)
                    plane = shard_state(shard_id)
                    if plane is None:  # emptied earlier in this batch
                        staged[shard_id] = DocumentCollection(
                            [(op.document, op.tree)], self.virtual_root_tag
                        )
                    else:
                        staged[shard_id] = plane.insert_document(
                            op.document, op.tree
                        )
                    placement[op.document] = shard_id
                    continue
                try:
                    shard_id = placement[op.document]
                except KeyError:
                    raise ReproError(
                        f"no document named {op.document!r} in store"
                    ) from None
                plane = shard_state(shard_id)
                if plane is None:  # pragma: no cover - placement forbids it
                    raise ReproError(f"shard {shard_id} already emptied")
                if op.op == "remove":
                    if len(placement) == 1:
                        raise ReproError(
                            "a sharded store needs at least one document"
                        )
                    staged[shard_id] = (
                        None
                        if len(plane) == 1
                        else plane.remove_document(op.document)
                    )
                    del placement[op.document]
                elif op.op == "update":
                    staged[shard_id] = plane.update_document(op.document, op.tree)
                else:  # insert / delete / replace — validated by UpdateOp
                    staged[shard_id] = plane.splice(
                        op.document, op.op, op.pre, tree=op.tree, before=op.before
                    )
            moves = (
                self._rebalance_locked(staged, placement) if rebalance else []
            )
            epoch = self._commit_locked(staged)
            summary = {
                "epoch": epoch,
                "applied": len(ops),
                "shards": sorted(staged),
            }
            if moves:
                summary["rebalanced"] = moves
            return summary

    def _rebalance_locked(
        self,
        staged: Dict[int, Optional[DocumentCollection]],
        placement: Dict[str, int],
    ) -> List[dict]:
        """Heat-driven shard split/merge, folded into the pending commit.

        Caller holds ``_lock`` and has already staged the batch's own
        edits.  Consults :attr:`feedback` heat: the hottest shard (>
        :data:`HOT_SHARE` of sampled wall time, enough samples, ≥ 2
        documents) sheds half its documents to a *new* shard; the two
        coldest shards (< :data:`COLD_SHARE` each) merge.  At most
        :data:`REBALANCE_MAX_MOVES` documents move; moved documents are
        decoded from the live plane and spliced like any other update,
        and the affected shards' feedback aggregates reset (their planes
        changed shape, the old selectivities describe nothing).
        """
        assert_held(self._lock)
        heat = self.feedback.heat_snapshot()
        total_ns = sum(ns for ns, _ in heat.values())
        if total_ns <= 0:
            return []
        shares = {
            shard: (ns / total_ns, drives) for shard, (ns, drives) in heat.items()
        }
        moves: List[dict] = []
        budget = self.REBALANCE_MAX_MOVES

        def live_documents(shard_id: int) -> List[str]:
            if shard_id in staged:
                plane = staged[shard_id]
                return list(plane.names) if plane is not None else []
            return list(self.shard_entry(shard_id)["documents"])

        def plane_of(shard_id: int) -> Optional[DocumentCollection]:
            if shard_id not in staged:
                staged[shard_id] = self.collection(shard_id)
            return staged[shard_id]

        def extract(shard_id: int, name: str) -> Node:
            plane = plane_of(shard_id)
            tree = _decode_subtree(plane.doc, plane.root_of(name))
            staged[shard_id] = (
                None if len(plane) == 1 else plane.remove_document(name)
            )
            return tree

        # Hot split: the worst hog sheds the later half of its members.
        hot = [
            shard
            for shard, (share, drives) in shares.items()
            if drives >= self.MIN_HEAT_SAMPLES
            and share > self.HOT_SHARE
            and shard in set(self.shard_ids()) | set(staged)
            and len(live_documents(shard)) >= 2
        ]
        if hot and budget > 0:
            shard = max(hot, key=lambda s: shares[s][0])
            names = live_documents(shard)
            to_move = names[-(len(names) // 2) :][:budget]
            new_id = max(set(self.shard_ids()) | set(staged)) + 1
            pairs = [(name, extract(shard, name)) for name in to_move]
            staged[new_id] = DocumentCollection(pairs, self.virtual_root_tag)
            for name in to_move:
                placement[name] = new_id
            self.feedback.reset_shard(shard)
            budget -= len(to_move)
            moves.append(
                {
                    "kind": "split",
                    "from": shard,
                    "to": new_id,
                    "documents": list(to_move),
                }
            )
        # Cold merge: the coldest shard folds into the second-coldest.
        touched = {m["from"] for m in moves} | {m["to"] for m in moves}
        cold = sorted(
            (
                shard
                for shard, (share, drives) in shares.items()
                if drives >= self.MIN_HEAT_SAMPLES
                and share < self.COLD_SHARE
                and shard not in touched
                and shard in set(self.shard_ids()) | set(staged)
                and live_documents(shard)
            ),
            key=lambda s: shares[s][0],
        )
        if len(cold) >= 2 and budget > 0:
            source, target = cold[0], cold[1]
            names = live_documents(source)
            if 0 < len(names) <= budget:
                for name in names:
                    tree = extract(source, name)
                    plane = plane_of(target)
                    staged[target] = (
                        DocumentCollection([(name, tree)], self.virtual_root_tag)
                        if plane is None
                        else plane.insert_document(name, tree)
                    )
                    placement[name] = target
                self.feedback.reset_shard(source)
                self.feedback.reset_shard(target)
                moves.append(
                    {
                        "kind": "merge",
                        "from": source,
                        "to": target,
                        "documents": list(names),
                    }
                )
        return moves

    def _commit_locked(
        self, staged: Dict[int, Optional[DocumentCollection]]
    ) -> int:
        """Persist staged shard planes under the next epoch, atomically.

        Caller holds ``_lock`` (both mutation entry points take it for
        their whole stage-validate-commit span).  Writes every new
        shard file first (a crash here leaves only sweepable orphans),
        then flips the manifest once — the commit point — then drops
        cached planes and unlinks the old files.
        """
        assert_held(self._lock)
        epoch = self.epoch + 1
        setting = self._manifest.get("compression", "none")
        existing = {entry["id"] for entry in self._manifest["shards"]}
        formats: Dict[int, int] = {}
        old_files = []
        for shard_id, collection in staged.items():
            if shard_id in existing:
                old_files.append(self.shard_entry(shard_id)["file"])
            if collection is None:
                continue
            shard_compression = _resolve_compression(
                setting, len(collection.doc)
            )
            formats[shard_id] = 3 if shard_compression == "packed" else 2
            save(
                collection.doc,
                os.path.join(self.directory, _shard_file_name(shard_id, epoch)),
                compression=shard_compression,
            )
        # The manifest is rebuilt as a copy and only swapped in after the
        # on-disk flip: a failed write leaves memory and disk agreeing on
        # the old epoch (and the new files as sweepable orphans).
        entries = []
        for entry in self._manifest["shards"]:
            shard_id = entry["id"]
            if shard_id not in staged:
                entries.append(entry)
                continue
            collection = staged[shard_id]
            if collection is None:  # emptied by removals: drop the shard
                continue
            entries.append(
                {
                    "id": shard_id,
                    "file": _shard_file_name(shard_id, epoch),
                    "documents": collection.names,
                    "nodes": len(collection.doc),
                    "height": collection.doc.height,
                    "tags": collection.tag_statistics(),
                    "format": formats[shard_id],
                }
            )
        # Shards staged under *new* ids (a heat split) join the manifest.
        for shard_id in sorted(set(staged) - existing):
            collection = staged[shard_id]
            if collection is None:  # pragma: no cover - splits never stage None
                continue
            entries.append(
                {
                    "id": shard_id,
                    "file": _shard_file_name(shard_id, epoch),
                    "documents": collection.names,
                    "nodes": len(collection.doc),
                    "height": collection.doc.height,
                    "tags": collection.tag_statistics(),
                    "format": formats[shard_id],
                }
            )
        # Feedback rides in the manifest: drop aggregates of shards this
        # commit removed, then persist the rest alongside the new epoch.
        self.feedback.retain_shards(entry["id"] for entry in entries)
        manifest = dict(
            self._manifest,
            shards=entries,
            epoch=epoch,
            feedback=self.feedback.to_manifest(),
        )
        _write_manifest(self.directory, manifest)
        self._manifest = manifest
        for shard_id, collection in staged.items():
            if collection is None:
                self._collections.pop(shard_id, None)
            else:
                # The staged plane IS the new file's content — seed the
                # cache with it so the next read (or splice) skips the
                # reload; a later file flip still reloads as usual.
                self._collections[shard_id] = (
                    _shard_file_name(shard_id, epoch),
                    collection,
                )
        self._reindex_locked()
        for old_file in old_files:
            try:
                os.remove(os.path.join(self.directory, old_file))
            except OSError:  # pragma: no cover - another process may race
                pass
        return epoch

    def save_feedback(self) -> bool:
        """Persist unsaved feedback aggregates into the manifest.

        No epoch bump — plans are fenced by the feedback *generation*,
        and the shard files are untouched.  No-op (returns False) when
        nothing changed since the last save/commit; called by
        ``QueryService.close`` so learned selectivities survive a
        clean shutdown even if no commit happened.
        """
        with self._lock:
            if not self.feedback.dirty:
                return False
            manifest = dict(
                self._manifest, feedback=self.feedback.to_manifest()
            )
            _write_manifest(self.directory, manifest)
            self._manifest = manifest
            return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedStore({self.directory!r}, shards={self.shard_count}, "
            f"epoch={self.epoch})"
        )


# ----------------------------------------------------------------------
def _split(items: list, parts: int) -> List[list]:
    """Contiguous split of ``items`` into ``parts`` non-empty chunks."""
    quotient, remainder = divmod(len(items), parts)
    chunks = []
    start = 0
    for index in range(parts):
        size = quotient + (1 if index < remainder else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def _shard_file_name(shard_id: int, epoch: int) -> str:
    return f"shard-{shard_id:04d}.e{epoch:04d}.npz"


def _write_manifest(directory: str, manifest: dict) -> None:
    """Atomically (write + rename) persist the manifest."""
    path = os.path.join(directory, MANIFEST)
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(manifest, f, indent=1)
    os.replace(tmp, path)
