"""The query service: plan cache → result cache → sharded execution.

A :class:`QueryService` answers XPath queries over a
:class:`~repro.service.store.ShardedStore`:

1. the query string is parsed once (LRU **plan cache**) and validated
   before any work is dispatched;
2. the **result cache** is consulted under the key
   ``(store epoch, query, engine, scope, mode)`` — a warm repeat never
   touches an engine, and a shard replacement bumps the epoch so no
   stale entry is ever reachable;
3. misses are compiled into
   :class:`~repro.xpath.pipeline.PhysicalPlan` operator pipelines and
   fan out through an
   :class:`~repro.service.backend.ExecutionBackend` — serial
   in-process, a pickled ``multiprocessing`` pool, or the
   shared-memory worker fabric (vectorized engine by default); the
   pre-ordered per-shard results are merged in global document order.

Every query runs in a **result mode**: ``materialize`` (the default),
``count``, or ``exists``.  Results are :class:`ServiceResult` values:
per-document *relative* preorder ranks (rank 0 = the document's root
element) for ``materialize`` — so the payload is independent of how
documents were sharded, the property the equivalence tests pin down —
per-document cardinalities for ``count`` (shard workers never ship
rank arrays), and a single boolean for ``exists`` (shard pipelines
terminate at their first hit and the merge ORs the shard verdicts).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import ReproError
from repro.service.backend import _UNSET, ExecutionBackend, resolve_backend
from repro.service.cache import LRUCache
from repro.service.store import ShardedStore
from repro.xpath.axes import resolve_engine
from repro.xpath.evaluator import parse_with_cache
from repro.xpath.pipeline import compile_plan
from repro.xpath.planner import Planner, QueryPlan, TagStatistics

__all__ = ["QueryService", "ServiceResult", "FEEDBACK_SAMPLE_ENV"]

#: Environment variable overriding the feedback sampling interval: one
#: batch in every N carries the observation layer (default 16; 1 = every
#: batch — what the CI smoke uses to learn from a short workload).
FEEDBACK_SAMPLE_ENV = "REPRO_FEEDBACK_SAMPLE"

_DEFAULT_FEEDBACK_SAMPLE = 16


@dataclass(frozen=True)
class ServiceResult:
    """One answered query.

    For ``mode="materialize"`` (the default) ``per_document`` maps
    member name → document-relative preorder ranks (read-only arrays,
    document order); for ``mode="count"`` it maps member name → result
    cardinality; for ``mode="exists"`` it is empty and ``total`` is
    1/0.  ``elapsed_s`` is the wall time of the executor call that
    produced the result (shared by every result of one batch; ~0 for
    cache hits).
    """

    query: str
    engine: str
    per_document: Dict[str, object]
    total: int
    from_cache: bool
    elapsed_s: float
    mode: str = "materialize"

    @property
    def documents(self) -> List[str]:
        return list(self.per_document)

    @property
    def exists(self) -> bool:
        """Did the query match anywhere in scope?"""
        return self.total > 0

    @property
    def value(self):
        """The mode's natural payload: rank mapping, total, or bool."""
        if self.mode == "count":
            return self.total
        if self.mode == "exists":
            return self.exists
        return dict(self.per_document)

    def counts(self) -> Dict[str, int]:
        """Result cardinality per member document (empty for
        ``exists`` results — early termination skips attribution)."""
        if self.mode == "count":
            return {name: int(n) for name, n in self.per_document.items()}
        return {name: int(len(a)) for name, a in self.per_document.items()}


class QueryService:
    """Serve single queries and query batches over a sharded store.

    Parameters
    ----------
    store:
        The (already built or opened) :class:`ShardedStore`.
    engine:
        Default execution engine; the vectorized bulk engine unless the
        caller opts into the instrumented scalar one.
    backend:
        How batches execute: an
        :class:`~repro.service.backend.ExecutionBackend` instance or a
        spec string — ``"serial"`` (in-process), ``"pool"`` /
        ``"pool:4"`` (process pool), ``"fabric"`` (shared-memory
        worker fabric).  Defaults to the ``REPRO_BACKEND`` environment
        variable, else a pool with one worker per shard (capped by
        CPU count).
    workers:
        Deprecated alias for ``backend`` (``0`` = serial, ``n`` = pool
        of ``n``); emits a :class:`DeprecationWarning`.
    plan_cache_size / result_cache_size:
        LRU capacities; ``0`` disables the respective cache.
    planner:
        Plan queries through the cost-based
        :class:`~repro.xpath.planner.Planner` (statistics come from the
        store's manifest) before dispatch.  Planned batches also share
        step-prefix work per shard; ``False`` restores the unplanned
        per-query execution path.  Either way the results are
        byte-identical — planning is a cost decision, not a semantic
        one.
    feedback:
        Close the adaptive loop (on by default): one uncached batch in
        every ``REPRO_FEEDBACK_SAMPLE`` (default 16) runs with the
        observation layer attached, its per-operator cardinalities are
        absorbed into the store's
        :class:`~repro.feedback.store.FeedbackStore`, and later plans
        blend the observed selectivities over the static histogram
        estimates.  Plan caches are fenced by the feedback *generation*
        alongside the store epoch, so a re-costed query can never be
        served from a stale cached plan.  ``False`` keeps planning
        fully static (and skips the per-batch sampling tick).
    """

    def __init__(
        self,
        store: ShardedStore,
        engine: str = "vectorized",
        workers: Optional[int] = _UNSET,
        plan_cache_size: int = 256,
        result_cache_size: int = 1024,
        planner: bool = True,
        backend: Union[str, ExecutionBackend, None] = None,
        feedback: bool = True,
    ):
        self.store = store
        self.engine = resolve_engine(engine)
        self.plan_cache = LRUCache(plan_cache_size)
        self.result_cache = LRUCache(result_cache_size)
        self.backend = resolve_backend(store, backend=backend, workers=workers)
        self.planner_enabled = planner
        self.feedback_enabled = bool(
            feedback and getattr(store, "feedback", None) is not None
        )
        try:
            self.feedback_sample = max(
                1, int(os.environ.get(FEEDBACK_SAMPLE_ENV, _DEFAULT_FEEDBACK_SAMPLE))
            )
        except ValueError:
            self.feedback_sample = _DEFAULT_FEEDBACK_SAMPLE
        self._feedback_tick = 0  # guarded-by: _stats_lock
        #: (epoch, engine) → Planner — statistics change only at commits.
        self._planners: Dict[tuple, Planner] = {}
        # Pairs the epoch with the cache state in one critical section:
        # ``apply_updates`` commits + clears under this lock, and
        # ``stats_snapshot`` reads under it, so a snapshot can never
        # observe a post-update epoch with pre-update cache statistics
        # (or vice versa).
        self._stats_lock = threading.Lock()
        #: Update batches applied through this service (monotonic; each
        #: applied batch bumps the store epoch exactly once).
        self.updates_applied = 0  # guarded-by: _stats_lock

    @property
    def executor(self) -> ExecutionBackend:
        """The execution backend (historical name, kept for callers)."""
        return self.backend

    @classmethod
    def open(cls, directory: str, mmap: bool = True, **kwargs) -> "QueryService":
        """Open a store directory and serve it: ``with
        QueryService.open(dir, backend="fabric") as service: ...`` —
        the ``with`` exit releases the backend's workers (the store
        itself holds no resources beyond mapped files)."""
        return cls(ShardedStore.open(directory, mmap=mmap), **kwargs)

    # ------------------------------------------------------------------
    def execute(
        self,
        query: str,
        engine: Optional[str] = None,
        document: Optional[str] = None,
        use_cache: bool = True,
        use_planner: Optional[bool] = None,
        mode: str = "materialize",
    ) -> ServiceResult:
        """Answer one query (optionally scoped to a single document).

        ``mode="count"``/``"exists"`` skip rank materialization — the
        shard pipelines terminate early and ship integers/booleans.
        """
        return self._run_batch(
            [query], engine, document, use_cache, use_planner, [mode]
        )[0]

    def execute_batch(
        self,
        queries: Sequence[str],
        engine: Optional[str] = None,
        use_cache: bool = True,
        use_planner: Optional[bool] = None,
        mode: Union[str, Sequence[str]] = "materialize",
    ) -> List[ServiceResult]:
        """Answer a batch; cache misses share one fan-out over the pool.

        ``mode`` is one result mode for the whole batch or one per
        query — mixed-mode batches still share operator-pipeline
        prefixes per shard.
        """
        queries = list(queries)
        if isinstance(mode, str):
            modes = [mode] * len(queries)
        else:
            modes = list(mode)
            if len(modes) != len(queries):
                raise ReproError(
                    f"{len(modes)} modes for {len(queries)} queries"
                )
        return self._run_batch(queries, engine, None, use_cache, use_planner, modes)

    # ------------------------------------------------------------------
    def _run_batch(
        self,
        queries: List[str],
        engine: Optional[str],
        document: Optional[str],
        use_cache: bool,
        use_planner: Optional[bool],
        modes: List[str],
    ) -> List[ServiceResult]:
        chosen = resolve_engine(engine) if engine is not None else self.engine
        # Modes are validated at the executor boundary (shared with
        # direct callers); an unknown mode can only miss the cache here.
        planned = self.planner_enabled if use_planner is None else use_planner
        results: List[Optional[ServiceResult]] = [None] * len(queries)
        # The epoch is snapshotted once per batch: if a shard replacement
        # races the execution, the fresh results are cached under this
        # (now unreachable) epoch rather than poisoning the new one.
        epoch = self.store.epoch
        # Distinct missing (query, mode) pairs → the positions asking for
        # them, so a batch with repeats fans each distinct pair out
        # exactly once.
        missing: Dict[tuple, List[int]] = {}
        for i, (query, mode) in enumerate(zip(queries, modes)):
            key = (epoch, query, chosen, document, mode)
            hit = self.result_cache.get(key) if use_cache else None
            if hit is not None:
                results[i] = self._share(hit, from_cache=True, elapsed_s=0.0)
            else:
                missing.setdefault((query, mode), []).append(i)
        if missing:
            generation = self._generation()
            items = []
            for query, mode in missing:
                plan = self._plan(
                    query,
                    chosen,
                    epoch,
                    planned,
                    scoped=document is not None,
                    generation=generation,
                )
                items.append((compile_plan(plan), chosen, document, mode))
            sink: Optional[list] = None
            if self.feedback_enabled:
                # Sampled observation: one uncached batch in every
                # ``feedback_sample`` carries the observation layer; the
                # rest run the unobserved hot path.
                with self._stats_lock:
                    self._feedback_tick += 1
                    if self._feedback_tick % self.feedback_sample == 0:
                        sink = []
            started = time.perf_counter()
            # sink is only passed when sampling — the common case stays
            # signature-compatible with wrapped/stubbed backends.
            if sink is None:
                merged = self.executor.run_batch(items)
            else:
                merged = self.executor.run_batch(items, sink=sink)
            elapsed = time.perf_counter() - started
            if sink:
                self.store.feedback.absorb(sink)
            for ((query, mode), positions), payload in zip(missing.items(), merged):
                result = self._package(query, chosen, mode, payload, elapsed)
                if use_cache:
                    self.result_cache.put(
                        (epoch, query, chosen, document, mode), result
                    )
                for position in positions:
                    results[position] = self._share(result)
        return results  # type: ignore[return-value]

    @staticmethod
    def _package(
        query: str, engine: str, mode: str, payload, elapsed: float
    ) -> ServiceResult:
        """Wrap one merged executor payload as a :class:`ServiceResult`."""
        if mode == "exists":
            per_document: Dict[str, object] = {}
            total = int(bool(payload))
        elif mode == "count":
            per_document = dict(payload)
            total = sum(payload.values())
        else:
            for array in payload.values():
                array.flags.writeable = False
            per_document = payload
            total = sum(len(a) for a in payload.values())
        return ServiceResult(
            query=query,
            engine=engine,
            per_document=per_document,
            total=total,
            from_cache=False,
            elapsed_s=elapsed,
            mode=mode,
        )

    @staticmethod
    def _share(result: ServiceResult, **overrides) -> ServiceResult:
        """A caller-facing copy: the per-document *dict* is fresh (so a
        caller mutating it cannot poison the cached entry); the frozen
        rank arrays themselves stay shared."""
        return replace(result, per_document=dict(result.per_document), **overrides)

    def _generation(self) -> int:
        """The feedback generation plans are currently fenced on
        (0 — one fixed generation — with feedback off)."""
        return self.store.feedback.generation if self.feedback_enabled else 0

    def _plan(
        self,
        query: str,
        engine: str,
        epoch: int,
        use_planner: bool,
        scoped: bool = False,
        generation: Optional[int] = None,
    ):
        """Parse (always cached) and, when planning is on, cost the query.

        Costed plans are cached under ``(epoch, generation, engine,
        scoped, query)`` in the same LRU as parsed ASTs (plain string
        keys) — planner decisions depend on the statistics of the epoch
        *and* the feedback generation they were made against, so a
        feedback bump re-costs queries instead of serving stale cached
        plans.  Document-*scoped* execution re-anchors a plan's first
        step at the member root, where the rewrite laws' root guards
        (stated against the plane's virtual root) no longer hold — e.g.
        ``//site`` collapsed to ``/descendant::site`` would suddenly
        include the member root the engine's ``//site`` excludes.
        Scoped plans therefore keep pushdown, predicate ordering, and
        skip-mode choice but disable the rewrites.
        """
        parsed = parse_with_cache(query, self.plan_cache)
        if not use_planner:
            return parsed
        if generation is None:
            generation = self._generation()
        key = (epoch, generation, engine, scoped, query)
        plan = self.plan_cache.get(key)
        if plan is None:
            plan = self._planner(epoch, engine, scoped, generation).plan(parsed)
            self.plan_cache.put(key, plan)
        return plan

    def _planner(
        self, epoch: int, engine: str, scoped: bool = False, generation: int = 0
    ) -> Planner:
        """The planner for one (epoch, generation, engine, scoped) —
        statistics are read from the manifest once per epoch, not per
        query, and the planner object pins the feedback generation its
        cached plans were costed under."""
        key = (epoch, generation, engine, scoped)
        planner = self._planners.get(key)
        if planner is None:
            # Statistics changed at the epoch bump (and feedback at the
            # generation bump): planners of dead keys are dropped rather
            # than kept alive forever.  pop() because two query threads
            # may race the same sweep.
            for stale in [
                k for k in self._planners if k[0] != epoch or k[1] != generation
            ]:
                self._planners.pop(stale, None)
            planner = Planner(
                TagStatistics.from_store(self.store),
                engine=engine,
                rewrite=not scoped,
                feedback=self.store.feedback if self.feedback_enabled else None,
            )
            self._planners[key] = planner
        return planner

    def explain(self, query: str, engine: Optional[str] = None) -> QueryPlan:
        """The costed :class:`~repro.xpath.planner.QueryPlan` for
        ``query`` against the store's current statistics (what the
        ``explain`` CLI verb prints for a store)."""
        chosen = resolve_engine(engine) if engine is not None else self.engine
        return self._plan(query, chosen, self.store.epoch, True)

    def analyze(
        self,
        query: str,
        engine: Optional[str] = None,
        document: Optional[str] = None,
        mode: str = "materialize",
    ):
        """Run ``query`` with the observation layer *forced* on.

        Returns ``(result, plan, observations)`` — the answered
        :class:`ServiceResult`, the costed plan it ran under, and the
        per-shard :class:`~repro.feedback.records.DriveObservation`
        stream — what ``explain --analyze`` renders as its
        estimated-vs-actual table.  The observations are absorbed into
        the feedback store (when feedback is enabled), so analyzing a
        query also teaches the planner.  Bypasses the result cache: an
        analyze always runs.
        """
        chosen = resolve_engine(engine) if engine is not None else self.engine
        epoch = self.store.epoch
        plan = self._plan(
            query, chosen, epoch, True, scoped=document is not None
        )
        items = [(compile_plan(plan), chosen, document, mode)]
        sink: list = []
        started = time.perf_counter()
        merged = self.executor.run_batch(items, sink=sink)
        elapsed = time.perf_counter() - started
        if self.feedback_enabled and sink:
            self.store.feedback.absorb(sink)
        result = self._package(query, chosen, mode, merged[0], elapsed)
        return result, plan, list(sink)

    # ------------------------------------------------------------------
    def apply_updates(self, ops) -> dict:
        """Apply a batch of :class:`~repro.service.updates.UpdateOp`.

        The store commits the batch atomically (one epoch bump), which
        already fences every result-cache key minted before the commit;
        the explicit ``clear()`` merely releases their memory now
        instead of letting dead entries age out of the LRU.  Safe to
        interleave with ``execute``/``execute_batch`` from another
        thread: an in-flight batch either answers from the pre-update
        files (still mapped) or falls forward to the post-update ones,
        and caches its results under the pre-update epoch either way.

        Returns the store's summary: ``{"epoch", "applied", "shards"}``.
        """
        with self._stats_lock:
            summary = self.store.apply_updates(ops)
            if summary["applied"]:
                self.result_cache.clear()
                self.updates_applied += 1
        return summary

    # ------------------------------------------------------------------
    def stats_snapshot(self) -> dict:
        """One *consistent* statistics snapshot.

        Epoch, update count and cache statistics are read inside the
        same critical section ``apply_updates`` commits under — a
        reader can never see the new epoch paired with the old caches'
        numbers (the field-by-field reads this replaces could).  Safe
        to call concurrently with queries and updates from any thread;
        the ``/stats`` endpoint of :mod:`repro.server` is built on it.
        """
        with self._stats_lock:
            return {
                "epoch": self.store.epoch,
                "updates_applied": self.updates_applied,
                "engine": self.engine,
                "backend": self.backend.name,
                "workers": self.backend.workers,
                "planner": self.planner_enabled,
                "plan": self.plan_cache.info(),
                "result": self.result_cache.info(),
                "feedback": (
                    dict(
                        self.store.feedback.snapshot(),
                        enabled=True,
                        sample_interval=self.feedback_sample,
                    )
                    if self.feedback_enabled
                    else {"enabled": False}
                ),
            }

    def cache_info(self) -> dict:
        """Cache occupancy/hit statistics plus the current store epoch
        (a trimmed view of :meth:`stats_snapshot`, kept for callers of
        the original shape)."""
        snapshot = self.stats_snapshot()
        return {
            "epoch": snapshot["epoch"],
            "plan": snapshot["plan"],
            "result": snapshot["result"],
        }

    def clear_caches(self) -> None:
        self.plan_cache.clear()
        self.result_cache.clear()

    def close(self) -> None:
        """Release the backend's workers (idempotent) and persist any
        unsaved feedback aggregates — learned selectivities survive a
        clean shutdown even when no commit happened."""
        if self.feedback_enabled:
            try:
                self.store.save_feedback()
            except OSError:  # store directory may already be gone at GC
                pass
        self.backend.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing is interpreter's
        # A dropped service must not leak worker processes or shared
        # memory; close() is idempotent, so explicit closers pay nothing.
        try:
            self.close()
        except Exception:  # repro: allow[REP007] - destructor boundary: raising during GC aborts nothing and spams stderr
            pass
