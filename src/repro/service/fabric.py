"""The zero-copy worker fabric: shard-affine workers, shared-memory results.

The pickled pool (:class:`~repro.service.backend.PoolBackend`) moves
per-node *objects* exactly where the paper says not to: every
``materialize`` payload — bulk ``int64`` rank columns — is pickled in
the worker, squeezed through a pipe, and copied again on arrival.  The
fabric keeps the data plane bulk end-to-end:

* **Long-lived workers.**  Each worker process holds its
  :class:`~repro.service.executor.ShardWorkerState` (mmap'd shard
  planes, evaluators, prefix-context LRU) across requests; nothing is
  re-opened per batch.
* **Shared-memory result planes.**  A worker packs all rank arrays of
  a response into one ``multiprocessing.shared_memory`` segment
  (:class:`SegmentWriter`); only a tiny layout descriptor crosses the
  pipe.  The parent maps the segment and rebuilds every rank array as
  a **zero-copy numpy view** over it (:class:`SegmentPool`).
  ``count``/``exists`` payloads stay inline — they were never the
  transport cost.
* **Ref-counted segment lifetime.**  Every view carries a strong
  reference to its segment lease (:class:`_SegmentArray` propagates it
  through slicing); when the last view dies, the lease's finalizer
  returns the segment to its owning worker for **recycling** — the
  worker keeps a small free list and reuses the mapping for the next
  response instead of allocating.  Closing the backend unlinks every
  segment name; POSIX keeps existing mappings (e.g. rank arrays still
  sitting in the service result cache) valid until their last view
  drops.
* **Crash safety.**  Segment names embed the parent pid
  (``repro-fab-<pid>-<instance>-w<idx>g<gen>-<seq>``); construction
  sweeps names whose pid is dead (:func:`sweep_orphan_segments`) —
  the same recover-on-open discipline as the store's orphaned-``.npz``
  sweep — and ``close()`` unlinks everything under the instance
  prefix.
* **Shard affinity + stealing.**  Tasks for shard *k* route to worker
  ``k % n``, so one worker's prefix-context LRU stays warm for that
  shard's plans across batches; when the affine worker's queue runs
  ``steal_threshold`` deeper than the least-loaded one, the unit is
  stolen by the laggard's idle peer.  Each worker gets a private inbox
  *and* a private results outbox (a shared outbox is a liability: one
  worker SIGKILLed holding the write lock, or mid-frame, wedges or
  desyncs everyone's results); per-worker drain threads merge replies
  into an in-process queue the dispatch loop reads.  A worker that
  dies mid-batch is respawned on fresh queues (the old ones may die
  with locks held or frames half-written) and its in-flight units
  re-dispatched (duplicate completions are deduped by sequence
  number).  Fall-forward
  across epoch flips needs nothing new: shard files are named by epoch
  and workers chase the manifest exactly as the pool does.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue
import re
import threading
import traceback
import weakref
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.service.backend import ExecutionBackend
from repro.service.executor import (
    ShardResult,
    ShardTask,
    ShardWorkerState,
    _split_for_pool,
    default_workers,
)
from repro.service.store import ShardedStore

__all__ = [
    "FabricBackend",
    "SegmentPool",
    "SegmentWriter",
    "sweep_orphan_segments",
]

_RANK_DTYPE = np.dtype(np.int64)

#: Segment names: repro-fab-<parent pid>-<instance>-w<worker>g<generation>-<seq>
_SEGMENT_NAME = re.compile(r"^repro-fab-(\d+)-\d+-w\d+g\d+-\d+$")

_SHM_DIR = "/dev/shm"

#: Distinguishes fabrics coexisting in one process (tests open several).
_INSTANCES = itertools.count()


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Opt a segment out of the ``resource_tracker``.

    CPython registers POSIX segments on *create and attach*; the
    tracker would unlink them at interpreter exit and warn about
    "leaked" objects we are managing deliberately (worker-created,
    parent-unlinked, pid-swept on crash).  Unregister exactly once per
    handle — a second unregister is tracker noise.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(
            getattr(shm, "_name", "/" + shm.name), "shared_memory"
        )
    except (ImportError, AttributeError, KeyError, OSError, ValueError):
        # pragma: no cover - tracker layout varies by platform/version;
        # a failed unregister only costs an exit-time warning.
        pass


def _unlink_segment(name: str) -> None:
    """Remove a segment name without touching the resource tracker.

    ``SharedMemory.unlink`` unregisters the name as a side effect —
    a second unregister after :func:`_untrack`, which the tracker
    process reports as a ``KeyError``.  Fabric segments are tracked
    manually, so unlink at the filesystem level.
    """
    try:
        os.unlink(os.path.join(_SHM_DIR, name))
    except OSError:
        pass


class _AttachedSegment(shared_memory.SharedMemory):
    """An attached segment whose ``__del__`` tolerates live exports.

    A lease finalizer can fire while the *last* derived array is still
    mid-deallocation (the subclass ``__dict__`` holding the lease is
    cleared before the buffer export is released), so ``close()`` may
    transiently raise ``BufferError``.  Those handles are parked and
    retried; if one survives to garbage collection, closing is a
    best-effort no-op rather than an ignored-exception traceback.
    """

    def __del__(self):
        try:
            super().__del__()
        except BufferError:  # pragma: no cover - GC-order dependent
            pass


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other users' pids
        return True
    return True


def sweep_orphan_segments(shm_dir: str = _SHM_DIR) -> List[str]:
    """Unlink fabric segments whose creating process is dead.

    A fabric that crashed (or was SIGKILLed) before ``close()`` leaves
    its named segments in ``/dev/shm``; every new fabric sweeps them on
    construction, exactly like the store unlinks unreferenced shard
    files on open.  Returns the names removed.
    """
    removed: List[str] = []
    try:
        names = os.listdir(shm_dir)
    except OSError:  # pragma: no cover - no /dev/shm on this platform
        return removed
    for name in names:
        match = _SEGMENT_NAME.match(name)
        if match is None or _pid_alive(int(match.group(1))):
            continue
        try:
            os.unlink(os.path.join(shm_dir, name))
            removed.append(name)
        except OSError:  # pragma: no cover - lost a race to another sweep
            pass
    return removed


# ----------------------------------------------------------------------
# Worker side: packing results into segments
# ----------------------------------------------------------------------
class SegmentWriter:
    """Creates, fills, and recycles one worker's result segments.

    ``pack`` lays every ``materialize`` rank array of a response into
    one segment and returns a picklable descriptor; the segment stays
    ``busy`` until the parent's views die and it sends a ``recycle``
    message back, after which the mapping goes on a small free list
    and the next response reuses it (best fit) instead of allocating.
    """

    def __init__(self, prefix: str, max_pooled: int = 4):
        self.prefix = prefix
        self.max_pooled = max_pooled
        self.created = 0  #: segments allocated (not reuses)
        self.recycled = 0  #: responses served from the free list
        self._seq = itertools.count()
        self._free: List[shared_memory.SharedMemory] = []
        self._busy: Dict[str, shared_memory.SharedMemory] = {}

    # ------------------------------------------------------------------
    def pack(self, results: Sequence[ShardResult]) -> tuple:
        """Flatten results into ``(light_results, segment_name, nbytes)``.

        ``light_results`` mirror each :class:`ShardResult` with rank
        arrays replaced by ``(offset, count)`` spans into the segment;
        responses with no rank bytes ship ``segment_name=None``.
        """
        arrays: List[np.ndarray] = []
        light: List[tuple] = []
        offset = 0
        for result in results:
            if result.mode != "materialize":
                light.append(
                    (result.index, result.shard_id, result.mode,
                     result.counts, result.found, None, result.observations)
                )
                continue
            layout: List[Tuple[str, int, int]] = []
            for name, ranks in result.ranks.items():
                ranks = np.ascontiguousarray(ranks, dtype=_RANK_DTYPE)
                if len(ranks) == 0:
                    # Nothing to ship; the parent rebuilds an empty
                    # array without touching the segment.
                    layout.append((name, 0, 0))
                    continue
                layout.append((name, offset, len(ranks)))
                arrays.append(ranks)
                offset += ranks.nbytes
            light.append(
                (result.index, result.shard_id, "materialize",
                 None, False, layout, result.observations)
            )
        if offset == 0:
            return (light, None, 0)
        shm = self._obtain(offset)
        plane = np.frombuffer(
            shm.buf, dtype=_RANK_DTYPE, count=offset // _RANK_DTYPE.itemsize
        )
        at = 0
        for ranks in arrays:
            plane[at : at + len(ranks)] = ranks
            at += len(ranks)
        del plane  # release the buffer export before the parent maps it
        self._busy[shm.name] = shm
        return (light, shm.name, offset)

    def _obtain(self, nbytes: int) -> shared_memory.SharedMemory:
        best = None
        for i, shm in enumerate(self._free):
            if shm.size >= nbytes and (
                best is None or shm.size < self._free[best].size
            ):
                best = i
        if best is not None:
            self.recycled += 1
            return self._free.pop(best)
        self.created += 1
        shm = shared_memory.SharedMemory(
            name=f"{self.prefix}-{next(self._seq)}", create=True, size=nbytes
        )
        _untrack(shm)
        return shm

    # ------------------------------------------------------------------
    def release(self, name: str) -> None:
        """The parent's views died: pool the segment or unlink it."""
        shm = self._busy.pop(name, None)
        if shm is None:
            return
        if len(self._free) < self.max_pooled:
            self._free.append(shm)
        else:
            self._discard(shm)

    @staticmethod
    def _discard(shm: shared_memory.SharedMemory) -> None:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - writer-held export
            pass
        _unlink_segment(shm.name)

    def close(self) -> None:
        """Unlink everything this writer still owns."""
        for shm in [*self._free, *self._busy.values()]:
            self._discard(shm)
        self._free.clear()
        self._busy.clear()

    def info(self) -> dict:
        return {
            "created": self.created,
            "recycled": self.recycled,
            "free": len(self._free),
            "busy": len(self._busy),
        }


def _fabric_worker(
    directory, mmap, inbox, outbox, idx, prefix
):  # pragma: no cover - runs in child processes; components unit-tested
    """One fabric worker's request loop (runs in a child process)."""
    state = ShardWorkerState(directory, mmap=mmap)
    writer = SegmentWriter(prefix)
    while True:
        message = inbox.get()
        kind = message[0]
        if kind == "stop":
            writer.close()
            break
        if kind == "recycle":
            writer.release(message[1])
            continue
        if kind == "stats":
            outbox.put(
                ("stats", idx,
                 {"prefix_cache": state.prefix_cache.info(),
                  "segments": writer.info()})
            )
            continue
        seq, tasks = message[1], message[2]
        try:
            payload = writer.pack(state.run_group(tasks))
        except Exception:  # repro: allow[REP007] - worker crash boundary: any failure ships its traceback to the parent instead of killing the loop
            outbox.put(("err", idx, seq, traceback.format_exc()))
            continue
        outbox.put(("done", idx, seq, payload))


# ----------------------------------------------------------------------
# Parent side: mapping segments as zero-copy views
# ----------------------------------------------------------------------
class _SegmentArray(np.ndarray):
    """A rank array that keeps its shared-memory lease alive.

    Any view derived from it (slices, ``astype(copy=False)`` results
    that share memory, the frozen views the service hands out) inherits
    ``_lease`` through ``__array_finalize__`` — so a segment can never
    be recycled while data derived from it is reachable.
    """

    def __array_finalize__(self, obj):
        if obj is not None:
            self._lease = getattr(obj, "_lease", None)


class _Lease:
    """One attached segment; dies → the segment is releasable."""

    __slots__ = ("shm", "owner", "__weakref__")

    def __init__(self, shm: shared_memory.SharedMemory, owner: int):
        self.shm = shm
        self.owner = owner

    def view(self, offset: int, count: int) -> np.ndarray:
        if count == 0:
            return np.empty(0, dtype=_RANK_DTYPE)
        flat = np.frombuffer(
            self.shm.buf, dtype=_RANK_DTYPE, count=count, offset=offset
        )
        array = flat.view(_SegmentArray)
        array._lease = self
        return array


class SegmentPool:
    """Parent-side registry of attached segments (the ref-count home).

    ``attach`` maps a worker's segment and hands out a :class:`_Lease`;
    a ``weakref.finalize`` on the lease fires when the last derived
    view dies and routes the name back to the owning worker for reuse.
    ``close`` unlinks every name still attached — existing numpy views
    stay valid (POSIX keeps unlinked mappings alive); their finalizers
    then find the pool closed and simply drop their handles.
    """

    def __init__(self, recycle):
        self._recycle = recycle  # guarded-by: _lock  ((owner, name) -> None, or None when closed)
        self._lock = threading.Lock()
        self._live: Dict[str, weakref.ref] = {}  # guarded-by: _lock
        #: Handles whose close() hit a transient BufferError (the last
        #: view was still mid-deallocation); retried on every attach.
        self._graveyard: List[shared_memory.SharedMemory] = []  # guarded-by: _lock
        self.attached = 0  # guarded-by: _lock

    def attach(self, name: str, owner: int) -> _Lease:
        self._reap()
        shm = _AttachedSegment(name=name)
        _untrack(shm)
        lease = _Lease(shm, owner)
        with self._lock:
            self.attached += 1
            self._live[name] = weakref.ref(lease)
        weakref.finalize(lease, self._released, name, owner, shm)
        return lease

    def unpack(self, payload: tuple, owner: int) -> List[ShardResult]:
        """Rebuild :class:`ShardResult` values around zero-copy views."""
        light, segment, _ = payload
        lease = self.attach(segment, owner) if segment else None
        results: List[ShardResult] = []
        for index, shard_id, mode, counts, found, layout, observations in light:
            if mode == "materialize":
                ranks = {
                    name: (
                        lease.view(offset, count)
                        if count
                        else np.empty(0, dtype=_RANK_DTYPE)
                    )
                    for name, offset, count in layout
                }
                results.append(
                    ShardResult(
                        index, shard_id, "materialize",
                        ranks=ranks, observations=observations,
                    )
                )
            elif mode == "count":
                results.append(
                    ShardResult(
                        index, shard_id, "count",
                        counts=counts, observations=observations,
                    )
                )
            else:
                results.append(
                    ShardResult(
                        index, shard_id, "exists",
                        found=found, observations=observations,
                    )
                )
        return results

    # ------------------------------------------------------------------
    def _released(self, name: str, owner: int, shm) -> None:
        """Finalizer: the last view over ``name`` died.

        The finalizer can run while that view's deallocation is still
        unwinding (its buffer export not yet dropped), making
        ``close()`` transiently impossible — the handle is parked for a
        later retry.  Either way the segment's *data* is unreachable,
        so it is safe to hand back for reuse immediately.
        """
        with self._lock:
            self._live.pop(name, None)
            recycle = self._recycle
        try:
            shm.close()
        except BufferError:
            with self._lock:
                self._graveyard.append(shm)
        if recycle is not None:
            try:
                recycle(owner, name)
            except (OSError, ValueError):  # queues may be torn down already
                pass

    def _reap(self) -> None:
        """Retry parked handle closes (their views have unwound by now)."""
        with self._lock:
            parked, self._graveyard = self._graveyard, []
        for shm in parked:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - still unwinding
                with self._lock:
                    self._graveyard.append(shm)

    def close(self) -> None:
        """Stop recycling and unlink every still-attached name."""
        with self._lock:
            self._recycle = None
            names = list(self._live)
        for name in names:
            _unlink_segment(name)
        self._reap()

    def live_segments(self) -> int:
        with self._lock:
            return sum(1 for ref in self._live.values() if ref() is not None)


class FabricBackend(ExecutionBackend):
    """Shard-affine long-lived workers with shared-memory result planes.

    Parameters
    ----------
    store:
        The sharded store to execute against.
    workers:
        Worker process count; ``None`` = one per shard, capped by the
        usable CPUs (:func:`~repro.service.executor.default_workers`).
    steal_threshold:
        How much deeper (in queued units) the affine worker's backlog
        must run than the least-loaded worker's before a unit is stolen.
    """

    name = "fabric"

    def __init__(
        self,
        store: ShardedStore,
        workers: Optional[int] = None,
        steal_threshold: int = 2,
    ):
        super().__init__(store)
        if workers is not None and workers < 1:
            raise ReproError("fabric needs workers >= 1")
        self._workers = default_workers(store) if workers is None else int(workers)
        self.steal_threshold = int(steal_threshold)
        self.stolen = 0  #: units routed away from their affine worker
        self.dispatched = [0] * self._workers  #: units sent, per worker
        self._ctx = multiprocessing.get_context()
        self._prefix = f"repro-fab-{os.getpid()}-{next(_INSTANCES)}"
        self._seq = itertools.count()
        self._generation = [0] * self._workers
        self._procs: Optional[list] = None
        self._inboxes: Optional[list] = None
        self._outboxes: Optional[list] = None
        self._merged: Optional[queue.Queue] = None
        self._drainers: Optional[list] = None
        self._pool: Optional[SegmentPool] = None
        # Recover segments a crashed predecessor left behind before we
        # start minting our own (mirrors the store's orphan sweep).
        sweep_orphan_segments()

    @property
    def workers(self) -> int:
        return self._workers

    # ------------------------------------------------------------------
    def _ensure_workers(self) -> None:
        if self._procs is not None:
            return
        self._merged = queue.Queue()
        self._outboxes = [self._ctx.Queue() for _ in range(self._workers)]
        self._inboxes = [self._ctx.Queue() for _ in range(self._workers)]
        self._pool = SegmentPool(self._send_recycle)
        self._procs = [self._spawn(idx) for idx in range(self._workers)]
        self._drainers = [self._start_drain(idx) for idx in range(self._workers)]

    def _start_drain(self, idx: int) -> threading.Thread:
        """Pump one worker's outbox into the in-process merged queue.

        The dispatch loop never reads a ``multiprocessing.Queue``
        directly: a worker SIGKILLed mid-``put`` leaves a partial frame
        in its pipe, and any parent ``get()`` on that channel would
        block forever inside ``recv`` waiting for bytes that will never
        arrive.  Confining each cross-process read to a dedicated
        thread means corruption wedges only that thread, which is
        abandoned with its queue at respawn — the dispatch loop keeps
        draining the plain ``queue.Queue`` and stays responsive.
        """
        source = self._outboxes[idx]  # bind the queue, not the slot:
        sink = self._merged  # respawn swaps the slot under us

        def drain() -> None:
            while True:
                try:
                    message = source.get()
                except (OSError, ValueError, EOFError):
                    return  # queue torn down under us at close()
                if message[0] == "drain-stop":
                    return
                sink.put(message)

        thread = threading.Thread(
            target=drain, daemon=True, name=f"fabric-drain-{idx}"
        )
        thread.start()
        return thread

    def _spawn(self, idx: int):
        generation = self._generation[idx]
        self._generation[idx] += 1
        process = self._ctx.Process(
            target=_fabric_worker,
            args=(
                self.store.directory,
                self.store.mmap,
                self._inboxes[idx],
                self._outboxes[idx],
                idx,
                f"{self._prefix}-w{idx}g{generation}",
            ),
            daemon=True,
        )
        process.start()
        return process

    def _send_recycle(self, owner: int, name: str) -> None:
        inboxes = self._inboxes
        if inboxes is not None:
            inboxes[owner].put(("recycle", name))

    # ------------------------------------------------------------------
    def _assign(self, shard_id: int, depths: List[int]) -> int:
        """Affine worker, unless its backlog justifies stealing."""
        affine = shard_id % self._workers
        laggard = min(range(self._workers), key=depths.__getitem__)
        if depths[affine] - depths[laggard] >= self.steal_threshold:
            self.stolen += 1
            return laggard
        return affine

    def _dispatch(self, grouped: List[List[ShardTask]]) -> List[ShardResult]:
        self._ensure_workers()
        units = _split_for_pool(grouped, self._workers)
        depths = [0] * self._workers
        pending: Dict[int, tuple] = {}
        for unit in units:
            idx = self._assign(unit[0].shard_id, depths)
            seq = next(self._seq)
            pending[seq] = (idx, unit)
            depths[idx] += 1
            self.dispatched[idx] += 1
            self._inboxes[idx].put(("run", seq, unit))
        outcomes: List[ShardResult] = []
        while pending:
            try:
                message = self._merged.get(timeout=0.25)
            except queue.Empty:
                self._respawn_dead(pending)
                continue
            kind, idx = message[0], message[1]
            if kind == "done":
                seq, payload = message[2], message[3]
                if pending.pop(seq, None) is None:
                    # A duplicate from re-dispatch after a worker death
                    # (or a straggler from an errored batch): hand the
                    # segment straight back for reuse.
                    self._discard(payload, idx)
                    continue
                outcomes.extend(self._pool.unpack(payload, idx))
            elif kind == "err":
                seq, text = message[2], message[3]
                pending.pop(seq, None)
                raise ReproError(f"fabric worker {idx} failed:\n{text}")
            # "stats" replies can only interleave here if a caller
            # abandoned worker_stats() mid-read; drop them.
        return outcomes

    def _discard(self, payload: tuple, owner: int) -> None:
        _, segment, _ = payload
        if segment:
            self._send_recycle(owner, segment)

    def _respawn_dead(self, pending: Dict[int, tuple]) -> None:
        """Replace dead workers and re-dispatch their in-flight units.

        Both of the dead worker's queues are abandoned, not inherited.
        The inbox: ``Queue.get()`` holds the queue's reader lock *while
        blocked waiting for data*, so a worker killed at idle dies
        owning that semaphore and a replacement reading the same queue
        would deadlock on it.  The outbox: a worker killed mid-``put``
        dies holding the write lock (wedging any other writer — hence
        one outbox per worker) and may leave a partial frame that would
        block the reader forever; its drain thread is left behind on
        the stale queue (it still relays any intact completions, which
        dedup by sequence number) and a fresh queue + drain thread take
        the slot.  Every pending unit assigned to the worker is re-sent
        (units stranded in the old inbox are a subset of ``pending``,
        so nothing is lost) and duplicate segments recycle harmlessly.
        Segments the dead generation minted stay readable through live
        leases and are swept by ``close()``.
        """
        for idx, process in enumerate(self._procs):
            if process.is_alive():
                continue
            process.join()
            stale = self._inboxes[idx]
            stale.cancel_join_thread()
            stale.close()
            self._inboxes[idx] = self._ctx.Queue()
            self._outboxes[idx].cancel_join_thread()
            self._outboxes[idx] = self._ctx.Queue()
            self._procs[idx] = self._spawn(idx)
            self._drainers[idx] = self._start_drain(idx)
            for seq, (owner, unit) in pending.items():
                if owner == idx:
                    self._inboxes[idx].put(("run", seq, unit))

    # ------------------------------------------------------------------
    def worker_stats(self) -> dict:
        """Per-worker prefix-cache and segment counters (and the
        parent's routing totals) — the observability hook the affinity
        tests and ``/stats`` build on."""
        self._ensure_workers()
        for inbox in self._inboxes:
            inbox.put(("stats",))
        stats: List[Optional[dict]] = [None] * self._workers
        needed = self._workers
        while needed:
            message = self._merged.get(timeout=10.0)
            if message[0] == "stats" and stats[message[1]] is None:
                stats[message[1]] = message[2]
                needed -= 1
        return {
            "workers": stats,
            "dispatched": list(self.dispatched),
            "stolen": self.stolen,
            "segments_attached": self._pool.attached if self._pool else 0,
            "segments_live": self._pool.live_segments() if self._pool else 0,
        }

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop workers and unlink every fabric segment (idempotent).

        Rank arrays already handed out (service result cache, caller
        references) stay readable: names are unlinked, mappings
        survive until their last view dies.
        """
        if self._procs is None:
            return
        procs, self._procs = self._procs, None
        inboxes, self._inboxes = self._inboxes, None
        outboxes, self._outboxes = self._outboxes, None
        drainers, self._drainers = self._drainers, None
        for inbox in inboxes:
            try:
                inbox.put(("stop",))
            except (OSError, ValueError):  # pragma: no cover - torn down
                pass
        for process in procs:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - wedged worker
                process.terminate()
                process.join()
        # Release the drain threads: workers have exited, so each
        # outbox is quiescent and the sentinel is the next message.
        for outbox in outboxes:
            try:
                outbox.put(("drain-stop",))
            except (OSError, ValueError):  # pragma: no cover - torn down
                pass
        for thread in drainers:
            thread.join(timeout=5.0)
        for channel in [*inboxes, *outboxes]:
            channel.cancel_join_thread()
            channel.close()
        self._merged = None
        self._pool.close()
        self._pool = None
        # Backstop for segments a terminated worker never unlinked.
        try:
            leftovers = [
                name
                for name in os.listdir(_SHM_DIR)
                if name.startswith(self._prefix + "-")
            ]
        except OSError:  # pragma: no cover - no /dev/shm
            leftovers = []
        for name in leftovers:
            try:
                os.unlink(os.path.join(_SHM_DIR, name))
            except OSError:
                pass
