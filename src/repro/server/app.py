"""The asyncio HTTP/JSON front door for a :class:`QueryService`.

Pure stdlib (``asyncio.start_server`` + hand-rolled HTTP/1.1): no
third-party runtime dependency, matching the rest of the repo.  The
request path is::

    connection → parse request → [draining? 503] → [rate limit? 429]
       → [admission queue full? 503] → coalescer / dispatch lane
       → JSON response (admission slot released before the write)

Endpoints
---------
``GET /health``
    Liveness: status (``ok``/``draining``), store epoch, uptime.
    Never rate-limited or queued — observable under any overload.
``GET /stats``
    The full statistics surface: server counters + per-endpoint
    latency histograms (p50/p99), coalescer batch accounting,
    admission queue depth + shed counts, and the service's consistent
    :meth:`~repro.service.service.QueryService.stats_snapshot` (epoch,
    cache hit rates).
``POST /query``
    One query: ``{"query": ..., "mode"?, "engine"?, "use_planner"?,
    "use_cache"?, "document"?}``.  Unscoped queries coalesce with
    concurrent arrivals into one ``execute_batch``.
``POST /batch``
    An explicit batch: ``{"queries": [...], "mode"?}`` (one mode or
    one per query) — already batched, so it skips the window and goes
    straight to the dispatch lane.
``POST /update``
    ``{"ops": [...]}`` in the JSON ops-file format of
    :func:`~repro.service.updates.parse_ops`; applied atomically.

Protocol guarantees (the test suite pins each):

* **Backpressure, not backlog** — over-rate clients get 429 and a
  saturated server gets 503, both with ``Retry-After``, in O(1).
  ``X-Client-Id`` is advisory; rate enforcement anchors on the peer
  address with a per-peer backstop so rotating ids cannot bypass it.
* **Coalescing shares work, never failures** — queries are validated
  per-request before they may join a batch, and a batch that still
  fails mid-flight is re-run per query; one client's bad input can
  only 400 that client, never its coalesced siblings.
* **Slow clients cannot wedge the server** — header/body reads and
  response writes carry timeouts; a stalled peer costs one connection,
  never a dispatch lane or an admission slot.
* **Graceful shutdown drains** — the listener closes first (new
  connections refused), forming batches flush, in-flight requests get
  their real responses, then connections close.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, NamedTuple, Optional, Tuple

from repro.errors import ReproError, XPathSyntaxError
from repro.server.admission import AdmissionQueue, RateLimiter, retry_after_header
from repro.server.coalescer import CoalescerDraining, QueryCoalescer
from repro.server.stats import ServerStats
from repro.service.service import QueryService, ServiceResult
from repro.service.updates import parse_ops
from repro.xpath.axes import resolve_engine
from repro.xpath.evaluator import parse_with_cache
from repro.xpath.pipeline import MODES

__all__ = ["QueryServer", "ServerConfig", "ThreadedServer", "result_to_payload"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}

_ENDPOINTS = ("/health", "/stats", "/query", "/batch", "/update")


@dataclass
class ServerConfig:
    """Tunables for one :class:`QueryServer` (CLI flags mirror these)."""

    host: str = "127.0.0.1"
    port: int = 8080  #: 0 = OS-assigned (tests/bench)
    coalesce_window_s: float = 0.004  #: 0 disables coalescing
    max_batch: int = 64  #: flush a forming batch at this size
    rate: float = 0.0  #: per-client requests/second; 0 disables
    burst: float = 16.0  #: per-client token-bucket burst
    peer_rate_factor: float = 4.0  #: per-peer backstop = this × rate/burst
    queue_limit: int = 64  #: admitted-but-unanswered cap; 0 disables
    retry_after_s: float = 1.0  #: advisory backoff for 503 sheds
    header_timeout_s: float = 10.0  #: slow-client guard (request head)
    body_timeout_s: float = 10.0  #: slow-client guard (request body)
    write_timeout_s: float = 10.0  #: slow-client guard (response write)
    max_body_bytes: int = 8 << 20
    dispatch_threads: int = 1  #: blocking-dispatch lanes (1 = serialize)
    drain_timeout_s: float = 10.0  #: shutdown bound on in-flight drain


class _Request(NamedTuple):
    method: str
    path: str
    headers: Dict[str, str]
    body: bytes
    keep_alive: bool


class _HttpError(Exception):
    """A request outcome that is an HTTP status, not a traceback."""

    def __init__(self, status: int, message: str, headers: Optional[dict] = None):
        super().__init__(message)
        self.status = status
        self.headers = dict(headers or {})


class QueryServer:
    """Serve one :class:`QueryService` over HTTP/JSON (asyncio, stdlib).

    The server does not own the service: callers build, enter, and
    close the :class:`QueryService` themselves (the CLI wraps both).
    """

    def __init__(self, service: QueryService, config: Optional[ServerConfig] = None):
        self.service = service
        self.config = config or ServerConfig()
        self.stats = ServerStats()
        self.limiter = RateLimiter(
            self.config.rate,
            self.config.burst,
            peer_factor=self.config.peer_rate_factor,
        )
        self.admission = AdmissionQueue(
            self.config.queue_limit, self.config.retry_after_s
        )
        self._dispatcher = ThreadPoolExecutor(
            max_workers=max(1, self.config.dispatch_threads),
            thread_name_prefix="repro-dispatch",
        )
        self.coalescer = QueryCoalescer(
            service,
            self._dispatcher,
            stats=self.stats,
            window_s=self.config.coalesce_window_s,
            max_batch=self.config.max_batch,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: set = set()
        self._conn_tasks: set = set()
        self._active = 0
        self._draining = False
        self._shutdown_done = False
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting (resolves ``port`` for port 0)."""
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        with contextlib.suppress(asyncio.CancelledError):
            await self._server.serve_forever()

    async def serve(self) -> None:
        """CLI entry: start, run until SIGINT/SIGTERM, drain, return."""
        import signal

        await self.start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(signum, stop.set)
        print(
            f"serving {self.service.store.directory} on "
            f"http://{self.config.host}:{self.port} "
            f"(window {self.config.coalesce_window_s * 1e3:g} ms, "
            f"queue limit {self.config.queue_limit}, "
            f"rate {self.config.rate:g}/s)",
            file=sys.stderr,
            flush=True,
        )
        await stop.wait()
        print("draining...", file=sys.stderr, flush=True)
        await self.shutdown()
        print("server stopped", file=sys.stderr, flush=True)

    async def shutdown(self) -> None:
        """Graceful shutdown: refuse new work, drain in-flight, close.

        Order matters: (1) close the listener so new connections are
        refused at the socket; (2) mark draining so requests already on
        kept-alive connections shed with 503; (3) flush the coalescer
        so every accepted query gets its real answer; (4) wait for
        active handlers to write their responses (bounded by
        ``drain_timeout_s``); (5) close lingering idle connections and
        the dispatch pool.  Idempotent.
        """
        if self._shutdown_done:
            return
        self._shutdown_done = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.coalescer.close()
        deadline = time.monotonic() + self.config.drain_timeout_s
        while self._active > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.005)
        for writer in list(self._writers):
            writer.close()
        # Let connection handlers observe the closed transports and
        # finish; a task still pending at loop teardown would be
        # cancelled mid-cleanup and logged as a CancelledError.
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=5.0)
        self._dispatcher.shutdown(wait=True)

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.connection_opened()
        self._writers.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except asyncio.TimeoutError:
                    break  # slow client: reclaim the connection
                except _HttpError as error:
                    with contextlib.suppress(ConnectionError, asyncio.TimeoutError):
                        await self._write(
                            writer,
                            error.status,
                            {"error": str(error)},
                            error.headers,
                            keep_alive=False,
                        )
                    break
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if request is None:
                    break  # clean EOF between requests
                started = time.perf_counter()
                self._active += 1
                try:
                    status, payload, headers, keep_alive = await self._route(
                        request, writer
                    )
                    try:
                        await self._write(
                            writer, status, payload, headers, keep_alive
                        )
                    except (ConnectionError, asyncio.TimeoutError):
                        keep_alive = False  # client went away mid-response
                finally:
                    self._active -= 1
                    label = (
                        request.path if request.path in _ENDPOINTS else "other"
                    )
                    self.stats.record_response(
                        label, status, time.perf_counter() - started
                    )
                if not keep_alive:
                    break
        finally:
            self._writers.discard(writer)
            self.stats.connection_closed()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
            if task is not None:
                self._conn_tasks.discard(task)

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one HTTP/1.1 request; ``None`` on clean EOF.

        Raises ``asyncio.TimeoutError`` for stalled peers and
        :class:`_HttpError` for malformed/oversized requests.
        """
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), self.config.header_timeout_s
            )
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None
            raise _HttpError(400, "truncated request head") from error
        except asyncio.LimitOverrunError as error:
            raise _HttpError(431, "request head too large") from error
        try:
            lines = head.decode("latin-1").split("\r\n")
            method, target, _version = lines[0].split(" ", 2)
        except ValueError as error:
            raise _HttpError(400, "malformed request line") from error
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        if "transfer-encoding" in headers:
            # Only Content-Length bodies are supported.  Silently
            # ignoring a chunked body would leave the chunk bytes in the
            # stream to be misread as the next request head on this
            # kept-alive connection — reject and close instead.
            raise _HttpError(
                501, "Transfer-Encoding is not supported; send Content-Length"
            )
        length = headers.get("content-length", "0")
        try:
            length = int(length)
        except ValueError as error:
            raise _HttpError(400, "bad Content-Length") from error
        if length > self.config.max_body_bytes:
            raise _HttpError(413, "request body too large")
        body = b""
        if length:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), self.config.body_timeout_s
                )
            except asyncio.IncompleteReadError as error:
                raise _HttpError(400, "truncated request body") from error
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        path = target.split("?", 1)[0]
        return _Request(method.upper(), path, headers, body, keep_alive)

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        headers: Optional[dict],
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write("\r\n".join(head).encode("latin-1") + b"\r\n\r\n" + body)
        await asyncio.wait_for(writer.drain(), self.config.write_timeout_s)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> Tuple[int, dict, dict, bool]:
        """Dispatch one parsed request; never raises."""
        try:
            if request.path == "/health":
                self._require_method(request, "GET")
                return 200, self._health_payload(), {}, request.keep_alive
            if request.path == "/stats":
                self._require_method(request, "GET")
                return 200, self._stats_payload(), {}, request.keep_alive
            if request.path not in _ENDPOINTS:
                raise _HttpError(404, f"no such endpoint: {request.path}")
            self._require_method(request, "POST")
            if self._draining:
                self.stats.record_shed("draining")
                raise _HttpError(
                    503,
                    "server is draining",
                    {"Retry-After": retry_after_header(self.config.retry_after_s)},
                )
            shed = self._admit(request, writer)
            if shed is not None:
                raise shed
            try:
                if request.path == "/query":
                    payload = await self._handle_query(request)
                elif request.path == "/batch":
                    payload = await self._handle_batch(request)
                else:
                    payload = await self._handle_update(request)
            finally:
                # Release before the response write: a slow reader may
                # stall for seconds and must not pin an admission slot.
                self.admission.leave()
            return 200, payload, {}, request.keep_alive
        except _HttpError as error:
            keep = request.keep_alive and error.status in (404, 405, 400, 429, 503)
            return error.status, {"error": str(error)}, error.headers, keep
        except XPathSyntaxError as error:
            message = str(error).strip().splitlines()[0]
            return 400, {"error": message}, {}, request.keep_alive
        except CoalescerDraining as error:
            # A request that passed the _draining check can still lose
            # the race against shutdown at coalescer.submit — that is a
            # server-side drain, not a client error.
            self.stats.record_shed("draining")
            return (
                503,
                {"error": str(error)},
                {"Retry-After": retry_after_header(self.config.retry_after_s)},
                False,
            )
        except ReproError as error:
            return 400, {"error": str(error)}, {}, request.keep_alive
        except Exception as error:  # noqa: BLE001  # repro: allow[REP007] - the 500 boundary: one bad handler must answer 500, not kill the connection loop
            print(
                f"server error on {request.method} {request.path}: "
                f"{type(error).__name__}: {error}",
                file=sys.stderr,
            )
            return 500, {"error": "internal server error"}, {}, False

    @staticmethod
    def _require_method(request: _Request, method: str) -> None:
        if request.method != method:
            raise _HttpError(
                405, f"{request.path} takes {method}", {"Allow": method}
            )

    def _admit(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> Optional[_HttpError]:
        """Rate-limit + admission gates; an ``_HttpError`` to shed."""
        peername = writer.get_extra_info("peername")
        peer = peername[0] if peername else "unknown"
        header = request.headers.get("x-client-id")
        # X-Client-Id is advisory: it subdivides fairness within one
        # peer but enforcement anchors on the peer address, which the
        # client cannot choose — ids are scoped to their peer and a
        # per-peer backstop bucket bounds id rotation.
        client = f"{peer}#{header}" if header else peer
        wait = self.limiter.admit(client, peer=peer if header else None)
        if wait > 0:
            self.stats.record_shed("rate_limited")
            return _HttpError(
                429,
                f"rate limit exceeded for client {client!r}",
                {"Retry-After": retry_after_header(wait)},
            )
        if not self.admission.try_enter():
            self.stats.record_shed("queue_full")
            return _HttpError(
                503,
                "admission queue full",
                {"Retry-After": retry_after_header(self.admission.retry_after_s)},
            )
        return None

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _json_body(self, request: _Request) -> dict:
        try:
            body = json.loads(request.body.decode("utf-8") or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise _HttpError(400, f"request body is not valid JSON: {error}")
        if not isinstance(body, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return body

    @staticmethod
    def _field(body: dict, name: str, kind, required: bool = False, default=None):
        value = body.get(name, default)
        if value is None and not required:
            return default
        if value is None or not isinstance(value, kind):
            raise _HttpError(400, f"field {name!r} must be a {kind.__name__}")
        return value

    async def _handle_query(self, request: _Request) -> dict:
        body = self._json_body(request)
        query = self._field(body, "query", str, required=True)
        mode = self._field(body, "mode", str, default="materialize")
        engine = self._field(body, "engine", str)
        document = self._field(body, "document", str)
        use_planner = self._field(body, "use_planner", bool)
        use_cache = self._field(body, "use_cache", bool, default=True)
        # Validate everything per-request *before* the query may join a
        # coalesced batch: a syntax error, bad mode, or unknown engine
        # must 400 this request alone — inside execute_batch it would
        # abort the whole batch and contaminate other clients' queries.
        if mode not in MODES:
            raise _HttpError(
                400,
                f"unknown result mode {mode!r} (expected one of {MODES})",
            )
        if engine is not None:
            engine = resolve_engine(engine)  # ReproError → 400
        parse_with_cache(query, self.service.plan_cache)  # syntax → 400
        if document is not None:
            # Scoped queries target one member document — nothing to
            # share with the batch, so they take the dispatch lane solo.
            result = await self.coalescer.run(
                lambda: self.service.execute(
                    query,
                    engine=engine,
                    document=document,
                    use_cache=use_cache,
                    use_planner=use_planner,
                    mode=mode,
                )
            )
        else:
            result = await self.coalescer.submit(
                query,
                engine=engine,
                mode=mode,
                use_planner=use_planner,
                use_cache=use_cache,
            )
        return result_to_payload(result)

    async def _handle_batch(self, request: _Request) -> dict:
        body = self._json_body(request)
        queries = self._field(body, "queries", list, required=True)
        if not queries or not all(isinstance(q, str) for q in queries):
            raise _HttpError(400, "field 'queries' must be a non-empty "
                                  "list of strings")
        mode = body.get("mode", "materialize")
        if not isinstance(mode, (str, list)):
            raise _HttpError(400, "field 'mode' must be a string or a list")
        engine = self._field(body, "engine", str)
        use_planner = self._field(body, "use_planner", bool)
        use_cache = self._field(body, "use_cache", bool, default=True)
        started = time.perf_counter()
        results = await self.coalescer.run(
            lambda: self.service.execute_batch(
                queries,
                engine=engine,
                use_cache=use_cache,
                use_planner=use_planner,
                mode=mode,
            )
        )
        return {
            "results": [result_to_payload(r) for r in results],
            "elapsed_ms": round((time.perf_counter() - started) * 1e3, 3),
        }

    async def _handle_update(self, request: _Request) -> dict:
        body = self._json_body(request)
        raw_ops = self._field(body, "ops", list, required=True)
        ops = parse_ops(raw_ops)  # validates *before* taking the lane
        summary = await self.coalescer.run(
            lambda: self.service.apply_updates(ops)
        )
        return {
            "epoch": summary["epoch"],
            "applied": summary["applied"],
            "shards": list(summary["shards"]),
        }

    def _health_payload(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "epoch": self.service.store.epoch,
            "documents": len(self.service.store.document_names()),
        }

    def _stats_payload(self) -> dict:
        return {
            "server": self.stats.snapshot(),
            "admission": {
                **self.admission.info(),
                "rate": self.limiter.rate,
                "burst": self.limiter.burst,
                "clients": self.limiter.clients(),
            },
            "coalescer": {
                "window_ms": self.config.coalesce_window_s * 1e3,
                "max_batch": self.config.max_batch,
                "pending": self.coalescer.pending_queries(),
            },
            "service": self.service.stats_snapshot(),
        }


def result_to_payload(result: ServiceResult) -> dict:
    """One :class:`ServiceResult` as its JSON wire shape.

    ``materialize`` ships per-document rank lists, ``count`` ships
    per-document integers, ``exists`` ships one boolean — mirroring the
    in-process payloads so the equivalence tests can compare them
    field by field.
    """
    payload = {
        "query": result.query,
        "engine": result.engine,
        "mode": result.mode,
        "total": int(result.total),
        "from_cache": bool(result.from_cache),
        "elapsed_ms": round(result.elapsed_s * 1e3, 3),
    }
    if result.mode == "exists":
        payload["exists"] = result.exists
    elif result.mode == "count":
        payload["per_document"] = {
            name: int(n) for name, n in result.per_document.items()
        }
    else:
        payload["per_document"] = {
            name: [int(pre) for pre in ranks]
            for name, ranks in result.per_document.items()
        }
    return payload


class ThreadedServer:
    """Run a :class:`QueryServer` on a private event-loop thread.

    The harness tests and the load bench need a live server *and* a
    foreground thread to drive clients from; this wrapper owns the loop
    thread and exposes ``port``/``stop()``.  ``stop()`` performs the
    full graceful shutdown (drain, then join).
    """

    def __init__(self, service: QueryService, config: Optional[ServerConfig] = None):
        self.service = service
        self.config = config or ServerConfig(port=0)
        self.server: Optional[QueryServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    def start(self) -> "ThreadedServer":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-server",
            daemon=True,
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise self._error
        if self.server is None or self.server.port is None:
            raise ReproError("server failed to start within 30s")
        return self

    async def _main(self) -> None:
        try:
            self._loop = asyncio.get_running_loop()
            self._stop_event = asyncio.Event()
            self.server = QueryServer(self.service, self.config)
            await self.server.start()
        except BaseException as error:  # noqa: BLE001  # repro: allow[REP007] - startup failures (incl. KeyboardInterrupt) must cross threads and re-raise in start()
            self._error = error
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        await self.server.shutdown()
        # The drain is complete — no dispatch can still be in flight —
        # so release the service's execution backend (worker processes,
        # shared-memory segments) before the loop stops.
        self.service.close()

    @property
    def port(self) -> int:
        assert self.server is not None and self.server.port is not None
        return self.server.port

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: drain in-flight work, then join the loop."""
        if self._loop is not None and self._stop_event is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ThreadedServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
