"""Admission control: per-client token buckets + a bounded queue.

Two independent gates stand between a connection and the query engine,
and both *shed* instead of queueing unboundedly — the grid-file lesson
of partitioned, bounded access applied to a request stream:

1. :class:`RateLimiter` — one token bucket per client (peer address or
   ``X-Client-Id``).  A client over its rate gets **429** with a
   ``Retry-After`` computed from its own bucket, and cannot starve
   other clients: buckets are independent and the table is bounded
   (least-recently-seen clients are evicted first, which forgives —
   never punishes — returning clients by handing them a fresh burst).

2. :class:`AdmissionQueue` — a global cap on requests admitted but not
   yet answered (coalescing window + dispatch + serialization).  When
   the server is saturated the queue fills and new work gets **503** +
   ``Retry-After`` immediately — a cheap rejection the client can act
   on, instead of an unbounded backlog where every queued request's
   latency grows without limit.  This is what keeps p99 *bounded* under
   overload in ``bench_server_load.py``.

Both gates are plain locked objects (no asyncio coupling) so the unit
tests and the load bench can drive them from threads directly.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict
from typing import Optional

from repro.errors import ReproError

__all__ = ["AdmissionQueue", "RateLimiter", "TokenBucket"]


class TokenBucket:
    """A continuous-refill token bucket.

    Starts full at ``burst`` tokens, refills at ``rate`` tokens/second
    up to ``burst``.  :meth:`try_acquire` either takes a token (returns
    ``0.0``) or returns the seconds until one will be available — the
    caller's ``Retry-After``.
    """

    def __init__(self, rate: float, burst: float):
        if rate <= 0 or burst <= 0:
            raise ReproError("token bucket rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._updated = time.monotonic()

    def try_acquire(self, now: Optional[float] = None) -> float:
        """Take one token if available; else the wait in seconds."""
        if now is None:
            now = time.monotonic()
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now
        # The epsilon admits a client that waited *exactly* the advised
        # time (float refill arithmetic can land at 1.0 - 1e-15).
        if self._tokens >= 1.0 - 1e-9:
            self._tokens = max(0.0, self._tokens - 1.0)
            return 0.0
        return (1.0 - self._tokens) / self.rate


class RateLimiter:
    """Per-client token buckets behind one lock.

    ``rate <= 0`` disables limiting entirely (every ``admit`` returns
    ``0.0``) — the spelling the CLI uses for ``--rate 0``.  The client
    table is an LRU capped at ``max_clients`` so an adversary cycling
    client ids cannot grow it without bound.
    """

    def __init__(self, rate: float, burst: float, max_clients: int = 4096):
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_clients = int(max_clients)
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def admit(self, client: str) -> float:
        """``0.0`` to admit, else seconds the client should back off."""
        if not self.enabled:
            return 0.0
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = TokenBucket(self.rate, self.burst)
                while len(self._buckets) > self.max_clients:
                    self._buckets.popitem(last=False)
            else:
                self._buckets.move_to_end(client)
            return bucket.try_acquire()

    def clients(self) -> int:
        with self._lock:
            return len(self._buckets)


def retry_after_header(wait_s: float) -> str:
    """``Retry-After`` is integral seconds; always advise at least 1."""
    return str(max(1, math.ceil(wait_s)))


class AdmissionQueue:
    """A bounded count of admitted-but-unanswered requests.

    ``try_enter`` admits while fewer than ``limit`` requests are in
    flight and returns ``False`` once the bound is hit — the caller
    sheds with 503 instead of queueing.  ``limit <= 0`` disables the
    bound.  ``retry_after_s`` is the advisory backoff handed to shed
    clients (half the bound's worth of requests at the recent service
    rate would be ideal; a fixed small constant keeps it predictable).
    """

    def __init__(self, limit: int, retry_after_s: float = 1.0):
        self.limit = int(limit)
        self.retry_after_s = float(retry_after_s)
        self._depth = 0
        self._lock = threading.Lock()

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    def try_enter(self) -> bool:
        with self._lock:
            if self.limit > 0 and self._depth >= self.limit:
                return False
            self._depth += 1
            return True

    def leave(self) -> None:
        with self._lock:
            if self._depth <= 0:  # pragma: no cover - guards misuse
                raise ReproError("admission queue leave() without enter()")
            self._depth -= 1

    def info(self) -> dict:
        with self._lock:
            return {"depth": self._depth, "limit": self.limit}
