"""Admission control: per-client token buckets + a bounded queue.

Two independent gates stand between a connection and the query engine,
and both *shed* instead of queueing unboundedly — the grid-file lesson
of partitioned, bounded access applied to a request stream:

1. :class:`RateLimiter` — one token bucket per client, plus a per-peer
   *backstop* bucket.  The client key anchors on the peer address (the
   one identity a client cannot choose); the ``X-Client-Id`` header is
   **advisory** — it subdivides fairness among cooperating clients
   behind one peer but never escapes it, because ids are scoped to
   their peer and every admitted request is also charged against the
   peer's backstop bucket (``peer_factor`` × the per-client rate).
   Rotating ids therefore buys at most ``peer_factor`` × one client's
   rate, not a fresh burst per request.  A client over its rate gets
   **429** with a ``Retry-After`` computed from its own bucket, and
   cannot starve siblings behind the same peer: the backstop is only
   charged for requests the per-client gate already granted.  The
   table is bounded (least-recently-seen clients are evicted first,
   which forgives returning clients with a fresh burst — eviction
   churn cannot defeat the limiter, the peer backstop still binds).

2. :class:`AdmissionQueue` — a global cap on requests admitted but not
   yet answered (coalescing window + dispatch + serialization).  When
   the server is saturated the queue fills and new work gets **503** +
   ``Retry-After`` immediately — a cheap rejection the client can act
   on, instead of an unbounded backlog where every queued request's
   latency grows without limit.  This is what keeps p99 *bounded* under
   overload in ``bench_server_load.py``.

Both gates are plain locked objects (no asyncio coupling) so the unit
tests and the load bench can drive them from threads directly.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict
from typing import Dict, Optional

from repro.errors import ReproError

__all__ = ["AdmissionQueue", "RateLimiter", "TokenBucket"]


class TokenBucket:
    """A continuous-refill token bucket.

    Starts full at ``burst`` tokens, refills at ``rate`` tokens/second
    up to ``burst``.  :meth:`try_acquire` either takes a token (returns
    ``0.0``) or returns the seconds until one will be available — the
    caller's ``Retry-After``.
    """

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ReproError("token bucket rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._updated = time.monotonic()

    def try_acquire(self, now: Optional[float] = None) -> float:
        """Take one token if available; else the wait in seconds."""
        if now is None:
            now = time.monotonic()
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now
        # The epsilon admits a client that waited *exactly* the advised
        # time (float refill arithmetic can land at 1.0 - 1e-15).
        if self._tokens >= 1.0 - 1e-9:
            self._tokens = max(0.0, self._tokens - 1.0)
            return 0.0
        return (1.0 - self._tokens) / self.rate


class RateLimiter:
    """Per-client token buckets + per-peer backstops behind one lock.

    ``rate <= 0`` disables limiting entirely (every ``admit`` returns
    ``0.0``) — the spelling the CLI uses for ``--rate 0``.  Both tables
    are LRUs capped at ``max_clients`` so an adversary cycling client
    ids cannot grow them without bound.

    When ``admit`` is given a ``peer``, a request must pass *two*
    buckets: the per-client one (keyed by whatever identity the caller
    chose — typically ``peer#header-id``) and the peer's backstop
    bucket at ``peer_factor`` × (rate, burst).  The backstop is charged
    only after the per-client gate grants, so one over-rate client id
    cannot drain its peer's shared allowance — but cycling fresh ids
    from one address is bounded by the backstop instead of earning a
    full burst per id.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        max_clients: int = 4096,
        peer_factor: float = 4.0,
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_clients = int(max_clients)
        self.peer_factor = float(peer_factor)
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()  # guarded-by: _lock
        self._peers: "OrderedDict[str, TokenBucket]" = OrderedDict()  # guarded-by: _lock
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def _bucket(
        self,
        table: "OrderedDict[str, TokenBucket]",
        key: str,
        rate: float,
        burst: float,
    ) -> TokenBucket:
        bucket = table.get(key)
        if bucket is None:
            bucket = table[key] = TokenBucket(rate, burst)
            while len(table) > self.max_clients:
                table.popitem(last=False)
        else:
            table.move_to_end(key)
        return bucket

    def admit(self, client: str, peer: Optional[str] = None) -> float:
        """``0.0`` to admit, else seconds the client should back off."""
        if not self.enabled:
            return 0.0
        with self._lock:
            bucket = self._bucket(self._buckets, client, self.rate, self.burst)
            wait = bucket.try_acquire()
            if wait > 0 or peer is None or self.peer_factor <= 0:
                return wait
            backstop = self._bucket(
                self._peers,
                peer,
                self.rate * self.peer_factor,
                self.burst * self.peer_factor,
            )
            return backstop.try_acquire()

    def clients(self) -> int:
        with self._lock:
            return len(self._buckets)


def retry_after_header(wait_s: float) -> str:
    """``Retry-After`` is integral seconds; always advise at least 1."""
    return str(max(1, math.ceil(wait_s)))


class AdmissionQueue:
    """A bounded count of admitted-but-unanswered requests.

    ``try_enter`` admits while fewer than ``limit`` requests are in
    flight and returns ``False`` once the bound is hit — the caller
    sheds with 503 instead of queueing.  ``limit <= 0`` disables the
    bound.  ``retry_after_s`` is the advisory backoff handed to shed
    clients (half the bound's worth of requests at the recent service
    rate would be ideal; a fixed small constant keeps it predictable).
    """

    def __init__(self, limit: int, retry_after_s: float = 1.0) -> None:
        self.limit = int(limit)
        self.retry_after_s = float(retry_after_s)
        self._depth = 0  # guarded-by: _lock
        self._lock = threading.Lock()

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    def try_enter(self) -> bool:
        with self._lock:
            if self.limit > 0 and self._depth >= self.limit:
                return False
            self._depth += 1
            return True

    def leave(self) -> None:
        with self._lock:
            if self._depth <= 0:  # pragma: no cover - guards misuse
                raise ReproError("admission queue leave() without enter()")
            self._depth -= 1

    def info(self) -> Dict[str, int]:
        with self._lock:
            return {"depth": self._depth, "limit": self.limit}
