"""Request coalescing: concurrent single queries → one ``execute_batch``.

The service's shared-prefix trie (PR 4) and mode-aware merge (PR 5) do
their best work on *batches* — eight queries opening with the same
steps pay for the common prefix once.  A network server naturally
receives those eight queries as eight separate requests, so the
coalescer holds each arriving query for a small window (a few ms) and
flushes everything that accumulated as **one**
:meth:`~repro.service.service.QueryService.execute_batch` call, fanning
the per-query results back to the waiting handlers.  Per-query result
``mode`` is preserved (mixed-mode batches share prefixes by design);
queries only coalesce with compatible siblings — same engine, planner
and cache settings — via the batch key.

The flush runs on a dedicated dispatcher thread pool (default: one
thread), never on the event loop: the engines hold the GIL for the
duration of a batch, and a single dispatch lane both keeps the serial
executor's worker state single-threaded (it is not thread-safe) and
makes coalescing the real concurrency mechanism instead of thread
interleaving.

All coalescer state is touched only from the event loop thread — the
async-idiomatic alternative to locking.  ``window <= 0`` degrades to
one-batch-per-request (the ablation the load bench measures against).

Sharing a batch never shares *failures*: the HTTP layer pre-validates
each query before it may join a batch, and if a batch call still raises
mid-flight the coalescer falls back to per-query execution so the
exception reaches only the offending submitter — every valid sibling
gets its real answer.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.server.stats import ServerStats
from repro.service.service import QueryService, ServiceResult

__all__ = ["CoalescerDraining", "QueryCoalescer"]


class CoalescerDraining(ReproError):
    """Submission refused because the server is shutting down.

    A distinct type so the HTTP layer can map a drain-race refusal to
    **503** + ``Retry-After`` (a server-side condition) instead of the
    generic ``ReproError`` → 400 client-error path.
    """

#: Queries coalesce only with siblings that share these settings.
BatchKey = Tuple[Optional[str], Optional[bool], bool]


class _Pending:
    """One forming batch: queries + the futures awaiting their results."""

    __slots__ = ("id", "queries", "modes", "futures", "timer")

    def __init__(self, pending_id: int):
        self.id = pending_id
        self.queries: List[str] = []
        self.modes: List[str] = []
        self.futures: List[asyncio.Future] = []
        self.timer: Optional[asyncio.TimerHandle] = None


class QueryCoalescer:
    """Merge concurrent single-query submissions into batched dispatch."""

    def __init__(
        self,
        service: QueryService,
        dispatcher,
        stats: Optional[ServerStats] = None,
        window_s: float = 0.004,
        max_batch: int = 64,
    ):
        self.service = service
        self.window_s = float(window_s)
        self.max_batch = max(1, int(max_batch))
        self._dispatcher = dispatcher
        self._stats = stats if stats is not None else ServerStats()
        self._pending: Dict[BatchKey, _Pending] = {}
        self._ids = itertools.count()
        self._tasks: set = set()
        self._closing = False

    # ------------------------------------------------------------------
    async def submit(
        self,
        query: str,
        engine: Optional[str] = None,
        mode: str = "materialize",
        use_planner: Optional[bool] = None,
        use_cache: bool = True,
    ) -> ServiceResult:
        """Enqueue one query and await its (possibly batched) result."""
        if self._closing:
            raise CoalescerDraining("coalescer is draining; no new queries")
        loop = asyncio.get_running_loop()
        key: BatchKey = (engine, use_planner, use_cache)
        pending = self._pending.get(key)
        if pending is None:
            pending = self._pending[key] = _Pending(next(self._ids))
            if self.window_s > 0:
                pending.timer = loop.call_later(
                    self.window_s, self._flush, key, pending.id
                )
        future: asyncio.Future = loop.create_future()
        pending.queries.append(query)
        pending.modes.append(mode)
        pending.futures.append(future)
        if self.window_s <= 0 or len(pending.queries) >= self.max_batch:
            self._flush(key, pending.id)
        return await future

    async def run(self, fn):
        """Run a blocking callable on the dispatch lane (used for batch
        and update endpoints, which serialize with coalesced flushes)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._dispatcher, fn)

    # ------------------------------------------------------------------
    def _flush(self, key: BatchKey, pending_id: int) -> None:
        """Detach the forming batch and dispatch it (idempotent per
        batch: the timer and the max-batch path may both fire)."""
        pending = self._pending.get(key)
        if pending is None or pending.id != pending_id:
            return
        del self._pending[key]
        if pending.timer is not None:
            pending.timer.cancel()
        task = asyncio.get_running_loop().create_task(self._dispatch(key, pending))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _dispatch(self, key: BatchKey, pending: _Pending) -> None:
        engine, use_planner, use_cache = key
        self._stats.record_batch(len(pending.queries))
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(
                self._dispatcher,
                lambda: self.service.execute_batch(
                    pending.queries,
                    engine=engine,
                    use_cache=use_cache,
                    use_planner=use_planner,
                    mode=pending.modes,
                ),
            )
        except asyncio.CancelledError:
            for future in pending.futures:
                if not future.done():
                    future.cancel()
            raise
        except BaseException as error:  # noqa: BLE001  # repro: allow[REP007] - batch isolation boundary: the failure is re-raised on the offending future(s)
            if len(pending.queries) == 1:
                future = pending.futures[0]
                if not future.done():
                    future.set_exception(error)
                return
            # A batch-level failure (one bad query aborts the whole
            # ``execute_batch``) must not contaminate coalesced siblings
            # from other clients: re-run each query alone so the
            # exception lands only on the offender's future and every
            # valid sibling still gets its real answer.
            self._stats.record_fallback()
            for query, mode, future in zip(
                pending.queries, pending.modes, pending.futures
            ):
                if future.done():
                    continue
                try:
                    result = await loop.run_in_executor(
                        self._dispatcher,
                        lambda q=query, m=mode: self.service.execute(
                            q,
                            engine=engine,
                            use_cache=use_cache,
                            use_planner=use_planner,
                            mode=m,
                        ),
                    )
                except BaseException as solo_error:  # noqa: BLE001  # repro: allow[REP007] - delivered to the one offending future
                    if not future.done():
                        future.set_exception(solo_error)
                else:
                    if not future.done():
                        future.set_result(result)
            return
        for future, result in zip(pending.futures, results):
            if not future.done():
                future.set_result(result)

    # ------------------------------------------------------------------
    def pending_queries(self) -> int:
        """Queries currently held in forming batches (for /stats)."""
        return sum(len(p.queries) for p in self._pending.values())

    async def close(self) -> None:
        """Drain: flush every forming batch, wait for all dispatches.

        Every already-submitted query still gets its real answer — the
        graceful-shutdown contract — while new submissions are refused.
        """
        self._closing = True
        for key, pending in list(self._pending.items()):
            self._flush(key, pending.id)
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
