"""The network front door: an asyncio HTTP/JSON server for the service.

The library answered queries in-process (PRs 1–5); this package serves
*traffic*:

* :class:`~repro.server.app.QueryServer` — stdlib-asyncio HTTP/1.1
  endpoint in front of a :class:`~repro.service.service.QueryService`
  (``/query``, ``/batch``, ``/update``, ``/health``, ``/stats``);
* :class:`~repro.server.coalescer.QueryCoalescer` — concurrent single
  queries arriving within a small window merge into one
  ``execute_batch`` (the shared-prefix trie's unit of work), per-query
  result mode preserved;
* :class:`~repro.server.admission.RateLimiter` /
  :class:`~repro.server.admission.AdmissionQueue` — per-client token
  buckets and a bounded in-flight cap that shed with 429/503 +
  ``Retry-After`` instead of queueing unboundedly;
* :class:`~repro.server.stats.ServerStats` — request counters and
  p50/p99 latency histograms behind ``/stats``.

CLI: ``python -m repro serve store --port 8080``.
"""

from repro.server.admission import AdmissionQueue, RateLimiter, TokenBucket
from repro.server.app import (
    QueryServer,
    ServerConfig,
    ThreadedServer,
    result_to_payload,
)
from repro.server.coalescer import CoalescerDraining, QueryCoalescer
from repro.server.stats import ServerStats

__all__ = [
    "AdmissionQueue",
    "CoalescerDraining",
    "QueryCoalescer",
    "QueryServer",
    "RateLimiter",
    "ServerConfig",
    "ServerStats",
    "ThreadedServer",
    "TokenBucket",
    "result_to_payload",
]
