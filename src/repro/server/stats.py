"""The server's observability surface: request counters + latency.

One :class:`ServerStats` lives per :class:`~repro.server.app.QueryServer`
and is written from the event loop (response accounting) and the
coalescer (batch accounting) while ``/stats`` handlers, tests and the
load bench read it concurrently — every method takes the internal lock,
and latency quantiles come from the bounded
:class:`~repro.counters.LatencyHistogram` rather than per-request
samples, so the surface stays O(1) memory under any traffic.

The ``/stats`` payload stitches three layers together:

* **server** — uptime, per-endpoint request/latency histograms, status
  code counts, open connections;
* **coalescer** — batches flushed, queries coalesced, largest batch
  (the "is the window earning its keep" signal);
* **admission** — queue depth/limit and shed counts (429 rate-limit,
  503 queue-full, 503 draining);
* **service** — the :meth:`~repro.service.service.QueryService.stats_snapshot`
  consistent view (epoch, cache hit rates, planner/engine/workers).
"""

from __future__ import annotations

import threading
import time
from typing import Dict

from repro.counters import LatencyHistogram

__all__ = ["ServerStats"]


class ServerStats:
    """Thread-safe counters + latency histograms for one server."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()  # immutable after publication
        self._histograms: Dict[str, LatencyHistogram] = {}  # guarded-by: _lock
        self._status_counts: Dict[int, int] = {}  # guarded-by: _lock
        self._requests = 0  # guarded-by: _lock
        self._shed: Dict[str, int] = {  # guarded-by: _lock
            "rate_limited": 0,
            "queue_full": 0,
            "draining": 0,
        }
        self._batches = 0  # guarded-by: _lock
        self._coalesced_queries = 0  # guarded-by: _lock
        self._largest_batch = 0  # guarded-by: _lock
        self._fallbacks = 0  # guarded-by: _lock
        self._connections_opened = 0  # guarded-by: _lock
        self._connections_open = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Recording (event loop + coalescer side)
    # ------------------------------------------------------------------
    def record_response(self, endpoint: str, status: int, seconds: float) -> None:
        """Account one finished request (any status, shed or served)."""
        with self._lock:
            self._requests += 1
            self._status_counts[status] = self._status_counts.get(status, 0) + 1
            histogram = self._histograms.get(endpoint)
            if histogram is None:
                histogram = self._histograms[endpoint] = LatencyHistogram()
        # The histogram has its own lock; no need to nest it here.
        histogram.observe(seconds)

    def record_shed(self, kind: str) -> None:
        """Count one load-shedding rejection (``rate_limited`` 429,
        ``queue_full`` / ``draining`` 503)."""
        with self._lock:
            self._shed[kind] = self._shed.get(kind, 0) + 1

    def record_batch(self, size: int) -> None:
        """Account one coalesced ``execute_batch`` flush of ``size``."""
        with self._lock:
            self._batches += 1
            self._coalesced_queries += size
            if size > self._largest_batch:
                self._largest_batch = size

    def record_fallback(self) -> None:
        """Count one failed batch re-run as per-query executions (the
        coalescer's failure-isolation path)."""
        with self._lock:
            self._fallbacks += 1

    def connection_opened(self) -> None:
        with self._lock:
            self._connections_opened += 1
            self._connections_open += 1

    def connection_closed(self) -> None:
        with self._lock:
            self._connections_open -= 1

    # ------------------------------------------------------------------
    # Reading (/stats, tests, bench)
    # ------------------------------------------------------------------
    def shed_total(self) -> int:
        with self._lock:
            return sum(self._shed.values())

    def snapshot(self) -> dict:
        """The server-layer slice of the ``/stats`` payload."""
        with self._lock:
            batches = self._batches
            coalesced = self._coalesced_queries
            histograms = dict(self._histograms)
            payload = {
                "uptime_s": round(time.monotonic() - self._started, 3),
                "requests": self._requests,
                "status": {
                    str(code): n
                    for code, n in sorted(self._status_counts.items())
                },
                "shed": dict(self._shed),
                "connections": {
                    "opened": self._connections_opened,
                    "open": self._connections_open,
                },
                "coalescer": {
                    "batches": batches,
                    "queries": coalesced,
                    "largest_batch": self._largest_batch,
                    "mean_batch": round(coalesced / batches, 2) if batches else 0.0,
                    "fallbacks": self._fallbacks,
                },
            }
        payload["latency"] = {
            endpoint: histogram.snapshot()
            for endpoint, histogram in sorted(histograms.items())
        }
        return payload
