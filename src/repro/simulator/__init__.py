"""Cache/CPU cost model (Sections 4.2–4.3).

The paper's main-memory analysis is analytic: given the cache hierarchy
of their Dual-Pentium 4 Xeon (measured with Calibrator) and the
per-iteration instruction latencies of the scan and copy loops, it
derives which staircase join phase is CPU-bound vs cache-bound and what
sequential bandwidth the machine can sustain.  This package reproduces
that arithmetic with the machine as a parameter:

* :class:`~repro.simulator.cache.CacheLevel` /
  :class:`~repro.simulator.cache.Machine` — the hardware description
  (the paper's machine ships as
  :data:`~repro.simulator.cache.PAPER_MACHINE`);
* :class:`~repro.simulator.cache.CacheSimulator` — a trace-driven
  two-level LRU cache simulator (used to *verify* the analytic model on
  small traces: sequential scans miss once per line, random probes miss
  almost always);
* :mod:`~repro.simulator.cost` — the paper's formulas: cycles per cache
  line for scan/copy phases, the 551 MB/s sequential bandwidth bound,
  prefetching effects, and end-to-end staircase join time estimates.
"""

from repro.simulator.cache import (
    PAPER_MACHINE,
    CacheLevel,
    CacheSimulator,
    Machine,
)
from repro.simulator.cost import (
    COPY_CYCLES_PER_NODE,
    SCAN_CYCLES_PER_NODE,
    cycles_per_cache_line,
    effective_bandwidth_mb_s,
    join_time_estimate,
    phase_bound,
    sequential_bandwidth_mb_s,
)

__all__ = [
    "CacheLevel",
    "Machine",
    "CacheSimulator",
    "PAPER_MACHINE",
    "sequential_bandwidth_mb_s",
    "cycles_per_cache_line",
    "phase_bound",
    "join_time_estimate",
    "effective_bandwidth_mb_s",
    "SCAN_CYCLES_PER_NODE",
    "COPY_CYCLES_PER_NODE",
]
