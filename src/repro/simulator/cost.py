"""The paper's CPU/cache cost formulas (Sections 4.2–4.3).

All constants are named after their origin in the text:

* ``SCAN_CYCLES_PER_NODE = 17`` — "CPU work for one iteration in
  scanpartition_desc is about 17 cy" (computed from Pentium 4 assembler
  latencies, footnote 4);
* ``COPY_CYCLES_PER_NODE = 5`` — "a single node copy iteration takes
  about 5 cycles";
* nodes are 4-byte postorder ranks, so an L2 line holds
  ``line_bytes / 4`` nodes (32 on the paper machine);
* sequential bandwidth of a 2-level machine (Section 4.3):

  .. math::

     BW = \\frac{LS_{L2}}{L_{L2} + (LS_{L2}/LS_{L1}) · L_{L1}}

  which for the paper machine gives 551 MB/s;
* hardware prefetch lifted the measured copy-phase bandwidth to
  719 MB/s, software prefetch + unrolling (Duff's device) to 805 MB/s —
  we model prefetching as hiding a fraction of the miss latency and
  expose the fractions implied by those measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulator.cache import PAPER_MACHINE, Machine

__all__ = [
    "SCAN_CYCLES_PER_NODE",
    "COPY_CYCLES_PER_NODE",
    "NODE_BYTES",
    "sequential_bandwidth_mb_s",
    "cycles_per_cache_line",
    "phase_bound",
    "effective_bandwidth_mb_s",
    "join_time_estimate",
    "JoinCostBreakdown",
    "HW_PREFETCH_HIDE_FRACTION",
    "SW_PREFETCH_HIDE_FRACTION",
]

SCAN_CYCLES_PER_NODE = 17  # footnote 4: comparison + append, Pentium 4
COPY_CYCLES_PER_NODE = 5   # Section 4.2: the tight copy loop
NODE_BYTES = 4             # a postorder rank (Monet void pre column is free)

# Latency-hiding fractions implied by the paper's measurements: the
# no-prefetch bound is 551 MB/s; hardware prefetch measured 719 MB/s
# (hides ≈ 30% of the combined latency), software prefetch + unrolling
# measured 805 MB/s (≈ 46%).
HW_PREFETCH_HIDE_FRACTION = 1.0 - 551.0 / 719.0
SW_PREFETCH_HIDE_FRACTION = 1.0 - 551.0 / 805.0


def sequential_bandwidth_mb_s(machine: Machine = PAPER_MACHINE) -> float:
    """The Section 4.3 sequential-read bandwidth bound (551 MB/s).

    One L2 line costs its own miss latency plus one L1 miss per L1 line
    it spans.
    """
    l1, l2 = machine.l1, machine.l2
    l2_latency_s = l2.miss_latency_ns(machine.clock_ghz) * 1e-9
    l1_latency_s = l1.miss_latency_ns(machine.clock_ghz) * 1e-9
    lines_ratio = l2.line_bytes / l1.line_bytes
    seconds_per_l2_line = l2_latency_s + lines_ratio * l1_latency_s
    return (l2.line_bytes / seconds_per_l2_line) / 1e6


def cycles_per_cache_line(cycles_per_node: int, machine: Machine = PAPER_MACHINE) -> float:
    """CPU cycles spent on the nodes of one L2 cache line.

    17 cy × 32 nodes = 544 cy for the scan loop (exceeds the 387 cy L2
    miss latency → CPU-bound); 5 cy × 32 = 160 cy for the copy loop
    (undercuts it → cache-bound).  Section 4.2's central comparison.
    """
    nodes_per_line = machine.l2.line_bytes // NODE_BYTES
    return float(cycles_per_node * nodes_per_line)


def phase_bound(cycles_per_node: int, machine: Machine = PAPER_MACHINE) -> str:
    """Classify a loop as ``"cpu"``- or ``"cache"``-bound (Section 4.2)."""
    cpu_cycles = cycles_per_cache_line(cycles_per_node, machine)
    if cpu_cycles > machine.l2.miss_latency_cycles:
        return "cpu"
    return "cache"


def effective_bandwidth_mb_s(
    machine: Machine = PAPER_MACHINE,
    prefetch: str = "none",
) -> float:
    """Sequential bandwidth with prefetching latency hiding applied.

    ``prefetch`` ∈ {"none", "hardware", "software"}; the fractions are
    calibrated to the paper's 551 / 719 / 805 MB/s triplet.
    """
    base = sequential_bandwidth_mb_s(machine)
    if prefetch == "none":
        return base
    if prefetch == "hardware":
        return base / (1.0 - HW_PREFETCH_HIDE_FRACTION)
    if prefetch == "software":
        return base / (1.0 - SW_PREFETCH_HIDE_FRACTION)
    raise ValueError(f"unknown prefetch mode {prefetch!r}")


@dataclass(frozen=True)
class JoinCostBreakdown:
    """Estimated cost of one staircase join run on a modelled machine."""

    copy_nodes: int
    scan_nodes: int
    cpu_cycles: float
    memory_cycles: float
    total_seconds: float
    bound: str  # "cpu" or "cache" — which term dominates


def join_time_estimate(
    copy_nodes: int,
    scan_nodes: int,
    machine: Machine = PAPER_MACHINE,
    prefetch: str = "hardware",
    streams: int = 2,
) -> JoinCostBreakdown:
    """Estimate staircase join time from phase node counts.

    ``copy_nodes``/``scan_nodes`` come straight from
    :class:`~repro.counters.JoinStatistics` (``nodes_copied`` /
    ``nodes_scanned``).  Per phase the model takes the *maximum* of the
    CPU term and the memory term (they overlap on an out-of-order core),
    multiplies memory traffic by the stream count (copy reads ``doc`` and
    writes ``result`` — two streams, Section 4.3), and converts cycles to
    seconds with the machine clock.
    """
    bandwidth_bytes_s = effective_bandwidth_mb_s(machine, prefetch) * 1e6
    clock_hz = machine.clock_ghz * 1e9

    def phase(nodes: int, cycles_per_node: int, phase_streams: int):
        cpu = nodes * cycles_per_node
        bytes_moved = nodes * NODE_BYTES * phase_streams
        memory = bytes_moved / bandwidth_bytes_s * clock_hz
        return cpu, memory

    copy_cpu, copy_mem = phase(copy_nodes, COPY_CYCLES_PER_NODE, streams)
    scan_cpu, scan_mem = phase(scan_nodes, SCAN_CYCLES_PER_NODE, 1)
    cpu_cycles = copy_cpu + scan_cpu
    memory_cycles = copy_mem + scan_mem
    total_cycles = max(copy_cpu, copy_mem) + max(scan_cpu, scan_mem)
    bound = "cpu" if (scan_cpu + copy_cpu) >= (scan_mem + copy_mem) else "cache"
    return JoinCostBreakdown(
        copy_nodes=copy_nodes,
        scan_nodes=scan_nodes,
        cpu_cycles=cpu_cycles,
        memory_cycles=memory_cycles,
        total_seconds=total_cycles / clock_hz,
        bound=bound,
    )
