"""Cache hierarchy description and a trace-driven cache simulator.

The machine description carries the constants of Section 4.1:

    Dual-Pentium 4 (Xeon), 2.2 GHz, two cache levels,
    L1: 8 kB, 32-byte lines, 28-cycle miss latency (12.7 ns),
    L2: 512 kB, 128-byte lines, 387-cycle miss latency (176 ns),
    hardware prefetch reading 2 L2 lines ahead.

The :class:`CacheSimulator` replays address traces against fully
associative LRU caches of that shape.  It exists to *validate* the
analytic formulas of :mod:`repro.simulator.cost` on concrete access
patterns: a sequential scan of ``n`` 4-byte postorder ranks must miss
once per line (n/32 L2 misses for 128-byte lines), whereas random probes
of a large array miss nearly always — the quantitative reason staircase
join insists on strictly sequential access (Section 5).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

__all__ = ["CacheLevel", "Machine", "CacheSimulator", "PAPER_MACHINE"]


@dataclass(frozen=True)
class CacheLevel:
    """One cache level.

    ``miss_latency_cycles`` is the full penalty of servicing a miss at
    this level from the level below (the Calibrator numbers the paper
    quotes).
    """

    size_bytes: int
    line_bytes: int
    miss_latency_cycles: int

    @property
    def lines(self) -> int:
        return self.size_bytes // self.line_bytes

    def miss_latency_ns(self, clock_ghz: float) -> float:
        return self.miss_latency_cycles / clock_ghz


@dataclass(frozen=True)
class Machine:
    """CPU + two-level cache description."""

    clock_ghz: float
    l1: CacheLevel
    l2: CacheLevel
    prefetch_lines_ahead: int = 2  # hardware prefetch (Section 4.3)
    prefetch_streams: int = 8

    @property
    def combined_miss_latency_cycles(self) -> int:
        """L1 + L2 miss latency, the 415 cy figure of Section 4.3."""
        return self.l1.miss_latency_cycles + self.l2.miss_latency_cycles

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.clock_ghz * 1e9)


#: The experimentation platform of Section 4.1.
PAPER_MACHINE = Machine(
    clock_ghz=2.2,
    l1=CacheLevel(size_bytes=8 * 1024, line_bytes=32, miss_latency_cycles=28),
    l2=CacheLevel(size_bytes=512 * 1024, line_bytes=128, miss_latency_cycles=387),
)


class CacheSimulator:
    """Fully associative LRU simulation of a two-level hierarchy.

    ``access(address, size)`` touches ``size`` bytes at ``address``;
    lines are allocated in both levels on miss (inclusive hierarchy).
    Counters expose per-level hits/misses and an aggregate stall-cycle
    estimate (`miss × latency`, no overlap — the pessimistic bound the
    paper's bandwidth formula uses).
    """

    def __init__(self, machine: Machine):
        self.machine = machine
        self._l1: OrderedDict = OrderedDict()
        self._l2: OrderedDict = OrderedDict()
        self.l1_hits = 0
        self.l1_misses = 0
        self.l2_hits = 0
        self.l2_misses = 0

    # ------------------------------------------------------------------
    def _touch(self, cache: OrderedDict, capacity: int, line: int) -> bool:
        """LRU lookup-and-insert; returns hit?"""
        if line in cache:
            cache.move_to_end(line)
            return True
        cache[line] = True
        if len(cache) > capacity:
            cache.popitem(last=False)
        return False

    def access(self, address: int, size: int = 4) -> None:
        """Touch ``size`` bytes starting at byte ``address``."""
        machine = self.machine
        first_l1 = address // machine.l1.line_bytes
        last_l1 = (address + size - 1) // machine.l1.line_bytes
        for l1_line in range(first_l1, last_l1 + 1):
            if self._touch(self._l1, machine.l1.lines, l1_line):
                self.l1_hits += 1
                continue
            self.l1_misses += 1
            l2_line = (l1_line * machine.l1.line_bytes) // machine.l2.line_bytes
            if self._touch(self._l2, machine.l2.lines, l2_line):
                self.l2_hits += 1
            else:
                self.l2_misses += 1

    def access_run(self, start: int, count: int, stride: int, size: int = 4) -> None:
        """Touch ``count`` items of ``size`` bytes, ``stride`` bytes apart."""
        address = start
        for _ in range(count):
            self.access(address, size)
            address += stride

    def replay(self, addresses: Iterable[int], size: int = 4) -> None:
        for address in addresses:
            self.access(address, size)

    # ------------------------------------------------------------------
    @property
    def stall_cycles(self) -> float:
        """Pessimistic stall estimate: every miss pays its full latency."""
        return (
            self.l1_misses * self.machine.l1.miss_latency_cycles
            + self.l2_misses * self.machine.l2.miss_latency_cycles
        )

    def reset(self) -> None:
        self._l1.clear()
        self._l2.clear()
        self.l1_hits = self.l1_misses = 0
        self.l2_hits = self.l2_misses = 0

    def summary(self) -> dict:
        return {
            "l1_hits": self.l1_hits,
            "l1_misses": self.l1_misses,
            "l2_hits": self.l2_hits,
            "l2_misses": self.l2_misses,
            "stall_cycles": self.stall_cycles,
        }
