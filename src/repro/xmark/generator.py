"""Deterministic XMark-style auction document generator.

``generate(size_mb)`` builds a document whose encoded node count is
approximately ``size_mb × NODES_PER_MB`` (the paper's 1 GB instance holds
50 844 982 nodes ⇒ ~50 000 nodes per MB) with height 11 and the element
populations the paper's two queries depend on:

* ``/site/people/person/profile`` (level 3) with an optional
  ``education`` child (level 4) — query Q1;
* ``/site/open_auctions/open_auction/bidder/increase`` (increase at
  level 4, one per bidder, several bidders per auction) — query Q2 and
  the ~75 % duplicate ratio of Experiment 1.

The generator is deterministic for a given ``(seed, size)``; two calls
produce byte-identical documents, which the experiment tables rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.encoding.doctable import DocTable
from repro.encoding.prepost import encode
from repro.errors import WorkloadError
from repro.xmark.text import name as person_name, sentence, word
from repro.xmltree.model import Node, document, element, text

__all__ = ["XMarkConfig", "XMarkGenerator", "generate", "generate_table", "NODES_PER_MB"]

#: Nominal encoded nodes per "MB" of document (paper: 50 844 982 per GB).
NODES_PER_MB = 50_000


@dataclass(frozen=True)
class XMarkConfig:
    """Population counts per nominal MB, and distribution knobs.

    The defaults are tuned (see ``tests/test_xmark.py``) so that one MB
    yields ≈ ``NODES_PER_MB`` encoded nodes with Table-1-like shares:
    ``profile`` ≈ 0.25 % of nodes, ``increase`` ≈ 1.2 %.
    """

    items_per_mb: int = 1000
    persons_per_mb: int = 150
    open_auctions_per_mb: int = 200
    closed_auctions_per_mb: int = 100
    categories_per_mb: int = 50
    min_bidders: int = 1
    max_bidders: int = 6
    education_probability: float = 0.5
    profile_probability: float = 1.0
    seed: int = 2003  # the paper's year; any fixed value works


class XMarkGenerator:
    """Stateful generator: one instance per (config, size) document."""

    REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")
    EDUCATIONS = ("High School", "College", "Graduate School", "Other")

    def __init__(self, config: XMarkConfig = XMarkConfig()):
        self.config = config

    # ------------------------------------------------------------------
    def generate(self, size_mb: float) -> Node:
        """Build the document node for a ``size_mb`` nominal-size instance."""
        if size_mb <= 0:
            raise WorkloadError(f"document size must be positive, got {size_mb}")
        cfg = self.config
        rng = random.Random(f"{cfg.seed}-{round(size_mb * 1000)}")
        n_items = max(1, round(cfg.items_per_mb * size_mb))
        n_persons = max(1, round(cfg.persons_per_mb * size_mb))
        n_open = max(1, round(cfg.open_auctions_per_mb * size_mb))
        n_closed = max(1, round(cfg.closed_auctions_per_mb * size_mb))
        n_categories = max(1, round(cfg.categories_per_mb * size_mb))

        site = element("site")
        site.append(self._regions(rng, n_items))
        site.append(self._categories(rng, n_categories))
        site.append(self._catgraph(rng, n_categories))
        site.append(self._people(rng, n_persons))
        site.append(self._open_auctions(rng, n_open, n_persons, n_items))
        site.append(self._closed_auctions(rng, n_closed, n_persons, n_items))
        return document(site)

    # ------------------------------------------------------------------
    # site/regions/*/item
    # ------------------------------------------------------------------
    def _regions(self, rng: random.Random, n_items: int) -> Node:
        regions = element("regions")
        buckets = {r: element(r) for r in self.REGIONS}
        for r in self.REGIONS:
            regions.append(buckets[r])
        for i in range(n_items):
            region = rng.choice(self.REGIONS)
            buckets[region].append(self._item(rng, i))
        return regions

    def _item(self, rng: random.Random, index: int) -> Node:
        item = element("item", id=f"item{index}")
        item.append(element("location", text(word(rng).capitalize())))
        item.append(element("quantity", text(str(rng.randint(1, 10)))))
        item.append(element("name", text(f"{word(rng)} {word(rng)}")))
        payment = element("payment", text("Creditcard"))
        item.append(payment)
        item.append(self._description(rng))
        item.append(element("shipping", text(sentence(rng, 2, 5))))
        for _ in range(rng.randint(0, 2)):
            item.append(element("incategory", category=f"category{rng.randint(0, 40)}"))
        if rng.random() < 0.3:
            mailbox = element("mailbox")
            for _ in range(rng.randint(1, 2)):
                mail = element("mail")
                mail.append(element("from", text(person_name(rng))))
                mail.append(element("to", text(person_name(rng))))
                mail.append(element("date", text(self._date(rng))))
                mail.append(element("text", text(sentence(rng))))
                mailbox.append(mail)
            item.append(mailbox)
        return item

    def _description(self, rng: random.Random) -> Node:
        """Item description — the deepest structure in the document.

        ``description/parlist/listitem/parlist/listitem/text + keyword``
        bottoms out at level 11 below ``site`` when the item sits at
        level 3 (site/regions/africa/item), matching the paper's
        "all documents were of height 11".
        """
        description = element("description")
        parlist = element("parlist")
        description.append(parlist)
        for _ in range(rng.randint(1, 2)):
            listitem = element("listitem")
            parlist.append(listitem)
            if rng.random() < 0.5:
                inner = element("parlist")
                listitem.append(inner)
                inner_item = element("listitem")
                inner.append(inner_item)
                t = element("text", text(sentence(rng, 2, 6)))
                t.append(element("keyword", text(word(rng))))
                inner_item.append(t)
            else:
                listitem.append(element("text", text(sentence(rng, 2, 6))))
        return description

    # ------------------------------------------------------------------
    # site/categories, site/catgraph
    # ------------------------------------------------------------------
    def _categories(self, rng: random.Random, n: int) -> Node:
        categories = element("categories")
        for i in range(n):
            category = element("category", id=f"category{i}")
            category.append(element("name", text(f"{word(rng)} {word(rng)}")))
            category.append(element("description", text(sentence(rng, 3, 8))))
            categories.append(category)
        return categories

    def _catgraph(self, rng: random.Random, n: int) -> Node:
        catgraph = element("catgraph")
        for _ in range(max(1, n // 2)):
            catgraph.append(
                element(
                    "edge",
                    **{
                        "from": f"category{rng.randint(0, max(0, n - 1))}",
                        "to": f"category{rng.randint(0, max(0, n - 1))}",
                    },
                )
            )
        return catgraph

    # ------------------------------------------------------------------
    # site/people/person[/profile[/education]]
    # ------------------------------------------------------------------
    def _people(self, rng: random.Random, n_persons: int) -> Node:
        people = element("people")
        for i in range(n_persons):
            people.append(self._person(rng, i))
        return people

    def _person(self, rng: random.Random, index: int) -> Node:
        person = element("person", id=f"person{index}")
        person.append(element("name", text(person_name(rng))))
        person.append(
            element("emailaddress", text(f"mailto:user{index}@example.org"))
        )
        if rng.random() < 0.5:
            person.append(element("phone", text(f"+{rng.randint(1, 99)} "
                                                f"{rng.randint(100, 999)} "
                                                f"{rng.randint(1000, 9999)}")))
        if rng.random() < 0.6:
            address = element("address")
            address.append(element("street", text(f"{rng.randint(1, 99)} "
                                                  f"{word(rng).capitalize()} St")))
            address.append(element("city", text(word(rng).capitalize())))
            address.append(element("country", text(word(rng).capitalize())))
            address.append(element("zipcode", text(str(rng.randint(10000, 99999)))))
            person.append(address)
        if rng.random() < 0.4:
            person.append(element("homepage", text(f"http://example.org/~user{index}")))
        if rng.random() < 0.5:
            person.append(element("creditcard", text(self._creditcard(rng))))
        if rng.random() < self.config.profile_probability:
            person.append(self._profile(rng))
        if rng.random() < 0.3:
            watches = element("watches")
            for _ in range(rng.randint(1, 3)):
                watches.append(
                    element("watch", open_auction=f"open_auction{rng.randint(0, 999)}")
                )
            person.append(watches)
        return person

    def _profile(self, rng: random.Random) -> Node:
        profile = element("profile", income=f"{rng.randint(20000, 120000)}")
        for _ in range(rng.randint(0, 3)):
            profile.append(element("interest", category=f"category{rng.randint(0, 40)}"))
        if rng.random() < self.config.education_probability:
            profile.append(element("education", text(rng.choice(self.EDUCATIONS))))
        if rng.random() < 0.8:
            profile.append(element("gender", text(rng.choice(("male", "female")))))
        profile.append(element("business", text(rng.choice(("Yes", "No")))))
        if rng.random() < 0.7:
            profile.append(element("age", text(str(rng.randint(18, 90)))))
        return profile

    # ------------------------------------------------------------------
    # site/open_auctions/open_auction/bidder/increase
    # ------------------------------------------------------------------
    def _open_auctions(
        self, rng: random.Random, n_open: int, n_persons: int, n_items: int
    ) -> Node:
        open_auctions = element("open_auctions")
        for i in range(n_open):
            open_auctions.append(self._open_auction(rng, i, n_persons, n_items))
        return open_auctions

    def _open_auction(
        self, rng: random.Random, index: int, n_persons: int, n_items: int
    ) -> Node:
        auction = element("open_auction", id=f"open_auction{index}")
        initial = rng.randint(1, 200)
        auction.append(element("initial", text(f"{initial}.00")))
        if rng.random() < 0.4:
            auction.append(element("reserve", text(f"{initial + rng.randint(5, 50)}.00")))
        current = initial
        for _ in range(rng.randint(self.config.min_bidders, self.config.max_bidders)):
            bidder = element("bidder")
            bidder.append(element("date", text(self._date(rng))))
            bidder.append(element("time", text(self._time(rng))))
            bidder.append(
                element("personref", person=f"person{rng.randint(0, max(0, n_persons - 1))}")
            )
            step = rng.randint(1, 15)
            current += step
            bidder.append(element("increase", text(f"{step}.00")))
            auction.append(bidder)
        auction.append(element("current", text(f"{current}.00")))
        if rng.random() < 0.2:
            auction.append(element("privacy", text("Yes")))
        auction.append(
            element("itemref", item=f"item{rng.randint(0, max(0, n_items - 1))}")
        )
        auction.append(
            element("seller", person=f"person{rng.randint(0, max(0, n_persons - 1))}")
        )
        auction.append(self._annotation(rng))
        auction.append(element("quantity", text(str(rng.randint(1, 5)))))
        auction.append(element("type", text(rng.choice(("Regular", "Featured")))))
        interval = element("interval")
        interval.append(element("start", text(self._date(rng))))
        interval.append(element("end", text(self._date(rng))))
        auction.append(interval)
        return auction

    def _closed_auctions(
        self, rng: random.Random, n_closed: int, n_persons: int, n_items: int
    ) -> Node:
        closed_auctions = element("closed_auctions")
        for _ in range(n_closed):
            closed = element("closed_auction")
            closed.append(
                element("seller", person=f"person{rng.randint(0, max(0, n_persons - 1))}")
            )
            closed.append(
                element("buyer", person=f"person{rng.randint(0, max(0, n_persons - 1))}")
            )
            closed.append(
                element("itemref", item=f"item{rng.randint(0, max(0, n_items - 1))}")
            )
            closed.append(element("price", text(f"{rng.randint(10, 500)}.00")))
            closed.append(element("date", text(self._date(rng))))
            closed.append(element("quantity", text(str(rng.randint(1, 5)))))
            closed.append(element("type", text(rng.choice(("Regular", "Featured")))))
            closed.append(self._annotation(rng))
            closed_auctions.append(closed)
        return closed_auctions

    def _annotation(self, rng: random.Random) -> Node:
        annotation = element("annotation")
        annotation.append(
            element("author", person=f"person{rng.randint(0, 999)}")
        )
        annotation.append(element("description", text(sentence(rng, 3, 10))))
        annotation.append(element("happiness", text(str(rng.randint(1, 10)))))
        return annotation

    # ------------------------------------------------------------------
    @staticmethod
    def _date(rng: random.Random) -> str:
        return f"{rng.randint(1, 12):02d}/{rng.randint(1, 28):02d}/{rng.randint(1999, 2003)}"

    @staticmethod
    def _time(rng: random.Random) -> str:
        return f"{rng.randint(0, 23):02d}:{rng.randint(0, 59):02d}:{rng.randint(0, 59):02d}"

    @staticmethod
    def _creditcard(rng: random.Random) -> str:
        return " ".join(str(rng.randint(1000, 9999)) for _ in range(4))


def generate(size_mb: float, config: XMarkConfig = XMarkConfig()) -> Node:
    """Generate an XMark-style document of nominal size ``size_mb``."""
    return XMarkGenerator(config).generate(size_mb)


def generate_table(size_mb: float, config: XMarkConfig = XMarkConfig()) -> DocTable:
    """Generate and pre/post encode a document in one call."""
    return encode(generate(size_mb, config))
