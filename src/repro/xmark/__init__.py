"""XMark-style document generator (the paper's workload source).

The experiments in Section 4.4 use ``XMLgen``, the XMark benchmark
generator [Schmidt et al. 2002], producing auction-site documents of
controllable size (1 MB–1 GB, 50 000–50 000 000 nodes, height 11).  This
package is our deterministic replacement: the same DTD skeleton
(``site``/``people``/``person``/``profile``/``education`` and
``open_auctions``/``open_auction``/``bidder``/``increase``), seeded
pseudo-random content, ~50 000 encoded nodes per "MB" of nominal size,
and document height 11 — so the paper's queries Q1 and Q2 hit the
generator with the same selectivity *shape* (profile ≈ 0.25 % of nodes,
education in roughly half the profiles, increase ≈ 1.2 % of nodes at
level 4, several bidders per auction giving the ~75 % duplicate ratio of
Experiment 1).
"""

from repro.xmark.generator import XMarkConfig, XMarkGenerator, generate, generate_table

__all__ = ["XMarkConfig", "XMarkGenerator", "generate", "generate_table"]
