"""Pseudo-random text content for generated documents.

XMark fills element content with shuffled words from Shakespeare; we use a
fixed in-repo word list with a seeded generator, which keeps documents
deterministic for a given (seed, size) pair — a requirement for
reproducible experiment tables.
"""

from __future__ import annotations

import random
from typing import List

__all__ = ["WORDS", "sentence", "name", "word"]

# A compact word pool; enough variety that dictionary-encoded text values
# do not degenerate, small enough to keep the module readable.
WORDS: List[str] = [
    "auction", "bid", "seller", "buyer", "reserve", "item", "lot", "price",
    "ship", "parcel", "city", "harbour", "market", "trade", "offer", "deal",
    "green", "amber", "crimson", "silver", "golden", "ivory", "cobalt",
    "quiet", "rapid", "steady", "bright", "hollow", "solid", "gentle",
    "river", "meadow", "forest", "valley", "summit", "coast", "island",
    "letter", "ledger", "invoice", "receipt", "charter", "permit", "notice",
    "morning", "evening", "summer", "winter", "autumn", "spring", "harvest",
    "copper", "marble", "timber", "linen", "velvet", "ceramic", "leather",
    "engine", "wheel", "anchor", "compass", "lantern", "barrel", "crate",
    "north", "south", "east", "west", "upper", "lower", "middle", "outer",
]

_FIRST_NAMES = [
    "Ada", "Alan", "Edsger", "Grace", "Barbara", "Donald", "Leslie", "John",
    "Tony", "Edgar", "Jim", "Michael", "Pat", "Robin", "Niklaus", "Dennis",
]

_LAST_NAMES = [
    "Lovelace", "Turing", "Dijkstra", "Hopper", "Liskov", "Knuth", "Lamport",
    "Backus", "Hoare", "Codd", "Gray", "Stonebraker", "Selinger", "Milner",
    "Wirth", "Ritchie",
]


def word(rng: random.Random) -> str:
    """One pseudo-random word."""
    return rng.choice(WORDS)


def sentence(rng: random.Random, min_words: int = 3, max_words: int = 12) -> str:
    """A pseudo-random sentence of ``min_words``–``max_words`` words."""
    count = rng.randint(min_words, max_words)
    return " ".join(rng.choice(WORDS) for _ in range(count))


def name(rng: random.Random) -> str:
    """A pseudo-random person name."""
    return f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"
