"""Tree-unaware SQL engine emulation (the paper's DB2 comparison point).

Section 2.1 shows how a conventional RDBMS evaluates an XPath step: the
path expression is translated to a self-join SQL query over the ``doc``
table (Figure 3); the optimiser picks a plan that scans the outer input in
pre-sorted order through a B-tree on concatenated ``(pre, post, tag)``
keys and answers the region predicates with delimited inner index range
scans, followed by a ``unique`` operator and a sort.

This package rebuilds that stack in miniature:

* :mod:`repro.engine.operators` — Volcano-style iterators (index range
  scan, filter, nested-loop region join, unique, sort);
* :mod:`repro.engine.db2` — the Figure 3 plan shapes for descendant and
  ancestor steps, with and without the "line 7" Equation-(1) range
  delimiter and with early/late name tests;
* :mod:`repro.engine.sqlgen` — the SQL text generator (what the
  translated queries look like);
* :mod:`repro.engine.planner` — a small cost model for the
  pushdown-or-not decision the paper leaves to future research.
"""

from repro.engine.db2 import DocIndex, db2_path, db2_step
from repro.engine.explain import explain
from repro.engine.mil import run_mil
from repro.engine.planner import CostModel, choose_pushdown
from repro.engine.sqlgen import path_to_sql

__all__ = [
    "DocIndex",
    "db2_step",
    "db2_path",
    "explain",
    "run_mil",
    "path_to_sql",
    "CostModel",
    "choose_pushdown",
]
