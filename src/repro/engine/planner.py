"""Cost model for the pushdown decision (the paper's future research).

Experiment 3 closes with: "Future research on a cost model is intended to
let the system intelligently decide for or against name test pushdown or
similar rewrites."  This module implements that cost model in the
simplest form that captures the trade-off the paper describes:

* a staircase join **without** pushdown touches about
  ``|result_axis| + |context|`` nodes (skipping, Section 3.3) and then
  filters by tag — its cost is driven by the *unfiltered* axis result;
* a staircase join **with** pushdown scans only the fragment of the
  tested tag — "which obviously makes sense for selective name tests
  only": if the tag is dense (say, ``text`` nodes), the fragment is no
  smaller than the axis result and pushdown buys nothing.

Both estimates use statistics an RDBMS catalogue would have: the document
size, the per-tag cardinalities, and the context size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.encoding.doctable import DocTable
from repro.xpath.parser import parse_xpath

__all__ = ["CostModel", "PushdownDecision", "choose_pushdown"]


@dataclass(frozen=True)
class PushdownDecision:
    """The planner's verdict for one step."""

    step_index: int
    axis: str
    tag: str
    cost_no_pushdown: float
    cost_pushdown: float

    @property
    def pushdown(self) -> bool:
        return self.cost_pushdown < self.cost_no_pushdown


class CostModel:
    """Catalogue statistics + node-touch cost estimates for axis steps."""

    #: Relative cost of one B+-tree probe (fragment partition entry) vs
    #: one sequential node touch; probes pay pointer chasing.
    PROBE_WEIGHT = 8.0

    def __init__(self, doc: DocTable):
        self.doc = doc
        self.n = len(doc)
        # One O(n) bincount (cached on the table) instead of one masked
        # scan per dictionary entry.
        self.tag_counts = doc.tag_statistics()

    # ------------------------------------------------------------------
    def tag_cardinality(self, tag: str) -> int:
        return self.tag_counts.get(tag, 0)

    def estimate_axis_result(self, axis: str, context_size: int) -> float:
        """Expected unfiltered axis-step result size.

        Uses the uniform heuristics of textbook optimisers: a descendant
        step from ``k`` staircase context nodes covers on average the
        document minus the context's shared ancestry; an ancestor step
        yields at most ``h`` nodes per context node, with heavy path
        sharing (Experiment 1 saw ~75 % sharing).
        """
        if axis == "descendant":
            # Pruned staircase subtrees are disjoint: bounded by n.
            return min(float(self.n), context_size * (self.n / max(1, context_size + 1)))
        if axis == "ancestor":
            return min(float(self.n), 0.25 * context_size * self.doc.height)
        return float(self.n)  # following/preceding degenerate to one region

    def step_cost(
        self, axis: str, tag: str, context_size: int, pushdown: bool
    ) -> float:
        axis_result = self.estimate_axis_result(axis, context_size)
        if not pushdown:
            # Touch ≈ result + context nodes, then tag-filter the result.
            return axis_result + context_size + axis_result
        fragment = self.tag_cardinality(tag)
        # One probe per partition plus the fragment entries inspected.
        return context_size * self.PROBE_WEIGHT + min(float(fragment), axis_result + context_size)


def choose_pushdown(
    doc: DocTable,
    path,
    context_size: int = 1,
    model: Optional[CostModel] = None,
) -> list:
    """Decide pushdown per eligible step of ``path``.

    Returns a list of :class:`PushdownDecision` (empty when no step is
    eligible).  ``context_size`` seeds the cardinality estimate for the
    first step; subsequent steps use the previous step's estimate.
    """
    if isinstance(path, str):
        path = parse_xpath(path)
    model = model if model is not None else CostModel(doc)
    decisions = []
    size = float(context_size)
    for index, step in enumerate(path.steps):
        eligible = (
            step.axis in ("descendant", "ancestor")
            and step.test.kind == "name"
            and not step.predicates
        )
        if eligible:
            tag = step.test.name or ""
            no_push = model.step_cost(step.axis, tag, int(size), pushdown=False)
            push = model.step_cost(step.axis, tag, int(size), pushdown=True)
            decisions.append(
                PushdownDecision(index, step.axis, tag, no_push, push)
            )
            size = float(
                min(model.tag_cardinality(tag), model.estimate_axis_result(step.axis, int(size)))
            )
        else:
            size = model.estimate_axis_result(step.axis, int(size))
    return decisions
