"""EXPLAIN for XPath plans over the staircase join.

Renders, per location step, what the execution layer will do — which
operator runs the axis (staircase join with its skip mode, parent-column
join, region degeneration — the axis vocabulary is shared with
:mod:`repro.xpath.pipeline`), whether the cost model pushes the name
test below the join, and what the catalogue says about the involved
cardinalities.  This is the observable face of the paper's future-work
cost model ("to let the system intelligently decide for or against name
test pushdown"), and it makes the repository's planner auditable: the
tests assert the decisions, the CLI prints them (the authoritative
*compiled* pipeline rendering is the CLI ``explain`` verb's, from the
planner's :class:`~repro.xpath.planner.QueryPlan`).
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.core.staircase import SkipMode
from repro.encoding.doctable import DocTable
from repro.engine.planner import CostModel
from repro.xpath.ast import BinaryExpr, LocationPath
from repro.xpath.parser import parse_xpath
from repro.xpath.pipeline import operator_name

__all__ = ["explain"]

def _operator_for(axis: str, mode: SkipMode) -> str:
    # Only the plain partitioning axes carry the skip-mode detail; every
    # other axis renders exactly as the pipeline's shared vocabulary.
    if axis in ("descendant", "ancestor"):
        return f"staircase_join_{'desc' if axis == 'descendant' else 'anc'} (skip={mode.value})"
    return operator_name(axis)


def explain(
    doc: DocTable,
    path: Union[str, LocationPath],
    pushdown: Union[str, bool] = "auto",
    mode: SkipMode = SkipMode.ESTIMATE,
    context_size: int = 1,
    model: Optional[CostModel] = None,
) -> str:
    """Render the execution plan for ``path`` as text.

    ``pushdown`` is ``True``/``False`` (forced) or ``"auto"`` (the cost
    model decides per step, as the paper's future-work section
    envisions).  Returns a multi-line string; the final line states the
    staircase join's no-epilogue guarantee.
    """
    if isinstance(path, str):
        path = parse_xpath(path)
    if isinstance(path, BinaryExpr):
        parts = [
            explain(doc, branch, pushdown=pushdown, mode=mode,
                    context_size=context_size, model=model)
            for branch in (path.left, path.right)
        ]
        return "UNION (merge in document order, de-duplicate)\n" + "\n".join(parts)

    model = model if model is not None else CostModel(doc)
    lines: List[str] = [f"XPath: {path}"]
    anchor = "document node" if path.absolute else "caller context"
    lines.append(f"anchor: {anchor} (|context| ≈ {context_size})")
    size = float(context_size)

    for index, step in enumerate(path.steps, start=1):
        lines.append(f"step {index}: {step}")
        lines.append(f"  axis operator : {_operator_for(step.axis, mode)}")
        if step.axis in ("descendant", "ancestor", "following", "preceding"):
            lines.append("  context prune : staircase pruning "
                         "(Algorithm 1 family, O(|context|))")
        eligible = (
            step.axis in ("descendant", "ancestor")
            and step.test.kind == "name"
            and not step.predicates
        )
        if step.test.kind == "name":
            tag = step.test.name or ""
            cardinality = model.tag_cardinality(tag)
            if eligible:
                cost_late = model.step_cost(step.axis, tag, int(size), pushdown=False)
                cost_push = model.step_cost(step.axis, tag, int(size), pushdown=True)
                if pushdown == "auto":
                    decided = cost_push < cost_late
                    reason = "cost model"
                else:
                    decided = bool(pushdown)
                    reason = "forced"
                placement = "PUSHDOWN (fragment scan)" if decided else "after the join"
                lines.append(
                    f"  name test     : {tag!r} ({cardinality:,} elements) — "
                    f"{placement} [{reason}; est. {cost_push:,.0f} vs "
                    f"{cost_late:,.0f} node touches]"
                )
                size = min(float(cardinality), model.estimate_axis_result(step.axis, int(size)))
            else:
                lines.append(
                    f"  name test     : {tag!r} ({cardinality:,} elements) — "
                    "after the axis step"
                )
                size = min(float(cardinality), model.estimate_axis_result(step.axis, int(size)))
        else:
            lines.append(f"  node test     : {step.test}")
            size = model.estimate_axis_result(step.axis, int(size))
        for predicate in step.predicates:
            lines.append(f"  predicate     : [{predicate}] (filter per result node)")
        lines.append(f"  est. output   : ≈ {size:,.0f} nodes")

    lines.append(
        "epilogue: none — staircase join output is duplicate-free and in "
        "document order (Section 3.2)"
    )
    return "\n".join(lines)
