"""A MIL-flavoured plan language for staircase join pipelines.

Section 4.4 shows how the paper's queries execute inside Monet::

    r  = root(doc)
    s1 = nametest(staircasejoin_desc(doc, r), "increase")
    s2 = nametest(staircasejoin_anc(doc, s1), "bidder")

This module makes that notation executable: a tiny interpreter over a
handful of plan operators, each mapping onto the library's primitives.
It is useful for writing physical plans directly in tests and examples —
exactly the level of abstraction the paper's evaluation scripts use —
and for demonstrating that the XPath evaluator is sugar over these
operators.

Grammar (statements separated by newlines or ``;``)::

    statement := NAME ':=' expr | 'return' expr | expr
    expr      := NAME | STRING | INT | NAME '(' [expr (',' expr)*] ')'

Built-in plan operators:

====================  ====================================================
``root(doc)``          singleton context holding the root element
``staircasejoin_desc(doc, ctx [, mode])``  descendant staircase join
``staircasejoin_anc(doc, ctx [, mode])``   ancestor staircase join
``staircasejoin_following(doc, ctx)``      following join (degenerate)
``staircasejoin_preceding(doc, ctx)``      preceding join (degenerate)
``nametest(ctx, tag)``  keep elements with the given tag
``kindtest(ctx, kind)`` keep nodes of kind (element/text/comment/...)
``children(doc, ctx)``  parent-column child join
``parents(doc, ctx)``   parent projection
``union(a, b)`` / ``intersect(a, b)`` / ``difference(a, b)``  set algebra
``count(ctx)``          cardinality (an integer)
====================  ====================================================

The variable ``doc`` is pre-bound to the document; the script's ``return``
value (or its last expression) is the result.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.staircase import (
    SkipMode,
    staircase_join_anc,
    staircase_join_desc,
    staircase_join_following,
    staircase_join_preceding,
)
from repro.counters import JoinStatistics
from repro.encoding.doctable import DocTable
from repro.errors import PlanError
from repro.xmltree.model import NodeKind

__all__ = ["run_mil"]

_TOKEN = re.compile(
    r"""
    (?P<ws>[ \t]+)
  | (?P<newline>[;\n]+)
  | (?P<assign>:=)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<string>"[^"]*")
  | (?P<int>\d+)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<comment>\#[^\n]*)
""",
    re.VERBOSE,
)

_KINDS = {kind.name.lower(): kind for kind in NodeKind}

_MODES = {mode.value: mode for mode in SkipMode}


class _Interpreter:
    def __init__(self, doc: DocTable, stats: Optional[JoinStatistics]):
        self.doc = doc
        self.stats = stats if stats is not None else JoinStatistics()
        self.env: Dict[str, Any] = {"doc": doc}

    # -- tokenisation ---------------------------------------------------
    def tokenize(self, script: str) -> List[tuple]:
        tokens: List[tuple] = []
        position = 0
        while position < len(script):
            match = _TOKEN.match(script, position)
            if match is None:
                raise PlanError(
                    f"MIL syntax error at {script[position:position + 10]!r}"
                )
            position = match.end()
            kind = match.lastgroup
            if kind in ("ws", "comment"):
                continue
            tokens.append((kind, match.group()))
        tokens.append(("eof", ""))
        return tokens

    # -- parsing + evaluation (one pass; statements execute in order) ----
    def run(self, script: str) -> Any:
        self.tokens = self.tokenize(script)
        self.index = 0
        result: Any = None
        while self.peek()[0] != "eof":
            if self.peek()[0] == "newline":
                self.advance()
                continue
            result = self.statement()
        return result

    def peek(self) -> tuple:
        return self.tokens[self.index]

    def advance(self) -> tuple:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str) -> tuple:
        token = self.advance()
        if token[0] != kind:
            raise PlanError(f"MIL: expected {kind}, got {token[1]!r}")
        return token

    def statement(self) -> Any:
        kind, value = self.peek()
        if kind == "name" and value == "return":
            self.advance()
            return self.expression()
        if kind == "name" and self.tokens[self.index + 1][0] == "assign":
            name = self.advance()[1]
            self.advance()  # :=
            result = self.expression()
            self.env[name] = result
            return result
        return self.expression()

    def expression(self) -> Any:
        kind, value = self.advance()
        if kind == "string":
            return value[1:-1]
        if kind == "int":
            return int(value)
        if kind != "name":
            raise PlanError(f"MIL: unexpected {value!r}")
        if self.peek()[0] == "lparen":
            self.advance()
            args: List[Any] = []
            if self.peek()[0] != "rparen":
                args.append(self.expression())
                while self.peek()[0] == "comma":
                    self.advance()
                    args.append(self.expression())
            self.expect("rparen")
            return self.call(value, args)
        if value not in self.env:
            raise PlanError(f"MIL: unknown variable {value!r}")
        return self.env[value]

    # -- operators --------------------------------------------------------
    def _context(self, value: Any, operator: str) -> np.ndarray:
        if not isinstance(value, np.ndarray):
            raise PlanError(f"MIL: {operator} expects a node sequence")
        return value

    def _doc(self, value: Any, operator: str) -> DocTable:
        if not isinstance(value, DocTable):
            raise PlanError(f"MIL: {operator} expects the doc table")
        return value

    def _mode(self, args: List[Any]) -> SkipMode:
        if not args:
            return SkipMode.ESTIMATE
        name = str(args[0])
        if name not in _MODES:
            raise PlanError(f"MIL: unknown skip mode {name!r}")
        return _MODES[name]

    def call(self, name: str, args: List[Any]) -> Any:
        doc = self.doc
        if name == "root":
            self._doc(args[0], "root")
            return np.asarray([doc.root], dtype=np.int64)
        if name in (
            "staircasejoin_desc",
            "staircasejoin_anc",
            "staircasejoin_following",
            "staircasejoin_preceding",
        ):
            if len(args) < 2:
                raise PlanError(f"MIL: {name} expects (doc, context [, mode])")
            self._doc(args[0], name)
            context = self._context(args[1], name)
            join = {
                "staircasejoin_desc": staircase_join_desc,
                "staircasejoin_anc": staircase_join_anc,
                "staircasejoin_following": staircase_join_following,
                "staircasejoin_preceding": staircase_join_preceding,
            }[name]
            if name in ("staircasejoin_desc", "staircasejoin_anc"):
                return join(doc, context, self._mode(args[2:]), self.stats)
            return join(doc, context, stats=self.stats)
        if name == "nametest":
            context = self._context(args[0], "nametest")
            if len(args) != 2 or not isinstance(args[1], str):
                raise PlanError("MIL: nametest expects (context, \"tag\")")
            code = doc.tag.code_of(args[1])
            if code < 0:
                return np.empty(0, dtype=np.int64)
            mask = (doc.tag.codes[context] == code) & (
                doc.kind[context] == int(NodeKind.ELEMENT)
            )
            return context[mask]
        if name == "kindtest":
            context = self._context(args[0], "kindtest")
            kind_name = str(args[1]).lower()
            if kind_name not in _KINDS:
                raise PlanError(f"MIL: unknown node kind {args[1]!r}")
            return context[doc.kind[context] == int(_KINDS[kind_name])]
        if name == "children":
            self._doc(args[0], "children")
            context = self._context(args[1], "children")
            mask = np.isin(doc.parent, context) & (
                doc.kind != int(NodeKind.ATTRIBUTE)
            )
            return np.nonzero(mask)[0].astype(np.int64)
        if name == "parents":
            self._doc(args[0], "parents")
            context = self._context(args[1], "parents")
            parents = doc.parent[context]
            return np.unique(parents[parents >= 0])
        if name == "union":
            return np.union1d(
                self._context(args[0], "union"), self._context(args[1], "union")
            )
        if name == "intersect":
            return np.intersect1d(
                self._context(args[0], "intersect"),
                self._context(args[1], "intersect"),
            )
        if name == "difference":
            return np.setdiff1d(
                self._context(args[0], "difference"),
                self._context(args[1], "difference"),
            )
        if name == "count":
            return int(len(self._context(args[0], "count")))
        raise PlanError(f"MIL: unknown operator {name!r}")


def run_mil(
    doc: DocTable,
    script: str,
    stats: Optional[JoinStatistics] = None,
) -> Any:
    """Execute a MIL-style plan script against ``doc``.

    Returns the ``return`` expression's value (or the last statement's).
    Node sequences are ``int64`` preorder-rank arrays, interoperable with
    everything else in the library.
    """
    return _Interpreter(doc, stats).run(script)
