"""SQL text generation for XPath paths (Section 2.1 / Figure 3).

"The pre/post plane encoding enables an RDBMS to translate XPath path
expressions to pure SQL queries": a path of ``n`` steps becomes an
``n``-way self-join of the ``doc`` table, each step contributing the
region predicates of its axis.  This module performs that systematic
translation — it exists for documentation, the example scripts, and the
tests that check the Figure 3 query is reproduced verbatim in shape.

The generated SQL is dialect-neutral; it is *rendered*, not executed
(execution happens through :mod:`repro.engine.db2`'s physical plans).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import PlanError
from repro.xpath.ast import LocationPath
from repro.xpath.parser import parse_xpath

__all__ = ["path_to_sql", "axis_predicates"]


def axis_predicates(axis: str, outer: str, inner: str) -> List[str]:
    """The region predicates tying step variable ``inner`` to ``outer``.

    These are the strict pre/post inequalities of the four partitioning
    axes (the table in :mod:`repro.encoding.regions`).
    """
    if axis == "descendant":
        return [f"{inner}.pre > {outer}.pre", f"{inner}.post < {outer}.post"]
    if axis == "ancestor":
        return [f"{inner}.pre < {outer}.pre", f"{inner}.post > {outer}.post"]
    if axis == "following":
        return [f"{inner}.pre > {outer}.pre", f"{inner}.post > {outer}.post"]
    if axis == "preceding":
        return [f"{inner}.pre < {outer}.pre", f"{inner}.post < {outer}.post"]
    raise PlanError(f"no SQL region predicates for axis {axis!r}")


def path_to_sql(
    path,
    context_name: str = "c",
    eq1_delimiter: bool = False,
    height_symbol: str = "h",
) -> str:
    """Translate an XPath path into the equivalent self-join SQL query.

    Parameters
    ----------
    path:
        An absolute or relative path of partitioning-axis steps (name
        tests allowed; they become ``tag = '...'`` conjuncts).
    context_name:
        Name for the context-node parameters of a relative path
        (rendered as ``pre(c)`` / ``post(c)``, as in Figure 3).
    eq1_delimiter:
        Emit the additional "line 7" range predicates derived from
        Equation (1) for descendant steps.

    Returns the SQL string.  With a relative single-step path and
    ``following``/``descendant`` steps this reproduces the query of
    Figure 3.
    """
    if isinstance(path, str):
        path = parse_xpath(path)
    if not isinstance(path, LocationPath):
        raise PlanError(f"cannot translate {path!r}")

    variables = [f"v{i + 1}" for i in range(len(path.steps))]
    predicates: List[str] = []
    outer: Optional[str] = None
    for variable, step in zip(variables, path.steps):
        if step.predicates:
            raise PlanError("SQL generation covers predicate-free paths")
        if step.axis not in ("descendant", "ancestor", "following", "preceding"):
            raise PlanError(
                f"SQL generation covers the partitioning axes, not {step.axis!r}"
            )
        if outer is None:
            if path.absolute:
                if step.axis != "descendant":
                    raise PlanError("absolute paths must start with descendant")
                # descendants of the document node: every node qualifies —
                # no region predicate needed for the first step.
            else:
                predicates += [
                    p.replace(f"{context_name}.pre", f"pre({context_name})").replace(
                        f"{context_name}.post", f"post({context_name})"
                    )
                    for p in axis_predicates(
                        step.axis, context_name, variable
                    )
                ]
        else:
            predicates += axis_predicates(step.axis, outer, variable)
            if eq1_delimiter and step.axis == "descendant":
                predicates.append(f"{variable}.pre <= {outer}.post + {height_symbol}")
                predicates.append(f"{variable}.post >= {outer}.pre - {height_symbol}")
        if step.test.kind == "name":
            predicates.append(f"{variable}.tag = '{step.test.name}'")
        outer = variable

    result = variables[-1]
    tables = ", ".join(f"doc {v}" for v in variables)
    lines = [f"SELECT DISTINCT {result}.pre", f"FROM   {tables}"]
    if predicates:
        lines.append(f"WHERE  {predicates[0]}")
        for predicate in predicates[1:]:
            lines.append(f"  AND  {predicate}")
    lines.append(f"ORDER BY {result}.pre")
    return "\n".join(lines)
