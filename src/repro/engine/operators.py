"""Volcano-style physical operators for the tree-unaware engine.

Minimal but honest: every operator is an iterator over tuples, composed
into plans by :mod:`repro.engine.db2`.  Tuples are ``(pre, post)`` pairs
(plus whatever a scan's projection adds); statistics flow through a shared
:class:`~repro.counters.JoinStatistics` so the experiment harness can
count index probes and scanned entries exactly like it counts staircase
join node touches.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.counters import JoinStatistics
from repro.errors import PlanError
from repro.storage.btree import BPlusTree

__all__ = [
    "IndexRangeScan",
    "Filter",
    "NestedLoopRegionJoin",
    "Unique",
    "Sort",
    "Projection",
]

Row = Tuple[int, ...]


class Operator:
    """Base class: an iterable of rows."""

    def __iter__(self) -> Iterator[Row]:  # pragma: no cover - abstract
        raise NotImplementedError

    def rows(self) -> List[Row]:
        """Materialise the operator output (for tests and leaf harnesses)."""
        return list(self)


class IndexRangeScan(Operator):
    """B+-tree range scan ``low ≤ key ≤ high`` with a residual predicate.

    Emits the *values* stored in the tree (row tuples).  The residual
    predicate models conditions "sufficiently simple to be evaluated
    during the B-tree index scan" (Section 2.1) — they filter rows but
    every scanned entry still counts toward ``nodes_scanned``.
    """

    def __init__(
        self,
        index: BPlusTree,
        low,
        high,
        residual: Optional[Callable[[Row], bool]] = None,
        stats: Optional[JoinStatistics] = None,
    ):
        self.index = index
        self.low = low
        self.high = high
        self.residual = residual
        self.stats = stats if stats is not None else JoinStatistics()

    def __iter__(self) -> Iterator[Row]:
        self.stats.index_probes += 1
        for _, row in self.index.range_scan(self.low, self.high):
            self.stats.nodes_scanned += 1
            if self.residual is None or self.residual(row):
                yield row


class Filter(Operator):
    """Plain row filter (a selection above another operator)."""

    def __init__(self, child: Operator, predicate: Callable[[Row], bool]):
        self.child = child
        self.predicate = predicate

    def __iter__(self) -> Iterator[Row]:
        for row in self.child:
            if self.predicate(row):
                yield row


class NestedLoopRegionJoin(Operator):
    """For each outer row, run an inner scan built from that row.

    The Figure 3 plan shape: the outer index scan provides the context
    region's candidates in pre-sorted order; the inner scan factory opens
    a fresh delimited index range scan per outer row.  This is a *join*
    (inner rows are emitted), and because outer regions overlap the same
    inner row may be emitted many times — the reason the plan needs its
    ``unique`` operator.
    """

    def __init__(self, outer: Operator, inner_factory: Callable[[Row], Operator]):
        self.outer = outer
        self.inner_factory = inner_factory

    def __iter__(self) -> Iterator[Row]:
        for outer_row in self.outer:
            for inner_row in self.inner_factory(outer_row):
                yield inner_row


class Unique(Operator):
    """Duplicate elimination; counts removed rows as duplicates.

    Hash-based (order preserving), since the join output of the Figure 3
    plan is not guaranteed globally sorted for every step combination.
    """

    def __init__(self, child: Operator, stats: Optional[JoinStatistics] = None):
        self.child = child
        self.stats = stats if stats is not None else JoinStatistics()

    def __iter__(self) -> Iterator[Row]:
        seen = set()
        for row in self.child:
            if row in seen:
                self.stats.duplicates_generated += 1
                continue
            seen.add(row)
            yield row


class Sort(Operator):
    """Full sort on a key function (document order = pre rank)."""

    def __init__(self, child: Operator, key: Callable[[Row], int] = lambda r: r[0]):
        self.child = child
        self.key = key

    def __iter__(self) -> Iterator[Row]:
        return iter(sorted(self.child, key=self.key))


class Projection(Operator):
    """Map rows through a function (column projection)."""

    def __init__(self, child: Operator, function: Callable[[Row], Row]):
        self.child = child
        self.function = function

    def __iter__(self) -> Iterator[Row]:
        for row in self.child:
            yield self.function(row)


def materialize(source: Iterable[Row]) -> List[Row]:
    """Run a plan to completion."""
    if not isinstance(source, (Operator, list, tuple)) and not hasattr(
        source, "__iter__"
    ):
        raise PlanError(f"not a plan: {source!r}")
    return list(source)
