"""The Figure 3 plan shapes: XPath steps on a tree-unaware RDBMS.

This module is the reproduction's "IBM DB2" stand-in for Experiment 3.
It evaluates the paper's query shapes with exactly the machinery a
conventional relational optimiser has:

* a B+-tree over concatenated ``(pre, post, tag)`` keys, scanned in
  pre-sorted order (:class:`DocIndex`);
* region predicates as index range delimiters plus residual predicates
  evaluated during the scan;
* optionally the "line 7" Equation (1) delimiter
  (``pre(v2) ≤ post(v1) + h``), the only piece of tree knowledge the
  paper grants the SQL level;
* early name tests (DB2's concatenated key includes the tag, so the tag
  equality rides along with the scan);
* a mandatory ``unique`` + sort epilogue, because the join generates
  duplicates whenever context regions overlap.

Ancestor steps have no useful pre-range delimiter without tree awareness
(an ancestor may sit anywhere before the context node), so the engine
scans the full prefix per context node — the mis-planning the paper
observed made them run Q2 through the Olteanu symmetry rewrite instead,
which :func:`db2_path` reproduces (``rewrite_ancestor=True``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.counters import JoinStatistics
from repro.encoding.doctable import DocTable
from repro.errors import PlanError
from repro.storage.btree import BPlusTree
from repro.xmltree.model import NodeKind
from repro.xpath.ast import LocationPath
from repro.xpath.parser import parse_xpath
from repro.xpath.rewrite import symmetry_rewrite

__all__ = ["DocIndex", "db2_step", "db2_path"]

_ATTR = int(NodeKind.ATTRIBUTE)

Row = Tuple[int, int, int, int]  # (pre, post, tag_code, kind)


class DocIndex:
    """The loading-time B+-tree over the ``doc`` table.

    Keys are ``(pre,)`` (pre is unique, so the concatenated key's further
    components live in the row value); rows carry ``(pre, post, tag_code,
    kind)`` so both the region predicates and the name test can be
    checked "during the B-tree index scan" (Section 2.1).
    """

    def __init__(self, doc: DocTable, order: int = 64):
        self.doc = doc
        items = [
            (
                (pre,),
                (pre, int(doc.post[pre]), int(doc.tag.codes[pre]), int(doc.kind[pre])),
            )
            for pre in range(len(doc))
        ]
        self.tree = BPlusTree.bulk_load(items, order=order, key_width=1)

    def scan(
        self,
        low_pre: int,
        high_pre: int,
        stats: JoinStatistics,
    ):
        """Yield rows with ``low_pre ≤ pre ≤ high_pre``."""
        stats.index_probes += 1
        for _, row in self.tree.range_scan((low_pre,), (high_pre,)):
            stats.nodes_scanned += 1
            yield row


def _tag_code(doc: DocTable, tag: Optional[str]) -> Optional[int]:
    if tag is None:
        return None
    return doc.tag.code_of(tag)


def _matches(row: Row, tag_code: Optional[int]) -> bool:
    pre, post, code, kind = row
    if tag_code is None:
        return kind != _ATTR
    return kind == int(NodeKind.ELEMENT) and code == tag_code


def db2_step(
    index: DocIndex,
    context: np.ndarray,
    axis: str,
    tag: Optional[str] = None,
    eq1_delimiter: bool = True,
    early_nametest: bool = True,
    stats: Optional[JoinStatistics] = None,
) -> np.ndarray:
    """One tree-unaware axis step (``descendant`` or ``ancestor``).

    Parameters
    ----------
    eq1_delimiter:
        Apply the line-7 range delimiter for descendant scans
        (``pre ≤ post(c) + h``).  Without it the inner scan runs to the
        end of the table — the three-orders-of-magnitude gap observed
        in [Grust 2002].
    early_nametest:
        Evaluate the tag equality during the index scan (DB2's
        concatenated-key behaviour).  With ``False`` the name test runs
        after the unique/sort epilogue.
    """
    stats = stats if stats is not None else JoinStatistics()
    doc = index.doc
    h = doc.height
    n = len(doc)
    code = _tag_code(doc, tag)
    produced: List[int] = []

    if axis == "descendant":
        for c in np.unique(np.asarray(context, dtype=np.int64)):
            c = int(c)
            post_c = int(doc.post[c])
            high = min(n - 1, post_c + h) if eq1_delimiter else n - 1
            for row in index.scan(c + 1, high, stats):
                if row[1] < post_c:  # post(v2) < post(v1): a descendant
                    if not early_nametest or _matches(row, code):
                        produced.append(row[0])
    elif axis == "ancestor":
        for c in np.unique(np.asarray(context, dtype=np.int64)):
            c = int(c)
            post_c = int(doc.post[c])
            # No tree-unaware delimiter exists: ancestors are scattered
            # through the whole prefix.
            for row in index.scan(0, c - 1, stats):
                if row[1] > post_c:
                    if not early_nametest or _matches(row, code):
                        produced.append(row[0])
    else:
        raise PlanError(f"db2_step evaluates descendant/ancestor, not {axis!r}")

    stats.result_size += len(produced)
    unique = np.unique(np.asarray(produced, dtype=np.int64))
    stats.duplicates_generated += len(produced) - len(unique)
    if not early_nametest and len(unique):
        if code is None or code < 0:
            keep = unique[index.doc.kind[unique] != _ATTR] if code is None else unique[:0]
        else:
            mask = (doc.tag.codes[unique] == code) & (
                doc.kind[unique] == int(NodeKind.ELEMENT)
            )
            keep = unique[mask]
        return keep
    return unique


def _existential_descendant(
    index: DocIndex,
    c: int,
    tag: Optional[str],
    eq1_delimiter: bool,
    stats: JoinStatistics,
) -> bool:
    """Does ``c`` have a descendant matching ``tag``?  (stops at first hit)"""
    doc = index.doc
    post_c = int(doc.post[c])
    high = min(len(doc) - 1, post_c + doc.height) if eq1_delimiter else len(doc) - 1
    code = _tag_code(doc, tag)
    for row in index.scan(c + 1, high, stats):
        if row[1] < post_c and _matches(row, code):
            return True
    return False


def db2_path(
    index: DocIndex,
    path,
    eq1_delimiter: bool = True,
    early_nametest: bool = True,
    rewrite_ancestor: bool = True,
    stats: Optional[JoinStatistics] = None,
) -> np.ndarray:
    """Evaluate an absolute descendant/ancestor path the DB2 way.

    Supports the paper's query shapes: absolute paths of
    ``descendant::tag`` / ``ancestor::tag`` steps, plus one existential
    ``[descendant::tag]`` predicate per step (needed for the rewritten
    Q2).  ``rewrite_ancestor=True`` applies the Olteanu symmetry rewrite
    first, as the paper's DB2 measurements did.
    """
    stats = stats if stats is not None else JoinStatistics()
    if isinstance(path, str):
        path = parse_xpath(path)
    if rewrite_ancestor:
        path = symmetry_rewrite(path)
    if not path.absolute:
        raise PlanError("db2_path evaluates absolute paths")

    doc = index.doc
    context: Optional[np.ndarray] = None  # None = virtual document node
    for step in path.steps:
        tag = step.test.name if step.test.kind == "name" else None
        if step.test.kind not in ("name", "node"):
            raise PlanError(f"db2_path supports name/node tests, not {step.test}")
        if step.axis not in ("descendant", "ancestor"):
            raise PlanError(
                f"db2_path supports descendant/ancestor steps, not {step.axis!r}"
            )
        if context is None:
            if step.axis != "descendant":
                raise PlanError("the first step must descend from the root")
            # Full pre-sorted index scan with the name test riding along.
            code = _tag_code(doc, tag)
            hits = [
                row[0]
                for row in index.scan(0, len(doc) - 1, stats)
                if _matches(row, code)
            ]
            context = np.asarray(hits, dtype=np.int64)
        else:
            context = db2_step(
                index,
                context,
                step.axis,
                tag=tag,
                eq1_delimiter=eq1_delimiter,
                early_nametest=early_nametest,
                stats=stats,
            )
        # Existential predicates (the rewritten Q2 shape).
        for predicate in step.predicates:
            if not isinstance(predicate, LocationPath) or len(predicate.steps) != 1:
                raise PlanError(f"db2_path supports one-step path predicates")
            inner = predicate.steps[0]
            if inner.axis != "descendant" or inner.test.kind != "name":
                raise PlanError(
                    "db2_path predicates must be existential descendant name tests"
                )
            kept = [
                int(c)
                for c in context
                if _existential_descendant(
                    index, int(c), inner.test.name, eq1_delimiter, stats
                )
            ]
            context = np.asarray(kept, dtype=np.int64)
    return context if context is not None else np.empty(0, dtype=np.int64)
