"""Command-line interface.

Makes the library usable without writing Python::

    python -m repro generate --size 0.5 -o auction.xml
    python -m repro encode auction.xml -o auction.npz
    python -m repro query auction.npz "/descendant::increase/ancestor::bidder"
    python -m repro query auction.npz "//open_auction[bidder]" --engine vectorized
    python -m repro query auction.npz "//open_auction[bidder]" --mode count
    python -m repro query auction.xml "//person[profile]" --serialize --limit 2
    python -m repro info auction.npz
    python -m repro sql "/descendant::profile/descendant::education"
    python -m repro shard -o store --generate 8 --size 0.2 --shards 4
    python -m repro serve-batch store "//open_auction[bidder]/seller" --backend pool:4
    python -m repro serve-batch store "//person" --mode exists
    python -m repro serve store --port 8080 --rate 50 --queue-limit 32
    python -m repro update store ops.json --verify "//person"
    python -m repro explain store "/descendant::increase/ancestor::bidder"

Documents may be given as ``.xml`` (parsed + encoded on the fly) or as
``.npz`` archives produced by ``encode`` (instant load).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.counters import JoinStatistics
from repro.encoding.decode import subtree
from repro.encoding.doctable import DocTable
from repro.encoding.persist import load, save
from repro.encoding.prepost import encode
from repro.engine.sqlgen import path_to_sql
from repro.errors import ReproError, StoreNotFoundError, XPathSyntaxError
from repro.xmark.generator import XMarkConfig, generate
from repro.xmltree.model import NodeKind
from repro.xmltree.parser import parse_file
from repro.xmltree.serializer import serialize, write_file
from repro.xpath.evaluator import Evaluator

__all__ = ["main", "build_parser"]


def _load_document(path: str) -> DocTable:
    if path.endswith(".npz"):
        return load(path)
    return encode(parse_file(path))


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_generate(args: argparse.Namespace) -> int:
    config = XMarkConfig(seed=args.seed)
    started = time.perf_counter()
    tree = generate(args.size, config)
    write_file(tree, args.output, pretty=args.pretty)
    doc = encode(tree)
    print(
        f"wrote {args.output}: {len(doc):,} nodes, height {doc.height}, "
        f"{time.perf_counter() - started:.2f}s",
        file=sys.stderr,
    )
    return 0


def _cmd_encode(args: argparse.Namespace) -> int:
    started = time.perf_counter()
    doc = encode(parse_file(args.document))
    save(doc, args.output)
    print(
        f"encoded {len(doc):,} nodes (height {doc.height}) to {args.output} "
        f"in {time.perf_counter() - started:.2f}s",
        file=sys.stderr,
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    doc = _load_document(args.document)
    stats = JoinStatistics()
    evaluator = Evaluator(
        doc,
        strategy=args.strategy,
        engine=args.engine,
        pushdown=args.pushdown,
        stats=stats,
    )
    if args.mode != "materialize":
        if args.serialize or args.limit is not None:
            print(
                f"error: --serialize/--limit have no effect with "
                f"--mode {args.mode}",
                file=sys.stderr,
            )
            return 2
        started = time.perf_counter()
        value = evaluator.evaluate(args.xpath, mode=args.mode)
        elapsed = time.perf_counter() - started
        print(str(value).lower() if args.mode == "exists" else value)
        print(f"{args.mode} in {elapsed * 1000:.2f} ms", file=sys.stderr)
        if args.stats:
            print(f"join statistics: {stats.as_dict()}", file=sys.stderr)
        return 0
    started = time.perf_counter()
    result = evaluator.evaluate(args.xpath)
    elapsed = time.perf_counter() - started
    shown = result if args.limit is None else result[: args.limit]
    for pre in shown:
        pre = int(pre)
        if args.serialize:
            print(serialize(subtree(doc, pre)))
        else:
            kind = doc.kind_of(pre).name.lower()
            label = doc.tag_of(pre) or (doc.value_of(pre) or "")[:40]
            print(f"{pre}\t{doc.post_of(pre)}\t{kind}\t{label}")
    if args.limit is not None and len(result) > args.limit:
        print(f"... ({len(result) - args.limit} more)", file=sys.stderr)
    print(
        f"{len(result):,} nodes in {elapsed * 1000:.2f} ms",
        file=sys.stderr,
    )
    if args.stats:
        print(f"join statistics: {stats.as_dict()}", file=sys.stderr)
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    doc = _load_document(args.document)
    print(f"nodes           {len(doc):,}")
    print(f"height          {doc.height}")
    print(f"distinct tags   {len(doc.tag.dictionary):,}")
    print(f"column storage  {doc.memory_footprint():,} bytes")
    for kind in NodeKind:
        count = int((doc.kind == int(kind)).sum())
        if count:
            print(f"  {kind.name.lower():24s} {count:,}")
    counts = sorted(
        (
            (tag, len(doc.pres_with_tag(tag)))
            for tag in doc.tag.dictionary
            if tag
        ),
        key=lambda kv: -kv[1],
    )
    print("top tags:")
    for tag, count in counts[: args.top]:
        print(f"  {tag:24s} {count:,}")
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    from repro.service import ShardedStore

    if args.info:
        store = ShardedStore.open(args.info)
        summary = store.describe()
        print(f"store       {summary['directory']}")
        print(f"epoch       {summary['epoch']}")
        print(f"documents   {summary['documents']}")
        for entry in summary["shards"]:
            print(
                f"  shard {entry['id']:<4d} {entry['nodes']:>10,} nodes  "
                f"{entry['file']}  [{', '.join(entry['documents'])}]"
            )
        return 0
    if not args.output:
        print("error: -o/--output is required to build a store", file=sys.stderr)
        return 1
    documents = []
    for path in args.documents:
        documents.append((os.path.basename(path), parse_file(path)))
    if args.generate:
        for i in range(args.generate):
            config = XMarkConfig(seed=args.seed + i)
            documents.append((f"xmark-{i:02d}", generate(args.size, config)))
    if not documents:
        print("error: no documents (pass .xml files or --generate N)", file=sys.stderr)
        return 1
    started = time.perf_counter()
    store = ShardedStore.build(
        args.output, documents, shards=args.shards,
        compression=args.compression,
    )
    summary = store.describe()
    nodes = sum(entry["nodes"] for entry in summary["shards"])
    print(
        f"built {args.output}: {len(documents)} documents, "
        f"{store.shard_count} shards, {nodes:,} nodes, "
        f"compression {summary['compression']}, "
        f"{time.perf_counter() - started:.2f}s",
        file=sys.stderr,
    )
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.service import ShardedStore

    store = ShardedStore.open(args.directory, decode_cache="blocks")
    # Open every shard plane so packed shards report what the open
    # itself decoded (region scans) — the paging counters are the point.
    for shard_id in store.shard_ids():
        store.collection(shard_id)
    info = store.info()
    print(f"store          {info['directory']}")
    print(f"epoch          {info['epoch']}")
    print(f"compression    {info['compression']}")
    print(f"documents      {info['documents']}")
    print(f"bytes on disk  {info['total_bytes_on_disk']:,}")
    if info["total_logical_bytes"]:
        print(f"logical bytes  {info['total_logical_bytes']:,} (decoded size of packed shards)")
    for shard in info["shards"]:
        line = (
            f"  shard {shard['id']:<4d} v{shard['format_version']}  "
            f"{shard['nodes']:>10,} nodes  "
            f"{shard['bytes_on_disk']:>12,}B on disk"
        )
        if shard["format_version"] == 3:
            line += (
                f"  {shard['pages']:,} pages x {shard['page_size']}  "
                f"tag dict {shard['tag_dictionary']['entries']:,}"
                f"/{shard['tag_dictionary']['bytes']:,}B  "
                f"value dict {shard['value_dictionary']['entries']:,}"
                f"/{shard['value_dictionary']['bytes']:,}B"
            )
            decoded = shard.get("decoded")
            if decoded is not None:
                line += (
                    f"  decoded {decoded['blocks']:,} blocks"
                    f"/{decoded['bytes']:,}B"
                )
        print(line)
    return 0


def _backend_spec(value: str) -> str:
    """argparse type for ``--backend``: a bad spec is a usage error."""
    from repro.service.backend import parse_backend_spec

    try:
        parse_backend_spec(value)
    except ReproError as error:
        raise argparse.ArgumentTypeError(str(error))
    return value


def _backend_kwargs(args: argparse.Namespace) -> dict:
    """Map ``--backend``/``--workers`` onto ``QueryService`` arguments.

    ``--workers`` is the deprecated spelling; passing it alongside
    ``--backend`` is rejected by the service (``--backend pool:4``
    covers the combination).
    """
    kwargs: dict = {"backend": args.backend}
    if args.workers is not None:
        kwargs["workers"] = args.workers
    return kwargs


def _cmd_serve_batch(args: argparse.Namespace) -> int:
    from repro.service import QueryService, ShardedStore

    queries = list(args.queries)
    if args.queries_file:
        with open(args.queries_file) as f:
            for line in f:
                line = line.strip()
                if line and not line.startswith("#"):
                    queries.append(line)
    if not queries:
        print("error: no queries (pass them or --queries-file)", file=sys.stderr)
        return 1
    if args.mode == "exists" and args.per_document:
        print(
            "error: --per-document has no effect with --mode exists",
            file=sys.stderr,
        )
        return 2
    store = ShardedStore.open(args.store)
    service = QueryService(
        store,
        engine=args.engine,
        planner=not args.no_planner,
        **_backend_kwargs(args),
    )
    with service:
        for round_number in range(1, args.repeat + 1):
            started = time.perf_counter()
            results = service.execute_batch(
                queries, use_cache=not args.no_cache, mode=args.mode
            )
            elapsed = time.perf_counter() - started
            for result in results:
                flag = "warm" if result.from_cache else "cold"
                if result.mode == "exists":
                    shown = "true" if result.exists else "false"
                    print(f"{shown:>8}  {flag}  {result.query}")
                else:
                    print(f"{result.total:>8,}  {flag}  {result.query}")
                if args.per_document and result.mode != "exists":
                    for name, count in result.counts().items():
                        print(f"          {name:24s} {count:,}")
            rate = len(queries) / elapsed if elapsed > 0 else float("inf")
            print(
                f"round {round_number}: {len(queries)} queries in "
                f"{elapsed * 1000:.2f} ms ({rate:,.0f} q/s)",
                file=sys.stderr,
            )
        if args.stats:
            print(f"service statistics: {service.cache_info()}", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.server import QueryServer, ServerConfig
    from repro.service import QueryService, ShardedStore

    store = ShardedStore.open(args.store)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        coalesce_window_s=args.coalesce_window_ms / 1e3,
        max_batch=args.max_batch,
        rate=args.rate,
        burst=args.burst,
        peer_rate_factor=args.peer_rate_factor,
        queue_limit=args.queue_limit,
    )
    service = QueryService(
        store,
        engine=args.engine,
        planner=not args.no_planner,
        **_backend_kwargs(args),
    )
    with service:
        asyncio.run(QueryServer(service, config).serve())
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    import json

    from repro.service import QueryService, ShardedStore, parse_ops

    try:
        with open(args.ops) as f:
            raw = json.load(f)
    except json.JSONDecodeError as error:
        print(f"error: {args.ops}: not valid JSON ({error})", file=sys.stderr)
        return 1
    ops = parse_ops(raw)
    if args.verify is not None:
        from repro.xpath.parser import parse_xpath

        # Validate *before* the batch commits: a malformed verify
        # expression must be a pure usage error, not one that leaves
        # the store mutated behind an exit code 2.
        parse_xpath(args.verify)
    store = ShardedStore.open(args.store)
    before = store.epoch
    started = time.perf_counter()
    with QueryService(store, backend="serial") as service:
        summary = service.apply_updates(ops)
        if args.verify:
            result = service.execute(args.verify)
            print(f"{result.total:>8,}  {args.verify}")
    elapsed = time.perf_counter() - started
    shards = ", ".join(str(s) for s in summary["shards"]) or "none"
    print(
        f"applied {summary['applied']} op(s) to shard(s) {shards}: "
        f"epoch {before} -> {summary['epoch']}, {elapsed * 1000:.2f} ms",
        file=sys.stderr,
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.__main__ import main as analysis_main

    if args.list_rules:
        return analysis_main(["--list-rules"])
    argv = list(args.paths) or ["src"]
    argv += ["--format", args.format]
    if args.select:
        argv += ["--select", args.select]
    if args.show_suppressed:
        argv.append("--show-suppressed")
    if args.pickle_check:
        argv.append("--pickle-check")
    return analysis_main(argv)


def _cmd_sql(args: argparse.Namespace) -> int:
    print(path_to_sql(args.xpath, eq1_delimiter=args.eq1))
    return 0


#: ``explain --analyze`` flags an operator whose estimated and actual
#: output cardinality disagree by this factor or more.
MISESTIMATE_FACTOR = 8.0


def _render_analysis(plan, observations) -> str:
    """The estimated-vs-actual table of ``explain --analyze``.

    Aggregates the sampled per-operator observations by operator
    signature (summing across shards) and lines each up with the costed
    plan's cardinality estimate, flagging mis-estimates of
    :data:`MISESTIMATE_FACTOR` or worse.
    """
    from repro.feedback.records import predicate_signature, step_signature

    order: List[tuple] = []
    agg = {}
    for observed in observations:
        for step in observed.steps:
            sig = tuple(step.signature)
            if sig not in agg:
                agg[sig] = [0, 0, 0]
                order.append(sig)
            cell = agg[sig]
            cell[0] += step.n_in
            cell[1] += step.n_out
            cell[2] += step.ns
    # The plan's estimate for the signature each decision's output
    # corresponds to: the step's own signature, or — when predicates
    # filtered it — the last predicate's.
    estimates = {}
    for decision in plan.steps:
        step = decision.step
        sig = (
            predicate_signature(step.axis, step.predicates[-1])
            if step.predicates
            else step_signature(step.axis, step.test)
        )
        estimates.setdefault(tuple(sig), decision.est_out)
    drives = len(observations)
    shards = len({o.shard_id for o in observations})
    lines = [f"observed: {drives} sampled drive(s) over {shards} shard(s)"]
    lines.append(
        f"  {'operator':<42} {'in':>10} {'out':>10} {'est out':>10} {'ms':>8}"
    )
    for sig in order:
        n_in, n_out, ns = agg[sig]
        kind, axis, detail = sig
        if kind == "pred":
            label = f"{axis} filter [{detail}]"
        elif kind == "pos":
            label = f"{axis}::{detail} (positional)"
        else:
            label = f"{axis}::{detail}"
        est = estimates.get(sig)
        est_text = f"{est:,.0f}" if est is not None else "—"
        flag = ""
        if est is not None:
            hi = max(est, float(n_out))
            lo = max(1.0, min(est, float(n_out)))
            if hi / lo >= MISESTIMATE_FACTOR:
                flag = f"  !! mis-estimate (×{hi / lo:,.0f})"
        lines.append(
            f"  {label:<42.42} {n_in:>10,} {n_out:>10,} {est_text:>10} "
            f"{ns / 1e6:>8.2f}{flag}"
        )
    scanned = sum(o.scanned for o in observations)
    skipped = sum(o.skipped for o in observations)
    blocks = sum(o.blocks for o in observations)
    if scanned or skipped or blocks:
        lines.append(
            f"  staircase: {scanned:,} scanned, {skipped:,} skipped "
            f"({skipped / max(1, scanned + skipped):.0%} skip efficacy); "
            f"{blocks:,} page blocks decoded"
        )
    return "\n".join(lines)


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.xpath.pipeline import compile_plan
    from repro.xpath.planner import Planner, TagStatistics

    pushdown = {"auto": "auto", "on": True, "off": False}[args.pushdown]
    store = None
    doc = None
    if os.path.isdir(args.document):
        from repro.service import ShardedStore

        store = ShardedStore.open(args.document)
        statistics = TagStatistics.from_store(store)
        source = (
            f"{args.document} (store, epoch {store.epoch}, "
            f"{store.shard_count} shards)"
        )
    else:
        doc = _load_document(args.document)
        statistics = TagStatistics.from_doc(doc)
        source = args.document
    planner = Planner(
        statistics,
        engine=args.engine,
        pushdown=pushdown,
        feedback=store.feedback if store is not None else None,
    )
    plan = planner.plan(args.xpath)
    print(
        f"statistics: {source} — {statistics.total_nodes:,} nodes, "
        f"{len(statistics.counts)} tags, height {statistics.height}"
    )
    print(plan.describe())
    print()
    print(compile_plan(plan, mode=args.mode).describe())
    if args.analyze:
        print()
        if store is not None:
            from repro.service import QueryService

            # Serial: the observation path is identical on every
            # backend, and analyze is a one-shot diagnostic.  Closing
            # the service persists what the analyzed drive learned.
            with QueryService(
                store, engine=args.engine, backend="serial"
            ) as service:
                result, analyzed, observations = service.analyze(
                    args.xpath, engine=args.engine
                )
                print(_render_analysis(analyzed, observations))
                print(
                    f"result: {result.total:,} node(s), "
                    f"{result.elapsed_s * 1000:.2f} ms"
                )
        else:
            from repro.feedback.records import DriveObservation, PipelineObserver
            from repro.xpath.pipeline import drive

            pipeline = compile_plan(plan, mode="materialize")
            evaluator = Evaluator(doc, engine=args.engine)
            evaluator._set_pushdown(pipeline.pushdown_steps)
            if pipeline.skip_mode is not None:
                evaluator.axes.mode = pipeline.skip_mode
            observer = PipelineObserver()
            evaluator.observer = observer
            started = time.perf_counter_ns()
            pres = drive(pipeline, evaluator)
            elapsed = time.perf_counter_ns() - started
            evaluator.observer = None
            observation = DriveObservation(
                shard_id=0,
                engine=evaluator.engine,
                elapsed_ns=elapsed,
                steps=tuple(observer.steps),
                scanned=evaluator.stats.nodes_scanned,
                skipped=evaluator.stats.nodes_skipped,
            )
            print(_render_analysis(plan, [observation]))
            print(f"result: {len(pres):,} node(s), {elapsed / 1e6:.2f} ms")
    if args.operators:
        from repro.engine.explain import explain

        if store is not None:
            print(
                "(--operators needs a single document, not a store)",
                file=sys.stderr,
            )
        else:
            print()
            print(explain(doc, args.xpath, pushdown=pushdown))
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Staircase join reproduction — XPath over pre/post-encoded XML.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    cmd = commands.add_parser("generate", help="generate an XMark-style document")
    cmd.add_argument("--size", type=float, default=1.0, help="nominal MB (default 1.0)")
    cmd.add_argument("--seed", type=int, default=2003)
    cmd.add_argument("--pretty", action="store_true", help="indent the output")
    cmd.add_argument("-o", "--output", required=True)
    cmd.set_defaults(handler=_cmd_generate)

    cmd = commands.add_parser("encode", help="pre/post encode an XML file to .npz")
    cmd.add_argument("document")
    cmd.add_argument("-o", "--output", required=True)
    cmd.set_defaults(handler=_cmd_encode)

    cmd = commands.add_parser("query", help="evaluate an XPath expression")
    cmd.add_argument("document", help=".xml or .npz file")
    cmd.add_argument("xpath")
    cmd.add_argument("--pushdown", action="store_true", help="push name tests below joins")
    cmd.add_argument(
        "--engine", choices=("scalar", "vectorized"), default=None,
        help="execution engine: per-node scalar loops (default) or numpy "
        "bulk kernels for every axis step; overrides --strategy",
    )
    cmd.add_argument(
        "--strategy", choices=("staircase", "vectorized"), default=None,
        help="deprecated alias for --engine (staircase = scalar)",
    )
    cmd.add_argument("--serialize", action="store_true", help="print result subtrees as XML")
    cmd.add_argument("--limit", type=int, default=None, help="show at most N results")
    cmd.add_argument("--stats", action="store_true", help="print join statistics")
    cmd.add_argument(
        "--mode", choices=("materialize", "count", "exists"), default="materialize",
        help="result mode: node rows (default), the result cardinality, "
        "or an early-terminating existence check",
    )
    cmd.set_defaults(handler=_cmd_query)

    cmd = commands.add_parser("info", help="document statistics")
    cmd.add_argument("document")
    cmd.add_argument("--top", type=int, default=10, help="tags to list")
    cmd.set_defaults(handler=_cmd_info)

    cmd = commands.add_parser(
        "shard", help="build (or inspect) a sharded document store"
    )
    cmd.add_argument("documents", nargs="*", help=".xml files to load")
    cmd.add_argument("-o", "--output", help="store directory to create")
    cmd.add_argument(
        "--shards", type=int, default=4,
        help="shard count (clamped to the number of documents; default 4)",
    )
    cmd.add_argument(
        "--generate", type=int, default=0, metavar="N",
        help="also generate N XMark documents (seeds seed..seed+N-1)",
    )
    cmd.add_argument("--size", type=float, default=0.2, help="nominal MB per generated document")
    cmd.add_argument("--seed", type=int, default=2003)
    cmd.add_argument(
        "--compression", choices=("auto", "none", "packed"), default="auto",
        help="shard archive layout: packed = dictionary + bit-packed page "
        "blocks (v3), none = eager arrays (v2), auto = packed for large "
        "shards (default)",
    )
    cmd.add_argument(
        "--info", metavar="DIR", default=None,
        help="describe an existing store instead of building one",
    )
    cmd.set_defaults(handler=_cmd_shard)

    cmd = commands.add_parser(
        "store",
        help="inspect a sharded store (bytes on disk, pages, dictionaries, "
        "decode counters)",
    )
    cmd.add_argument(
        "action", choices=("info",),
        help="info: per-shard bytes on disk / format / page + dictionary "
        "sizes, and bytes decoded per open plane",
    )
    cmd.add_argument("directory", help="store directory built by `shard`")
    cmd.set_defaults(handler=_cmd_store)

    cmd = commands.add_parser(
        "serve-batch", help="run a query batch against a sharded store"
    )
    cmd.add_argument("store", help="store directory built by `shard`")
    cmd.add_argument("queries", nargs="*", help="XPath expressions")
    cmd.add_argument(
        "--queries-file", default=None,
        help="file with one query per line (# comments allowed)",
    )
    cmd.add_argument(
        "--engine", choices=("scalar", "vectorized"), default="vectorized",
        help="execution engine (default: vectorized)",
    )
    cmd.add_argument(
        "--backend", type=_backend_spec, default=None, metavar="NAME[:N]",
        help="execution backend: serial, pool, or fabric, with an "
        "optional worker count (e.g. fabric:4); default: $REPRO_BACKEND "
        "or a pool with one worker per shard",
    )
    cmd.add_argument(
        "--workers", type=int, default=None,
        help="deprecated: use --backend (0 = serial, N = pool:N)",
    )
    cmd.add_argument(
        "--repeat", type=int, default=1,
        help="run the batch N times (later rounds hit the result cache)",
    )
    cmd.add_argument("--no-cache", action="store_true", help="bypass the result cache")
    cmd.add_argument(
        "--no-planner", action="store_true",
        help="skip cost-based planning and prefix sharing",
    )
    cmd.add_argument(
        "--mode", choices=("materialize", "count", "exists"),
        default="materialize",
        help="result mode for every query of the batch: per-document "
        "ranks (default), per-document counts, or one boolean",
    )
    cmd.add_argument(
        "--per-document", action="store_true", help="print per-document result counts"
    )
    cmd.add_argument("--stats", action="store_true", help="print cache statistics")
    cmd.set_defaults(handler=_cmd_serve_batch)

    cmd = commands.add_parser(
        "serve",
        help="serve a sharded store over HTTP/JSON (asyncio, coalescing, "
        "admission control)",
    )
    cmd.add_argument("store", help="store directory built by `shard`")
    cmd.add_argument("--host", default="127.0.0.1")
    cmd.add_argument("--port", type=int, default=8080, help="0 = OS-assigned")
    cmd.add_argument(
        "--coalesce-window-ms", type=float, default=4.0, metavar="MS",
        help="merge concurrent queries arriving within this window into "
        "one batch (0 disables coalescing; default 4)",
    )
    cmd.add_argument(
        "--max-batch", type=int, default=64,
        help="flush a forming batch at this size (default 64)",
    )
    cmd.add_argument(
        "--rate", type=float, default=0.0,
        help="per-client requests/second; over-rate requests get 429 + "
        "Retry-After (0 disables; default 0)",
    )
    cmd.add_argument(
        "--burst", type=float, default=16.0,
        help="per-client token-bucket burst (default 16)",
    )
    cmd.add_argument(
        "--peer-rate-factor", type=float, default=4.0,
        help="per-peer backstop bucket = this x the per-client rate/burst "
        "(bounds X-Client-Id rotation; 0 disables the backstop; default 4)",
    )
    cmd.add_argument(
        "--queue-limit", type=int, default=64,
        help="bound on admitted-but-unanswered requests; beyond it the "
        "server sheds with 503 + Retry-After (0 disables; default 64)",
    )
    cmd.add_argument(
        "--engine", choices=("scalar", "vectorized"), default="vectorized",
        help="execution engine (default: vectorized)",
    )
    cmd.add_argument(
        "--backend", type=_backend_spec, default=None, metavar="NAME[:N]",
        help="execution backend: serial, pool, or fabric, with an "
        "optional worker count (e.g. fabric:4); default: $REPRO_BACKEND "
        "or a pool with one worker per shard",
    )
    cmd.add_argument(
        "--workers", type=int, default=None,
        help="deprecated: use --backend (0 = serial, N = pool:N)",
    )
    cmd.add_argument(
        "--no-planner", action="store_true",
        help="skip cost-based planning and prefix sharing",
    )
    cmd.set_defaults(handler=_cmd_serve)

    cmd = commands.add_parser(
        "update", help="apply a JSON ops file to a sharded store"
    )
    cmd.add_argument("store", help="store directory built by `shard`")
    cmd.add_argument(
        "ops",
        help='JSON ops file: a list of {"op": add|remove|update|insert|'
        'delete|replace, "document": name, ...} objects; subtree '
        'payloads via "xml", "file", "text" or "attribute"',
    )
    cmd.add_argument(
        "--verify", metavar="XPATH", default=None,
        help="run one query after the update and print its result count",
    )
    cmd.set_defaults(handler=_cmd_update)

    cmd = commands.add_parser(
        "analyze",
        help="run the project-invariant linter (rules REP001-REP007)",
    )
    cmd.add_argument(
        "paths", nargs="*", help="files or directories to lint (default: src)"
    )
    cmd.add_argument("--format", choices=("text", "json"), default="text")
    cmd.add_argument(
        "--select", metavar="REP00X[,REP00Y]", help="run only these rule codes"
    )
    cmd.add_argument("--show-suppressed", action="store_true")
    cmd.add_argument(
        "--pickle-check", action="store_true",
        help="also round-trip registered cross-process payload types",
    )
    cmd.add_argument(
        "--list-rules", action="store_true",
        help="print the rule codes and summaries, then exit",
    )
    cmd.set_defaults(handler=_cmd_analyze)

    cmd = commands.add_parser("sql", help="translate XPath to Figure-3 style SQL")
    cmd.add_argument("xpath")
    cmd.add_argument("--eq1", action="store_true", help="add the Equation (1) delimiter")
    cmd.set_defaults(handler=_cmd_sql)

    cmd = commands.add_parser(
        "explain",
        help="show the costed plan for a query (rewrites, pushdown, estimates)",
    )
    cmd.add_argument(
        "document",
        help=".xml / .npz file, or a store directory built by `shard` "
        "(catalogue statistics come from its manifest)",
    )
    cmd.add_argument("xpath")
    cmd.add_argument(
        "--pushdown", choices=("auto", "on", "off"), default="auto",
        help="name-test placement (default: cost model decides)",
    )
    cmd.add_argument(
        "--engine", choices=("scalar", "vectorized"), default="vectorized",
        help="engine the costs are modelled for (default: vectorized)",
    )
    cmd.add_argument(
        "--operators", action="store_true",
        help="also print the operator-level rendering (single documents)",
    )
    cmd.add_argument(
        "--analyze", action="store_true",
        help="run the query with the observation layer attached and "
        "print the estimated-vs-actual table (feeds the adaptive loop "
        "on stores)",
    )
    cmd.add_argument(
        "--mode", choices=("materialize", "count", "exists"),
        default="materialize",
        help="terminal of the printed physical pipeline (default: materialize)",
    )
    cmd.set_defaults(handler=_cmd_explain)

    return parser


def _one_line(error: BaseException) -> str:
    """First line of an error message (XPath syntax errors carry a
    multi-line caret rendering; the CLI contract is one ``error:`` line)."""
    text = str(error).strip()
    return text.splitlines()[0] if text else type(error).__name__


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Exit codes: ``0`` success, ``1`` runtime failure, ``2`` usage error
    (malformed XPath, missing input file, a path that is not a sharded
    store) — every verb reports usage errors as a one-line ``error:``
    message, never a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except XPathSyntaxError as error:
        print(f"error: {_one_line(error)}", file=sys.stderr)
        return 2
    except StoreNotFoundError as error:
        print(f"error: {_one_line(error)}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {_one_line(error)}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # The downstream consumer (head, grep -q, …) closed the pipe
        # early — that is its prerogative, not a failure.  Detach
        # stdout so the interpreter's shutdown flush cannot raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
