"""Project-invariant static analysis and runtime race detection.

Seven PRs in, the engine's correctness rests on invariants that used to
live only in prose and reviewer memory.  This package encodes them into
tooling, the same move the staircase join paper makes one level down
(encode tree properties into the executor so the algorithm *cannot*
regress them):

* :mod:`repro.analysis.reprolint` — an AST linter (stdlib ``ast``, no
  new runtime dependency) with project-specific rules **REP001–REP007**
  (epoch-fenced cache keys, lock discipline, asyncio loop confinement,
  pickle safety, numpy dtype discipline, monotonic clocks, exception
  hygiene).  Findings are suppressed inline with
  ``# repro: allow[REP00X] - reason``.
* :mod:`repro.analysis.pickle_check` — the runtime half of REP004: an
  import-time pickle round-trip over every registered cross-process
  payload type.
* :mod:`repro.analysis.lockgraph` — an opt-in runtime lock-order
  recorder: instruments ``threading.Lock``/``RLock``, builds the
  cross-thread acquisition-order graph, reports any cycle as a
  potential deadlock (with the acquire stacks of both edges), and
  provides :func:`~repro.analysis.lockgraph.assert_held` as REP002's
  runtime companion.

Run the linter as ``python -m repro.analysis src`` (or the CLI verb
``python -m repro analyze``); it exits non-zero on any unsuppressed
finding, which is what the CI ``analysis`` job gates on.
"""

from __future__ import annotations

from repro.analysis.lockgraph import LockGraph, assert_held
from repro.analysis.reprolint import Finding, RULES, run_lint

__all__ = ["Finding", "LockGraph", "RULES", "assert_held", "run_lint"]
