"""Runtime lock-order recorder: the dynamic half of the analysis gate.

The linter (REP002) can prove a *field* is only touched under its lock;
it cannot prove two locks are always taken in the same *order*.  That
is a global, cross-thread property — exactly the kind a static pass on
one method at a time misses — so this module checks it at runtime:

* :class:`LockGraph` wraps ``threading.Lock``/``RLock`` in recording
  proxies.  Each thread keeps a stack of locks it currently holds;
  acquiring ``B`` while holding ``A`` adds the edge ``A → B`` to a
  process-wide acquisition-order graph (same-instance re-entry of an
  RLock is not an edge).
* :meth:`LockGraph.cycles` runs a DFS over that graph.  A cycle
  ``A → B → A`` means two code paths take the same pair of locks in
  opposite orders — the classic deadlock shape, reported with the
  acquire stacks of both edges even if the timing never actually
  deadlocked during the run.
* :func:`assert_held` is REP002's runtime companion for the
  ``*_locked`` naming convention: a ``*_locked`` method can open with
  ``assert_held(self._lock)`` and fail loudly when instrumentation is
  on, at zero cost when it is off.

Instrumentation is opt-in: ``REPRO_LOCKGRAPH=1`` in the environment (a
session-scoped pytest fixture in ``tests/conftest.py`` picks it up and
fails the run on any cycle), or :func:`install`/:func:`uninstall` /
the :class:`LockGraph` context manager directly.

Stack capture must be cheap enough to leave on for a whole test suite,
so each acquire walks ``sys._getframe`` and stores raw
``(filename, lineno, function)`` triples; formatting happens only when
a cycle is actually reported.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "ENV_FLAG",
    "LockGraph",
    "LockOrderCycle",
    "assert_held",
    "install",
    "uninstall",
    "enabled_by_env",
]

ENV_FLAG = "REPRO_LOCKGRAPH"

#: frames of the instrumentation machinery itself, skipped in captures
_SKIP_FRAMES = 2
_STACK_DEPTH = 12

FrameTriple = Tuple[str, int, str]


def _capture_stack() -> Tuple[FrameTriple, ...]:
    frames: List[FrameTriple] = []
    frame = sys._getframe(_SKIP_FRAMES)
    while frame is not None and len(frames) < _STACK_DEPTH:
        code = frame.f_code
        frames.append((code.co_filename, frame.f_lineno, code.co_name))
        frame = frame.f_back
    return tuple(frames)


def _format_stack(stack: Sequence[FrameTriple]) -> str:
    return "\n".join(
        f"    {name} ({os.path.basename(filename)}:{lineno})"
        for filename, lineno, name in stack
    )


def _creation_site() -> str:
    """``file:line`` of the frame that called ``Lock()``/``RLock()``."""
    frame = sys._getframe(_SKIP_FRAMES)
    steps = 0
    while frame is not None and steps < _STACK_DEPTH:
        filename = frame.f_code.co_filename
        if os.path.basename(filename) != os.path.basename(__file__):
            return f"{os.path.basename(filename)}:{frame.f_lineno}"
        frame = frame.f_back
        steps += 1
    return "<unknown>"


class _InstrumentedLock:
    """A recording proxy around one real ``Lock``/``RLock`` instance.

    Implements the full primitive-lock protocol *plus* the private
    hooks ``Condition``/``queue.Queue`` call on their inner lock
    (``_is_owned``, ``_acquire_restore``, ``_release_save``), so global
    patching does not break stdlib machinery built on locks.
    """

    def __init__(self, graph: "LockGraph", inner, reentrant: bool, label: str):
        self._graph = graph
        self._inner = inner
        self._reentrant = reentrant
        self.label = label

    # -- primitive lock protocol ---------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._graph._record_acquire(self)
        return got

    def release(self) -> None:
        self._graph._record_release(self)
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    # -- hooks Condition/Queue expect on their inner lock --------------
    def _is_owned(self) -> bool:
        if hasattr(self._inner, "_is_owned"):
            return self._inner._is_owned()
        # Plain Lock: Condition falls back to a try-acquire probe; the
        # graph must not see that probe, so go straight to the inner.
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def _acquire_restore(self, state) -> None:
        if hasattr(self._inner, "_acquire_restore"):
            self._inner._acquire_restore(state)
        else:
            self._inner.acquire()
        self._graph._record_acquire(self)

    def _release_save(self):
        self._graph._record_release(self, full=True)
        if hasattr(self._inner, "_release_save"):
            return self._inner._release_save()
        self._inner.release()
        return None

    def __repr__(self) -> str:
        return f"<instrumented {self.label} wrapping {self._inner!r}>"


class LockOrderCycle:
    """One cycle in the acquisition-order graph (a potential deadlock)."""

    def __init__(self, labels: Tuple[str, ...], edges: List[Tuple[str, str, Tuple[FrameTriple, ...]]]):
        self.labels = labels
        self.edges = edges

    def render(self) -> str:
        lines = [f"lock-order cycle: {' -> '.join(self.labels + (self.labels[0],))}"]
        for src, dst, stack in self.edges:
            lines.append(f"  {src} held while acquiring {dst}; acquire stack:")
            lines.append(_format_stack(stack))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<LockOrderCycle {' -> '.join(self.labels)}>"


class LockGraph:
    """Process-wide lock acquisition-order graph.

    Use directly (``graph.lock()`` / ``graph.rlock()`` factories) in
    unit tests, or as a context manager / via :func:`install` to patch
    ``threading.Lock``/``threading.RLock`` globally.
    """

    def __init__(self) -> None:
        self._meta = threading.Lock()  # guards the two dicts below
        # node id -> label; edge (a, b) -> first acquire stack
        self._labels: Dict[int, str] = {}
        self._edges: Dict[Tuple[int, int], Tuple[FrameTriple, ...]] = {}
        self._held = threading.local()
        self._orig_lock = None
        self._orig_rlock = None

    # -- construction ---------------------------------------------------
    def lock(self, label: Optional[str] = None) -> _InstrumentedLock:
        real = (self._orig_lock or threading.Lock)()
        return self._register(real, reentrant=False, label=label)

    def rlock(self, label: Optional[str] = None) -> _InstrumentedLock:
        real = (self._orig_rlock or threading.RLock)()
        return self._register(real, reentrant=True, label=label)

    def _register(self, inner, reentrant: bool, label: Optional[str]) -> _InstrumentedLock:
        wrapper = _InstrumentedLock(
            self, inner, reentrant, label or _creation_site()
        )
        with self._meta:
            self._labels[id(wrapper)] = wrapper.label
        return wrapper

    # -- recording ------------------------------------------------------
    def _stack(self) -> List[Tuple[int, int]]:
        """This thread's held stack: ``(wrapper id, depth)`` pairs."""
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def _record_acquire(self, wrapper: _InstrumentedLock) -> None:
        stack = self._stack()
        wid = id(wrapper)
        if stack and stack[-1][0] == wid and wrapper._reentrant:
            stack[-1] = (wid, stack[-1][1] + 1)
            return
        held_ids = {entry[0] for entry in stack}
        if wid not in held_ids:
            new_edges = [
                (hid, wid) for hid in held_ids if (hid, wid) not in self._edges
            ]
            if new_edges:
                captured = _capture_stack()
                with self._meta:
                    for edge in new_edges:
                        self._edges.setdefault(edge, captured)
        stack.append((wid, 1))

    def _record_release(self, wrapper: _InstrumentedLock, full: bool = False) -> None:
        stack = self._stack()
        wid = id(wrapper)
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][0] == wid:
                if full or stack[index][1] <= 1:
                    del stack[index]
                else:
                    stack[index] = (wid, stack[index][1] - 1)
                return
        # Released on a different thread than it was acquired on (legal
        # for plain Locks used as signals); nothing held to pop.

    # -- queries --------------------------------------------------------
    def held(self, wrapper: _InstrumentedLock) -> bool:
        return any(entry[0] == id(wrapper) for entry in self._stack())

    def edge_count(self) -> int:
        with self._meta:
            return len(self._edges)

    def cycles(self) -> List[LockOrderCycle]:
        """Every elementary cycle reachable in the order graph."""
        with self._meta:
            edges = dict(self._edges)
            labels = dict(self._labels)
        adjacency: Dict[int, List[int]] = {}
        for src, dst in edges:
            adjacency.setdefault(src, []).append(dst)

        cycles: List[LockOrderCycle] = []
        seen_cycles: Set[Tuple[int, ...]] = set()

        def dfs(node: int, path: List[int], on_path: Set[int]) -> None:
            for nxt in adjacency.get(node, ()):
                if nxt in on_path:
                    start = path.index(nxt)
                    cycle = tuple(path[start:])
                    # Canonicalise rotation so each cycle reports once.
                    pivot = cycle.index(min(cycle))
                    canon = cycle[pivot:] + cycle[:pivot]
                    if canon in seen_cycles:
                        continue
                    seen_cycles.add(canon)
                    cycle_edges = []
                    ring = list(canon) + [canon[0]]
                    for a, b in zip(ring, ring[1:]):
                        cycle_edges.append(
                            (
                                labels.get(a, "?"),
                                labels.get(b, "?"),
                                edges.get((a, b), ()),
                            )
                        )
                    cycles.append(
                        LockOrderCycle(
                            tuple(labels.get(n, "?") for n in canon),
                            cycle_edges,
                        )
                    )
                    continue
                on_path.add(nxt)
                path.append(nxt)
                dfs(nxt, path, on_path)
                path.pop()
                on_path.discard(nxt)

        for start in adjacency:
            dfs(start, [start], {start})
        return cycles

    def report(self) -> str:
        found = self.cycles()
        if not found:
            return (
                f"lockgraph: no ordering cycles "
                f"({len(self._labels)} locks, {self.edge_count()} edges)"
            )
        return "\n\n".join(cycle.render() for cycle in found)

    def reset(self) -> None:
        with self._meta:
            self._edges.clear()

    # -- global patching ------------------------------------------------
    def install(self) -> "LockGraph":
        """Patch ``threading.Lock``/``RLock`` to return proxies."""
        if self._orig_lock is not None:
            return self
        self._orig_lock = threading.Lock
        self._orig_rlock = threading.RLock

        def patched_lock():
            return self._register(self._orig_lock(), False, None)

        def patched_rlock():
            return self._register(self._orig_rlock(), True, None)

        threading.Lock = patched_lock  # type: ignore[assignment]
        threading.RLock = patched_rlock  # type: ignore[assignment]
        global _active
        _active = self
        return self

    def uninstall(self) -> None:
        if self._orig_lock is None:
            return
        threading.Lock = self._orig_lock  # type: ignore[assignment]
        threading.RLock = self._orig_rlock  # type: ignore[assignment]
        self._orig_lock = None
        self._orig_rlock = None
        global _active
        if _active is self:
            _active = None

    def __enter__(self) -> "LockGraph":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()


#: the globally installed graph, if any
_active: Optional[LockGraph] = None


def active() -> Optional[LockGraph]:
    return _active


def install() -> LockGraph:
    """Install a fresh global :class:`LockGraph` and return it."""
    graph = LockGraph()
    return graph.install()


def uninstall() -> None:
    if _active is not None:
        _active.uninstall()


def enabled_by_env() -> bool:
    return os.environ.get(ENV_FLAG, "").strip().lower() in ("1", "true", "yes", "on")


def assert_held(lock) -> None:
    """Fail loudly if ``lock`` is not held by the calling thread.

    The runtime side of the ``*_locked`` naming convention (REP002):
    works on instrumented locks via the graph's per-thread held stack,
    falls back to ``_is_owned``/``locked()`` probes on plain locks, and
    is a cheap no-op where ownership cannot be determined.
    """
    if isinstance(lock, _InstrumentedLock):
        if not lock._graph.held(lock):
            raise AssertionError(
                f"lock {lock.label} not held by {threading.current_thread().name}"
            )
        return
    if hasattr(lock, "_is_owned"):  # RLock and Condition know their owner
        if not lock._is_owned():
            raise AssertionError(
                f"lock {lock!r} not held by {threading.current_thread().name}"
            )
        return
    if hasattr(lock, "locked") and not lock.locked():
        raise AssertionError(f"lock {lock!r} is not held by any thread")


def _iter_cycle_lines(graph: LockGraph) -> Iterator[str]:  # pragma: no cover
    for cycle in graph.cycles():
        yield cycle.render()
