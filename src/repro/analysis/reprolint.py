"""``reprolint``: AST rules for the invariants this repo runs on.

Every rule has a code, a one-line invariant, and an inline suppression
syntax::

    # repro: allow[REP001] - reason the invariant holds anyway

A suppression comment on the reported line silences that finding; on a
``def`` or ``class`` line it covers the whole body.  A suppression
without a ``- reason`` is deliberately ignored — unjustified exceptions
are exactly what the linter exists to prevent.

=======  ==============================================================
REP001   Cache keys must be epoch-fenced: any ``*cache*.get/put`` whose
         key *tuple* lacks an epoch- or shard-file-bearing term can
         serve stale results across a store commit.
REP002   Lock discipline: fields declared ``# guarded-by: <lock>`` on a
         class owning a ``threading.Lock``/``RLock`` must only be
         touched inside ``with self.<lock>:`` (methods named
         ``*_locked`` are the documented called-with-lock-held
         convention; ``__init__`` is pre-publication and exempt).
REP003   asyncio loop confinement: blocking calls (``time.sleep``,
         queue ``get``/``put``/``join``, synchronous
         ``service.execute*``/``apply_updates``, socket reads) must not
         run inside ``async def`` bodies in :mod:`repro.server` —
         dispatch them through an executor (lambdas and nested sync
         ``def`` are assumed to be exactly that and are skipped).
REP004   Pickle safety: registered cross-process payload types must not
         grow fields holding lambdas, locks, mmaps, loop handles or
         other unpicklables (the runtime half round-trips real
         instances: :mod:`repro.analysis.pickle_check`).
REP005   numpy dtype discipline: array constructors in the
         ``repro.core``/``repro.xpath`` hot paths and the
         ``repro.encoding.codec`` bit-packing layer must pin ``dtype=``
         explicitly so rank arrays cannot silently promote off
         ``int64`` on other platforms (``np.append`` has no ``dtype``
         parameter at all — rewrite with ``np.concatenate``).
REP006   Durations and deadlines must use ``time.monotonic()``;
         ``time.time()`` is only for real wall-clock timestamps (and
         needs a suppression saying so).
REP007   ``except Exception`` / ``except BaseException`` / bare
         ``except`` are real decisions: each needs a narrower type or a
         tagged justification.
REP008   Feedback-store discipline: in :mod:`repro.feedback`, every
         mutable ``self`` field of a lock-owning class must carry a
         ``# guarded-by: <lock>`` annotation on its ``__init__``
         assignment — the adaptive loop's aggregates are written by the
         service batch path while planners read them concurrently, so
         an undeclared field is an undeclared race.
=======  ==============================================================
"""

from __future__ import annotations

import ast
import json
import os
import re
import sys
from dataclasses import asdict, dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Finding", "Module", "RULES", "lint_file", "run_lint", "render_text"]


_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[\s*(REP\d{3}(?:\s*,\s*REP\d{3})*)\s*\]\s*-\s*(\S.*)"
)
_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*(\w+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation (suppressed findings are kept for reporting)."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    reason: str = ""

    def render(self) -> str:
        tag = f" (suppressed: {self.reason})" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{tag}"


@dataclass
class Module:
    """One parsed source file plus its comment-level declarations."""

    path: str
    module: str  #: dotted module name, e.g. ``repro.server.app``
    source: str
    tree: ast.Module = field(init=False)
    #: line → (rule codes, reason)
    suppressions: Dict[int, Tuple[FrozenSet[str], str]] = field(init=False)
    #: line → lock name named by a ``# guarded-by:`` comment
    guarded_lines: Dict[int, str] = field(init=False)

    def __post_init__(self) -> None:
        self.tree = ast.parse(self.source, filename=self.path)
        self.suppressions = {}
        self.guarded_lines = {}
        for lineno, line in enumerate(self.source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                codes = frozenset(
                    code.strip() for code in match.group(1).split(",")
                )
                self.suppressions[lineno] = (codes, match.group(2).strip())
            match = _GUARDED_RE.search(line)
            if match:
                self.guarded_lines[lineno] = match.group(1)

    def suppression(
        self, rule: str, line: int, scopes: Sequence[int]
    ) -> Optional[str]:
        """The reason suppressing ``rule`` at ``line``, if any.

        Checks the finding's own line first, then every enclosing
        ``def``/``class`` header line (innermost last in ``scopes``).
        """
        for candidate in (line, *reversed(tuple(scopes))):
            entry = self.suppressions.get(candidate)
            if entry is not None and rule in entry[0]:
                return entry[1]
        return None


class Rule(ast.NodeVisitor):
    """A linter rule: visit the module, ``emit`` findings.

    ``visit`` transparently maintains the stack of enclosing
    ``def``/``class`` header lines so suppressions on those lines cover
    whole bodies.
    """

    code = "REP000"
    summary = ""

    def __init__(self, module: Module):
        self.m = module
        self.findings: List[Finding] = []
        self._scopes: List[int] = []

    def run(self) -> List[Finding]:
        self.visit(self.m.tree)
        return self.findings

    def visit(self, node: ast.AST):
        scoped = isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
        if scoped:
            self._scopes.append(node.lineno)
        try:
            return super().visit(node)
        finally:
            if scoped:
                self._scopes.pop()

    def emit(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        reason = self.m.suppression(self.code, line, self._scopes)
        self.findings.append(
            Finding(
                self.code,
                self.m.path,
                line,
                col,
                message,
                suppressed=reason is not None,
                reason=reason or "",
            )
        )


def _src(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # repro: allow[REP007] - unparse of exotic nodes must never kill a lint run
        return ""


# ----------------------------------------------------------------------
# REP001 — epoch-fenced cache keys
# ----------------------------------------------------------------------
class EpochFencedCacheKeys(Rule):
    code = "REP001"
    summary = "cache get/put key tuples must carry an epoch or shard-file term"

    #: a key element whose source mentions one of these fences the entry
    FENCE_TOKENS = ("epoch", "file")

    def __init__(self, module: Module):
        super().__init__(module)
        self._envs: List[Dict[str, ast.Tuple]] = []

    def _visit_function(self, node):
        env: Dict[str, ast.Tuple] = {}
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Assign)
                and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Name)
                and isinstance(sub.value, ast.Tuple)
            ):
                env[sub.targets[0].id] = sub.value
        self._envs.append(env)
        try:
            self.generic_visit(node)
        finally:
            self._envs.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _resolve_key(self, arg: ast.AST) -> Optional[ast.Tuple]:
        if isinstance(arg, ast.Tuple):
            return arg
        if isinstance(arg, ast.Name):
            for env in reversed(self._envs):
                if arg.id in env:
                    return env[arg.id]
        return None

    def visit_Call(self, node: ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("get", "put")
            and "cache" in _src(func.value).lower()
            and node.args
        ):
            key = self._resolve_key(node.args[0])
            if key is not None and not any(
                any(tok in _src(el).lower() for tok in self.FENCE_TOKENS)
                for el in key.elts
            ):
                self.emit(
                    node,
                    f"cache key {_src(node.args[0])!r} has no epoch- or "
                    "shard-file-bearing term; a store commit would leave "
                    "stale entries reachable",
                )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# REP002 — lock discipline for guarded-by fields
# ----------------------------------------------------------------------
class LockDiscipline(Rule):
    code = "REP002"
    summary = "guarded-by fields must be accessed under their lock"

    #: methods exempt from the lexical check: ``__init__`` runs before
    #: the object is shared; ``*_locked`` is the documented
    #: caller-holds-the-lock convention (backed at runtime by
    #: ``lockgraph.assert_held``).
    @staticmethod
    def _exempt(name: str) -> bool:
        return name == "__init__" or name.endswith("_locked")

    def visit_ClassDef(self, node: ast.ClassDef):
        locks = self._lock_attrs(node)
        guarded = self._guarded_fields(node, locks)
        if guarded:
            for stmt in node.body:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and not self._exempt(stmt.name):
                    if self.m.suppression(self.code, stmt.lineno, self._scopes):
                        # def-line suppression covers the whole body;
                        # emit nothing rather than one per access.
                        continue
                    self._check_method(stmt, guarded, locks)
        self.generic_visit(node)  # nested classes get their own pass

    def _lock_attrs(self, node: ast.ClassDef) -> FrozenSet[str]:
        names = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Call):
                callee = _src(sub.value.func)
                if callee in ("threading.Lock", "threading.RLock"):
                    for target in sub.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            names.add(target.attr)
            # An inherited lock never appears as an assignment in this
            # class body; 'with self.<x>lock:' usage is its witness.
            if isinstance(sub, (ast.With, ast.AsyncWith)):
                for item in sub.items:
                    expr = _src(item.context_expr)
                    if (
                        expr.startswith("self.")
                        and "." not in expr[5:]
                        and "lock" in expr.lower()
                    ):
                        names.add(expr[5:])
        return frozenset(names)

    def _guarded_fields(
        self, node: ast.ClassDef, locks: FrozenSet[str]
    ) -> Dict[str, str]:
        span = set(range(node.lineno, (node.end_lineno or node.lineno) + 1))
        declared_lines = {
            line: lock
            for line, lock in self.m.guarded_lines.items()
            if line in span
        }
        guarded: Dict[str, str] = {}
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Assign, ast.AnnAssign)):
                lock = declared_lines.get(sub.lineno)
                if lock is None:
                    continue
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        if lock not in locks:
                            self.emit(
                                sub,
                                f"field {target.attr!r} declared guarded-by "
                                f"{lock!r}, but the class owns no such "
                                "threading.Lock/RLock",
                            )
                        else:
                            guarded[target.attr] = lock
        return guarded

    def _check_method(
        self, method, guarded: Dict[str, str], locks: FrozenSet[str]
    ) -> None:
        def held_locks(with_node) -> FrozenSet[str]:
            found = set()
            for item in with_node.items:
                expr = _src(item.context_expr)
                for lock in locks:
                    if expr == f"self.{lock}":
                        found.add(lock)
            return frozenset(found)

        def scan(node: ast.AST, held: FrozenSet[str]) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inner = held | held_locks(node)
                for item in node.items:
                    scan(item, held)
                for stmt in node.body:
                    scan(stmt, inner)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                # A nested callable may run long after the with-block
                # exits; its body starts from a clean slate.
                for child in ast.iter_child_nodes(node):
                    scan(child, frozenset())
                return
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in guarded
                and guarded[node.attr] not in held
            ):
                self.emit(
                    node,
                    f"{method.name}: field {node.attr!r} is guarded by "
                    f"self.{guarded[node.attr]} but accessed outside a "
                    f"'with self.{guarded[node.attr]}:' block",
                )
            for child in ast.iter_child_nodes(node):
                scan(child, held)

        for stmt in method.body:
            scan(stmt, frozenset())


# ----------------------------------------------------------------------
# REP003 — asyncio loop confinement
# ----------------------------------------------------------------------
class LoopConfinement(Rule):
    code = "REP003"
    summary = "no blocking calls inside async def bodies in repro.server"

    BLOCKING_SERVICE = ("execute", "execute_batch", "apply_updates")
    BLOCKING_QUEUE = ("get", "put", "join")
    QUEUE_NAMES = re.compile(r"(queue|inbox|outbox|mutex)", re.IGNORECASE)

    def run(self) -> List[Finding]:
        if not self.m.module.startswith("repro.server"):
            return self.findings
        return super().run()

    def visit_AsyncFunctionDef(self, node):
        self._scan(node)
        self.generic_visit(node)  # nested async defs get their own scan

    def _scan(self, root: ast.AST) -> None:
        for node in ast.iter_child_nodes(root):
            if isinstance(node, (ast.FunctionDef, ast.Lambda)):
                continue  # runs off-loop (executor dispatch) by convention
            if isinstance(node, ast.AsyncFunctionDef):
                continue  # visited on its own
            if isinstance(node, ast.Call):
                self._check_call(node)
            self._scan(node)

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        if _src(func) == "time.sleep":
            self.emit(
                node,
                "time.sleep() blocks the event loop; await asyncio.sleep() "
                "or dispatch to an executor",
            )
            return
        if not isinstance(func, ast.Attribute):
            return
        receiver = _src(func.value)
        if func.attr in self.BLOCKING_SERVICE and "service" in receiver.lower():
            self.emit(
                node,
                f"synchronous {receiver}.{func.attr}() holds the GIL for a "
                "whole batch on the event loop; run it on the dispatch lane",
            )
        elif func.attr in self.BLOCKING_QUEUE and self.QUEUE_NAMES.search(receiver):
            self.emit(
                node,
                f"blocking queue call {receiver}.{func.attr}() inside "
                "async def; use an executor or an asyncio queue",
            )
        elif func.attr in ("recv", "accept", "makefile"):
            self.emit(
                node,
                f"blocking socket call {receiver}.{func.attr}() inside "
                "async def; use the stream reader/writer",
            )


# ----------------------------------------------------------------------
# REP004 — pickle safety of registered cross-process payloads
# ----------------------------------------------------------------------
#: module → class names whose instances cross a process boundary
#: (pickled to pool workers or shipped through fabric queues).  The
#: runtime half (`repro.analysis.pickle_check`) round-trips real
#: instances of every entry at import time.
PAYLOAD_REGISTRY: Dict[str, Tuple[str, ...]] = {
    "repro.encoding.codec": ("PageDirectory",),
    "repro.feedback.records": ("StepObservation", "DriveObservation"),
    "repro.service.executor": ("ShardTask", "ShardResult"),
    "repro.service.updates": ("UpdateOp",),
    "repro.xpath.planner": ("QueryPlan", "StepDecision"),
    "repro.xpath.pipeline": (
        "ContextInit",
        "StaircaseStep",
        "PredicateFilter",
        "PositionalSelect",
        "DocOrderDedup",
        "Materialize",
        "Count",
        "Exists",
        "PhysicalPlan",
    ),
}


class PickleSafety(Rule):
    code = "REP004"
    summary = "cross-process payload types must stay picklable"

    FORBIDDEN = re.compile(
        r"\b(Lock|RLock|Condition|Event|Semaphore|Thread|Queue|SimpleQueue|"
        r"Callable|Future|Task|AbstractEventLoop|EventLoop|SharedMemory|"
        r"mmap|socket|memoryview|Generator|Iterator|TextIO|BinaryIO|IO)\b"
    )

    def run(self) -> List[Finding]:
        self._registered = PAYLOAD_REGISTRY.get(self.m.module, ())
        if not self._registered:
            return self.findings
        return super().run()

    def visit_ClassDef(self, node: ast.ClassDef):
        if node.name in self._registered:
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign):
                    annotation = _src(stmt.annotation)
                    if self.FORBIDDEN.search(annotation):
                        self.emit(
                            stmt,
                            f"{node.name}.{_src(stmt.target)}: annotation "
                            f"{annotation!r} names an unpicklable (this type "
                            "crosses a process boundary)",
                        )
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Lambda):
                        self.emit(
                            stmt,
                            f"{node.name}: lambda in a field default — "
                            "lambdas do not pickle; use a named function",
                        )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# REP005 — numpy dtype discipline in the hot paths
# ----------------------------------------------------------------------
class DtypeDiscipline(Rule):
    code = "REP005"
    summary = "hot-path numpy constructors must pin dtype= explicitly"

    CONSTRUCTORS = frozenset(
        {
            "array",
            "asarray",
            "ascontiguousarray",
            "empty",
            "zeros",
            "ones",
            "full",
            "arange",
            "frombuffer",
            "concatenate",
            "hstack",
            "vstack",
        }
    )

    def run(self) -> List[Finding]:
        if not (
            self.m.module.startswith("repro.core")
            or self.m.module.startswith("repro.xpath")
            or self.m.module == "repro.encoding.codec"
        ):
            return self.findings
        return super().run()

    def visit_Call(self, node: ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("np", "numpy")
        ):
            if func.attr == "append":
                self.emit(
                    node,
                    "np.append has no dtype parameter (a scalar or list "
                    "operand can promote the result off int64); rewrite "
                    "with np.concatenate(..., dtype=...)",
                )
            elif func.attr in self.CONSTRUCTORS and not any(
                kw.arg == "dtype" for kw in node.keywords
            ):
                self.emit(
                    node,
                    f"np.{func.attr}(...) without an explicit dtype= in a "
                    "rank-array hot path; platform-dependent default "
                    "integer widths can promote results off int64",
                )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# REP006 — monotonic clocks for durations
# ----------------------------------------------------------------------
class MonotonicDurations(Rule):
    code = "REP006"
    summary = "durations/deadlines use time.monotonic(), never time.time()"

    def visit_Call(self, node: ast.Call):
        if _src(node.func) == "time.time":
            self.emit(
                node,
                "time.time() is wall-clock and jumps under NTP/DST; use "
                "time.monotonic() (or time.perf_counter()) for durations — "
                "suppress only where a real timestamp is intended",
            )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# REP007 — exception hygiene
# ----------------------------------------------------------------------
class ExceptionHygiene(Rule):
    code = "REP007"
    summary = "broad except clauses need a narrower type or a tagged reason"

    BROAD = ("Exception", "BaseException")

    def _is_broad(self, expr: Optional[ast.AST]) -> bool:
        if expr is None:
            return True  # bare except
        if isinstance(expr, ast.Name) and expr.id in self.BROAD:
            return True
        if isinstance(expr, ast.Tuple):
            return any(self._is_broad(el) for el in expr.elts)
        return False

    def visit_ExceptHandler(self, node: ast.ExceptHandler):
        if self._is_broad(node.type):
            caught = _src(node.type) if node.type else "everything (bare except)"
            self.emit(
                node,
                f"broad handler catches {caught}; catch the concrete "
                "exception types, or tag the boundary with "
                "'# repro: allow[REP007] - reason'",
            )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# REP008 — feedback-store fields must declare their lock
# ----------------------------------------------------------------------
class FeedbackGuardedFields(Rule):
    code = "REP008"
    summary = "repro.feedback mutable state must carry guarded-by annotations"

    def run(self) -> List[Finding]:
        if not self.m.module.startswith("repro.feedback"):
            return self.findings
        return super().run()

    def visit_ClassDef(self, node: ast.ClassDef):
        if self._owns_lock(node):
            for stmt in node.body:
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt.name == "__init__"
                ):
                    self._check_init(node, stmt)
        self.generic_visit(node)  # nested classes get their own pass

    @staticmethod
    def _owns_lock(node: ast.ClassDef) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Call):
                if _src(sub.value.func) in ("threading.Lock", "threading.RLock"):
                    return True
        return False

    def _check_init(self, cls: ast.ClassDef, init) -> None:
        for stmt in ast.walk(init):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                if "lock" in target.attr.lower():
                    continue  # the lock itself guards, it is not guarded
                if stmt.lineno not in self.m.guarded_lines:
                    self.emit(
                        stmt,
                        f"{cls.name}.{target.attr}: feedback-store field "
                        "assigned without a '# guarded-by: <lock>' "
                        "annotation; planners read these aggregates while "
                        "the service batch path writes them",
                    )


RULES: Tuple[type, ...] = (
    EpochFencedCacheKeys,
    LockDiscipline,
    LoopConfinement,
    PickleSafety,
    DtypeDiscipline,
    MonotonicDurations,
    ExceptionHygiene,
    FeedbackGuardedFields,
)


# ----------------------------------------------------------------------
# Driving
# ----------------------------------------------------------------------
def module_name(path: str) -> str:
    """Dotted module name for ``path`` (anchored at a ``src`` segment
    when present, else at the last path component)."""
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    else:
        parts = parts[-1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p)


def lint_file(
    path: str, select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Run every (selected) rule over one file."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    try:
        module = Module(path=path, module=module_name(path), source=source)
    except SyntaxError as error:
        return [
            Finding(
                "REP000",
                path,
                error.lineno or 1,
                error.offset or 0,
                f"file does not parse: {error.msg}",
            )
        ]
    wanted = set(select) if select else None
    findings: List[Finding] = []
    for rule_cls in RULES:
        if wanted is not None and rule_cls.code not in wanted:
            continue
        findings.extend(rule_cls(module).run())
    return findings


def iter_python_files(paths: Sequence[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
            continue
        for root, dirs, names in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs if d != "__pycache__" and not d.startswith(".")
            )
            files.extend(
                os.path.join(root, n) for n in sorted(names) if n.endswith(".py")
            )
    return files


def run_lint(
    paths: Sequence[str], select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Lint every ``.py`` under ``paths``; findings in file/line order."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, select=select))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def render_text(findings: Sequence[Finding], show_suppressed: bool = False) -> str:
    """Human-readable report (what ``python -m repro.analysis`` prints)."""
    lines = [
        f.render()
        for f in findings
        if show_suppressed or not f.suppressed
    ]
    active = sum(1 for f in findings if not f.suppressed)
    silenced = len(findings) - active
    lines.append(
        f"{active} finding{'s' if active != 1 else ''}"
        f" ({silenced} suppressed)"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    return json.dumps([asdict(f) for f in findings], indent=2)


if __name__ == "__main__":  # pragma: no cover - thin alias
    from repro.analysis.__main__ import main

    sys.exit(main())
