"""REP004's runtime half: round-trip real cross-process payloads.

The AST rule can only catch an unpicklable *annotation*; what actually
breaks a pool worker is an unpicklable *value* — a lambda default, a
lock smuggled into a field, a closure hiding inside a nested tuple.  So
this module builds one representative instance of every type named in
:data:`repro.analysis.reprolint.PAYLOAD_REGISTRY`, pushes each through
``pickle.dumps``/``loads`` at the highest protocol, and verifies the
copy survives intact.

Two invariants are enforced together:

1. every registered type round-trips (a new unpicklable field fails
   here before it fails inside a worker at 2 a.m.), and
2. every registered type has a representative below (registry drift —
   registering a class nobody builds a witness for — fails loudly).

Run via ``python -m repro.analysis --pickle-check`` (the CI ``analysis``
job does) or call :func:`check_payloads` directly.
"""

from __future__ import annotations

import pickle
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.reprolint import PAYLOAD_REGISTRY

__all__ = ["PickleCheckError", "build_representatives", "check_payloads"]


class PickleCheckError(AssertionError):
    """A registered cross-process payload failed its round-trip."""


def build_representatives() -> List[object]:
    """One real instance per registered payload type.

    The query shapes are chosen so compilation emits every operator
    class: ``//a[b]/b[2]`` produces :class:`ContextInit`,
    :class:`StaircaseStep`, :class:`PredicateFilter` and
    :class:`PositionalSelect`; the union exercises
    :class:`DocOrderDedup`; the three result modes cover the terminals.
    """
    from repro.encoding.codec import pack_int_column
    from repro.feedback.records import DriveObservation, StepObservation
    from repro.service.executor import ShardResult, ShardTask
    from repro.service.updates import UpdateOp
    from repro.xpath.pipeline import compile_plan
    from repro.xpath.planner import Planner, TagStatistics

    planner = Planner(TagStatistics({"a": 5, "b": 12}, 40, 4))
    materialize = compile_plan(planner.plan("//a[b]/b[2]"), mode="materialize")
    count = compile_plan(planner.plan("//a | //b"), mode="count")
    exists = compile_plan(planner.plan("//a"), mode="exists")

    instances: List[object] = [
        planner.plan("//a/b"),  # QueryPlan (holds its StepDecisions)
        materialize,
        count,
        exists,
        count.merge,  # DocOrderDedup
        ShardTask(
            index=0,
            shard_id=2,
            shard_file="shard-0002-epoch-0007.npz",
            names=("doc-a", "doc-b"),
            plan=materialize,
            engine="vectorized",
            document=None,
            mode="materialize",
        ),
        ShardResult(index=0, shard_id=2, mode="count", counts={"doc-a": 3}),
        UpdateOp(op="delete", document="doc-a", pre=4),
        # Feedback observations ride fabric result messages and pool pipes.
        StepObservation(("step", "descendant", "a"), n_in=4, n_out=9, ns=1200),
        DriveObservation(
            shard_id=2,
            engine="scalar",
            elapsed_ns=52_000,
            steps=(
                StepObservation(("pred", "child", "b"), 9, 3, 400),
            ),
            scanned=40,
            skipped=12,
            blocks=1,
        ),
        # PageDirectory (array-backed dataclass; defines its own __eq__)
        pack_int_column("post", np.arange(100, dtype=np.int64), "delta", 64)[0],
    ]
    instances.extend(planner.plan("//a/b").steps)  # StepDecision
    for plan in (materialize, count, exists):
        instances.append(plan.terminal)
        for branch in plan.branches:
            instances.extend(branch)
    return instances


def _round_trip(instance: object) -> object:
    blob = pickle.dumps(instance, protocol=pickle.HIGHEST_PROTOCOL)
    return pickle.loads(blob)


def check_payloads() -> List[str]:
    """Round-trip every representative; describe each verified type.

    Raises :exc:`PickleCheckError` on the first payload that fails to
    pickle, fails to unpickle, or comes back unequal — and on any
    registered type with no representative instance at all.
    """
    instances = build_representatives()
    seen: Dict[Tuple[str, str], int] = {}
    for instance in instances:
        cls = type(instance)
        try:
            restored = _round_trip(instance)
        except Exception as error:  # repro: allow[REP007] - any pickle failure is the finding itself
            raise PickleCheckError(
                f"{cls.__module__}.{cls.__qualname__} does not survive a "
                f"pickle round-trip: {error!r}"
            ) from error
        if type(restored) is not cls:
            raise PickleCheckError(
                f"{cls.__qualname__} unpickled as {type(restored).__qualname__}"
            )
        if restored != instance:
            raise PickleCheckError(
                f"{cls.__module__}.{cls.__qualname__} round-trip is not "
                f"equal to the original: {restored!r} != {instance!r}"
            )
        seen[(cls.__module__, cls.__qualname__)] = (
            seen.get((cls.__module__, cls.__qualname__), 0) + 1
        )

    # ndarray payloads defeat dataclass __eq__; verify one explicitly.
    from repro.service.executor import ShardResult

    ranked = ShardResult(
        index=1,
        shard_id=0,
        mode="materialize",
        ranks={"doc-a": np.array([1, 4, 9], dtype=np.int64)},
    )
    restored = _round_trip(ranked)
    if not np.array_equal(restored.ranks["doc-a"], ranked.ranks["doc-a"]):
        raise PickleCheckError("ShardResult rank array corrupted by round-trip")
    if restored.ranks["doc-a"].dtype != np.int64:
        raise PickleCheckError("ShardResult rank array lost its int64 dtype")

    missing = [
        f"{module}.{name}"
        for module, names in sorted(PAYLOAD_REGISTRY.items())
        for name in names
        if (module, name) not in seen
    ]
    if missing:
        raise PickleCheckError(
            "registered payload types with no representative instance "
            f"(add one to build_representatives): {', '.join(missing)}"
        )
    return [
        f"{module}.{name}: {count} instance{'s' if count != 1 else ''} verified"
        for (module, name), count in sorted(seen.items())
    ]
