"""``python -m repro.analysis`` — run the project-invariant linter.

Exit status is the contract CI gates on: ``0`` when every finding is
suppressed (or there are none), ``1`` when unsuppressed findings
remain, ``2`` on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.reprolint import (
    RULES,
    render_json,
    render_text,
    run_lint,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-invariant linter (rules REP001-REP007).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="REP00X[,REP00Y]",
        help="run only these rule codes",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings in the text report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--pickle-check",
        action="store_true",
        help="also round-trip every registered cross-process payload type",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.code}  {rule.summary}")
        return 0

    select = None
    if args.select:
        select = [code.strip().upper() for code in args.select.split(",") if code.strip()]
        known = {rule.code for rule in RULES}
        unknown = sorted(set(select) - known)
        if unknown:
            print(f"unknown rule code(s): {', '.join(unknown)}", file=sys.stderr)
            return 2

    findings = run_lint(args.paths, select=select)
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings, show_suppressed=args.show_suppressed))

    status = 1 if any(not f.suppressed for f in findings) else 0

    if args.pickle_check:
        from repro.analysis.pickle_check import PickleCheckError, check_payloads

        try:
            verified = check_payloads()
        except PickleCheckError as error:
            print(f"pickle-check FAILED: {error}", file=sys.stderr)
            return 1
        if args.format == "text":
            print(f"pickle-check: {len(verified)} payload types verified")

    return status


if __name__ == "__main__":
    sys.exit(main())
