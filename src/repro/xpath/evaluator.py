"""XPath evaluation facade: compile to a physical plan, then drive it.

Since the operator-pipeline refactor the evaluator no longer interprets
the AST step by step.  :meth:`Evaluator.evaluate` compiles the
expression into a :class:`~repro.xpath.pipeline.PhysicalPlan` (cached
per expression) and hands it to the pipeline driver; the evaluator
itself survives as the *runtime* the operator kernels call back into —
it owns the document, the axis executor, the lazily built per-tag
fragments, and the XPath 1.0 expression machinery (predicates,
functions, coercions, comparisons).

Name-test pushdown (Experiment 3) is decided per compiled operator:
steps of the shape ``descendant::tag`` / ``ancestor::tag`` are then
executed against the per-tag fragment
(:class:`~repro.core.fragments.FragmentedDocument`), i.e. the name test
is applied *before* the join — ``staircasejoin(nametest(doc, n), cs)``
— which is valid because pre/post-derived tree properties "remain valid
for a subset of nodes".

Predicates follow XPath 1.0 semantics: positional predicates see the
axis order (reverse for the reverse axes); value comparisons use
existential node-set semantics.

Result modes: ``evaluate(..., mode="count")`` returns the result
cardinality and ``mode="exists"`` a boolean, letting the driver
terminate early instead of materializing ranks the caller will only
``len()`` or truth-test (:meth:`Evaluator.count` /
:meth:`Evaluator.exists` are the spelled-out faces).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.fragments import FragmentedDocument
from repro.core.staircase import SkipMode
from repro.counters import JoinStatistics
from repro.encoding.doctable import DocTable
from repro.errors import XPathEvaluationError
from repro.xmltree.model import NodeKind
from repro.xpath.ast import (
    BinaryExpr,
    Expr,
    FunctionCall,
    LocationPath,
    NumberLiteral,
    Step,
    StringLiteral,
)
from repro.xpath.axes import AxisExecutor, apply_node_test, resolve_engine
from repro.xpath.parser import parse_xpath
from repro.xpath.pipeline import (
    StaircaseStep,
    compile_plan,
    compile_step_ops,
    dispatch,
    drive,
    is_positional_predicate,
)

__all__ = ["Evaluator", "evaluate", "parse_with_cache"]

#: Backward-compatible alias — the classification moved to the compile
#: layer (:mod:`repro.xpath.pipeline`) with the operator refactor.
_is_positional_predicate = is_positional_predicate


def parse_with_cache(query: str, cache) -> Expr:
    """Parse ``query``, consulting a mapping-like plan cache if given.

    ``cache`` needs ``get(key)``/``put(key, value)`` (e.g.
    :class:`repro.service.LRUCache`); ``None`` parses unconditionally.
    The single parsing gateway shared by :class:`Evaluator` and the
    service layer, so the caching rule lives in one place.
    """
    if cache is None:
        return parse_xpath(query)
    plan = cache.get(query)
    if plan is None:
        plan = parse_xpath(query)
        cache.put(query, plan)
    return plan

_REVERSE_AXES = frozenset(
    ("ancestor", "ancestor-or-self", "preceding", "preceding-sibling", "parent")
)

#: Axis inverses used by the vectorised engine's bulk predicate filter:
#: ``n ∈ axis(c)  ⇔  c ∈ _REVERSE_OF[axis](n)`` for non-attribute nodes
#: (``attribute`` reverses onto ``parent``: an attribute's owner element).
_REVERSE_OF = {
    "child": "parent",
    "parent": "child",
    "descendant": "ancestor",
    "ancestor": "descendant",
    "descendant-or-self": "ancestor-or-self",
    "ancestor-or-self": "descendant-or-self",
    "following": "preceding",
    "preceding": "following",
    "following-sibling": "preceding-sibling",
    "preceding-sibling": "following-sibling",
    "self": "self",
    "attribute": "parent",
}


class Evaluator:
    """Evaluate XPath expressions against one encoded document.

    Parameters
    ----------
    doc:
        The encoded document.
    strategy:
        Backward-compatible alias for ``engine`` (``"staircase"`` names
        the scalar engine).
    mode:
        :class:`SkipMode` for the scalar staircase join.
    pushdown:
        Push name tests below descendant/ancestor staircase joins
        (Experiment 3's ~3× rewrite).  ``True``/``False`` applies to
        every eligible step; an iterable of step indices (the planner's
        per-step verdicts) pushes only at those positions of the
        *top-level* path.  The verdicts are fused into the compiled
        :class:`~repro.xpath.pipeline.StaircaseStep` operators.
        Fragments are built lazily on first use and cached for the
        evaluator's lifetime.
    stats:
        Shared :class:`JoinStatistics`; accumulates across queries.
    engine:
        ``"scalar"`` (the paper's per-node Algorithms 2–4, instrumented
        with node-access counters) or ``"vectorized"`` (numpy bulk
        kernels for every axis step, fragment reads, and non-positional
        path predicates).  Both produce identical node sequences;
        overrides ``strategy`` when both are given.
    plan_cache:
        Optional mapping-like object with ``get(key)``/``put(key, value)``
        (e.g. :class:`repro.service.LRUCache`).  String queries are then
        parsed at most once per cache lifetime — the service layer shares
        one cache across every evaluator it owns.
    """

    #: Compiled-pipeline cache bound (per evaluator); the cache is
    #: cleared wholesale when it fills — compilation is cheap, the cap
    #: only guards against unbounded growth under query churn.
    COMPILE_CACHE_LIMIT = 256

    def __init__(
        self,
        doc: DocTable,
        strategy: Optional[str] = None,
        mode: SkipMode = SkipMode.ESTIMATE,
        pushdown: bool = False,
        stats: Optional[JoinStatistics] = None,
        engine: Optional[str] = None,
        plan_cache=None,
    ):
        self.doc = doc
        self.engine = resolve_engine(engine, strategy)
        self.stats = stats if stats is not None else JoinStatistics()
        self.axes = AxisExecutor(doc, engine=self.engine, mode=mode, stats=self.stats)
        self._set_pushdown(pushdown)
        self.plan_cache = plan_cache
        self._fragments: Optional[FragmentedDocument] = None
        self._compiled: dict = {}
        #: Per-operator observation collector
        #: (:class:`repro.feedback.PipelineObserver`), attached by shard
        #: workers for sampled drives only; ``None`` keeps the pipeline
        #: on its uninstrumented path.
        self.observer = None

    def _set_pushdown(self, pushdown) -> None:
        """Normalise the ``pushdown`` spelling (bool or step-index set)."""
        if isinstance(pushdown, bool):
            self.pushdown = pushdown
            self._pushdown_steps: Optional[frozenset] = None
        else:
            steps = frozenset(int(i) for i in pushdown)
            self.pushdown = bool(steps)
            self._pushdown_steps = steps

    def _push_at(self, step_index: Optional[int]) -> bool:
        """Is pushdown enabled for the top-level step at ``step_index``?

        ``None`` marks steps without a top-level position — only blanket
        ``pushdown=True`` reaches those.
        """
        if self._pushdown_steps is None:
            return self.pushdown
        return step_index is not None and step_index in self._pushdown_steps

    def _pushdown_config(self):
        """The hashable pushdown spelling (compile-cache key component)."""
        if self._pushdown_steps is not None:
            return self._pushdown_steps
        return self.pushdown

    # ------------------------------------------------------------------
    @property
    def fragments(self) -> FragmentedDocument:
        if self._fragments is None:
            self._fragments = FragmentedDocument(self.doc)
        return self._fragments

    # ------------------------------------------------------------------
    # Compile and drive
    # ------------------------------------------------------------------
    def compile(self, path: Union[str, Expr]):
        """The cached :class:`~repro.xpath.pipeline.PhysicalPlan` for
        ``path`` under this evaluator's pushdown configuration."""
        if isinstance(path, str):
            path = self._parse(path)
        key = (path, self._pushdown_config())
        plan = self._compiled.get(key)
        if plan is None:
            if len(self._compiled) >= self.COMPILE_CACHE_LIMIT:
                self._compiled.clear()
            plan = compile_plan(path, pushdown=self._pushdown_config())
            self._compiled[key] = plan
        return plan

    def evaluate(
        self,
        path: Union[str, LocationPath],
        context: Union[None, int, np.ndarray] = None,
        mode: str = "materialize",
    ):
        """Evaluate ``path``; returns preorder ranks in document order
        (``mode="count"``: their cardinality; ``mode="exists"``: a
        boolean, computed with early termination).

        ``context`` seeds relative paths (default: the root element); it
        is ignored by absolute paths, which start at the virtual document
        node.
        """
        plan = self.compile(path)
        if mode != "materialize":
            plan = plan.with_mode(mode)
        return drive(plan, self, context=context)

    def count(self, path, context=None) -> int:
        """Result cardinality without materializing a caller payload."""
        return self.evaluate(path, context=context, mode="count")

    def exists(self, path, context=None) -> bool:
        """Early-terminating existence check."""
        return self.evaluate(path, context=context, mode="exists")

    def _parse(self, query: str) -> Expr:
        """Parse ``query``, going through the shared plan cache if set."""
        return parse_with_cache(query, self.plan_cache)

    # ------------------------------------------------------------------
    def evaluate_step(
        self, context, step: Step, step_index: Optional[int] = None
    ) -> np.ndarray:
        """Evaluate one location step against an explicit context.

        The single-step face of :meth:`evaluate` — the step is compiled
        into its operator(s) and driven directly, same semantics
        including positional predicates and per-step pushdown (keyed by
        ``step_index``).  ``context`` is an array of preorder ranks or
        the :data:`~repro.xpath.axes.DOCUMENT_CONTEXT` sentinel.  Kept
        as the stable public face for step-at-a-time callers; the batch
        executor's trie dispatches compiled operators directly.
        """
        index = -1 if step_index is None else step_index
        for op in compile_step_ops(step, index, self._push_at(step_index)):
            context = dispatch(op, self, context)
        return context

    # ------------------------------------------------------------------
    # Kernel callbacks: predicates
    # ------------------------------------------------------------------
    def filter_predicate(
        self, candidates: np.ndarray, axis: str, predicate: Expr
    ) -> np.ndarray:
        """Filter ``candidates`` through one predicate, bulk when the
        engine and shape allow, per-candidate otherwise."""
        if len(candidates) == 0:
            return candidates
        if self.engine == "vectorized":
            mask = self.bulk_predicate_mask(candidates, predicate)
            if mask is not None:
                return candidates[mask]
        return self.filter_predicate_scalar(candidates, axis, predicate)

    def filter_predicate_scalar(
        self, candidates: np.ndarray, axis: str, predicate: Expr
    ) -> np.ndarray:
        """The per-candidate predicate loop (positional semantics)."""
        if len(candidates) == 0:
            return candidates
        ordered = candidates[::-1] if axis in _REVERSE_AXES else candidates
        size = len(ordered)
        kept = []
        for position, pre in enumerate(ordered, start=1):
            value = self._expr(predicate, int(pre), position, size)
            if isinstance(value, float):
                # Positional shorthand: [n] ⇔ [position() = n].  Float
                # comparison handles NaN/±inf/non-integers (all false).
                keep = value == float(position)
            else:
                keep = self._to_boolean(value)
            if keep:
                kept.append(int(pre))
        kept.sort()
        return np.asarray(kept, dtype=np.int64)

    def single_context_step(
        self, context, step: Step, pushdown: bool = False
    ) -> np.ndarray:
        """One whole step (axis, test, all predicates) for one context —
        the per-node body of the PositionalSelect operator."""
        candidates = dispatch(
            StaircaseStep(-1, step.axis, step.test, pushdown), self, context
        )
        for predicate in step.predicates:
            candidates = self.filter_predicate(candidates, step.axis, predicate)
        return candidates

    # ------------------------------------------------------------------
    # Kernel callbacks: bulk positional selection (vectorised engine)
    # ------------------------------------------------------------------
    def bulk_positional_select(
        self, context, step: Step, pushdown: bool = False
    ) -> Optional[np.ndarray]:
        """Set-at-a-time ``child::t[k]`` / ``child::t[last()]``, or ``None``.

        On the ``child`` and ``attribute`` axes the context node that
        produced a candidate *is* its parent, so per-context positions are
        ranks within parent groups — one stable sort by the parent column
        replaces the per-context-node loop.  Only a single plain-number or
        bare ``last()`` predicate qualifies; everything else keeps the
        per-node path (successive predicates re-index positions).
        """
        if len(step.predicates) != 1 or step.axis not in ("child", "attribute"):
            return None
        predicate = step.predicates[0]
        wants_last = (
            isinstance(predicate, FunctionCall)
            and predicate.name == "last"
            and not predicate.args
        )
        if not wants_last:
            if not isinstance(predicate, NumberLiteral):
                return None
            value = predicate.value
            if value != int(value) or int(value) < 1:
                return np.empty(0, dtype=np.int64)
            wanted_rank = int(value) - 1
        candidates = dispatch(
            StaircaseStep(-1, step.axis, step.test, pushdown), self, context
        )
        if len(candidates) == 0:
            return candidates
        parents = self.doc.parent[candidates]
        order = np.argsort(parents, kind="stable")  # groups keep doc order
        grouped = candidates[order]
        boundaries = np.nonzero(np.diff(parents[order]))[0]
        if wants_last:
            picks = np.concatenate((boundaries, [len(grouped) - 1]), dtype=np.int64)
        else:
            starts = np.concatenate(([0], boundaries + 1), dtype=np.int64)
            ends = np.concatenate((boundaries, [len(grouped) - 1]), dtype=np.int64)
            picks = starts + wanted_rank
            picks = picks[picks <= ends]
        return np.sort(grouped[picks])

    # ------------------------------------------------------------------
    # Kernel callbacks: bulk (boolean-mask) predicate filtering
    # ------------------------------------------------------------------
    def bulk_predicate_mask(
        self, candidates: np.ndarray, predicate: Expr
    ) -> Optional[np.ndarray]:
        """Keep-mask over ``candidates`` for a set-at-a-time filterable
        predicate, or ``None`` when the expression needs the per-candidate
        evaluator.

        Existence predicates (relative location paths), their negations,
        and ``and``/``or`` combinations thereof are evaluated as one
        reverse-path semi-join per path instead of one sub-evaluation per
        candidate.  Anything positional, value-comparing, or carrying
        inner predicates falls back.
        """
        if isinstance(predicate, LocationPath):
            return self._bulk_path_mask(candidates, predicate)
        if (
            isinstance(predicate, FunctionCall)
            and predicate.name == "not"
            and len(predicate.args) == 1
        ):
            inner = self.bulk_predicate_mask(candidates, predicate.args[0])
            return None if inner is None else ~inner
        if isinstance(predicate, BinaryExpr) and predicate.op in ("and", "or"):
            left = self.bulk_predicate_mask(candidates, predicate.left)
            if left is None:
                return None
            right = self.bulk_predicate_mask(candidates, predicate.right)
            if right is None:
                return None
            return (left & right) if predicate.op == "and" else (left | right)
        return None

    def _bulk_path_mask(
        self, candidates: np.ndarray, path: LocationPath
    ) -> Optional[np.ndarray]:
        """Existence of ``candidate/path`` for every candidate at once.

        A candidate satisfies ``[a₁::t₁/…/aₘ::tₘ]`` iff it lies in
        ``reverse(a₁)(t₁ ∩ reverse(a₂)(… tₘ))`` — so the whole filter is
        ``m`` bulk axis steps seeded from the nodes passing ``tₘ``,
        followed by one sorted membership test.  The axis inversions are
        exact on non-attribute nodes only, so attribute candidates and
        non-final ``attribute`` steps fall back to the scalar evaluator;
        steps with inner predicates do too.
        """
        doc = self.doc
        if path.absolute:
            # Same truth value for every candidate.
            hits = self.evaluate(path)
            return np.full(len(candidates), len(hits) > 0, dtype=bool)
        steps = path.steps
        if not steps or any(s.predicates for s in steps):
            return None
        if any(s.axis not in _REVERSE_OF for s in steps):
            return None
        if any(s.axis == "attribute" for s in steps[:-1]):
            return None
        if np.any(doc.kind[candidates] == int(NodeKind.ATTRIBUTE)):
            return None
        last = steps[-1]
        if last.axis == "attribute":
            universe = doc.pres_with_kind(NodeKind.ATTRIBUTE)
        else:
            universe = doc.non_attribute_pres()
        frontier = apply_node_test(doc, universe, last.axis, last.test.kind, last.test.name)
        for index in range(len(steps) - 1, -1, -1):
            if len(frontier) == 0:
                return np.zeros(len(candidates), dtype=bool)
            frontier = self.axes.step(frontier, _REVERSE_OF[steps[index].axis])
            if index > 0:
                previous = steps[index - 1]
                frontier = apply_node_test(
                    doc, frontier, previous.axis, previous.test.kind, previous.test.name
                )
        return np.isin(candidates, frontier)

    # ------------------------------------------------------------------
    # Expression evaluation (XPath 1.0 core semantics)
    # ------------------------------------------------------------------
    def _expr(self, expr: Expr, context_pre: int, position: int, size: int):
        if isinstance(expr, NumberLiteral):
            return expr.value
        if isinstance(expr, StringLiteral):
            return expr.value
        if isinstance(expr, LocationPath):
            seed = None if expr.absolute else context_pre
            return self.evaluate(expr, context=seed)
        if isinstance(expr, FunctionCall):
            return self._function(expr, context_pre, position, size)
        if isinstance(expr, BinaryExpr):
            if expr.op == "or":
                left = self._to_boolean(self._expr(expr.left, context_pre, position, size))
                if left:
                    return True
                return self._to_boolean(self._expr(expr.right, context_pre, position, size))
            if expr.op == "and":
                left = self._to_boolean(self._expr(expr.left, context_pre, position, size))
                if not left:
                    return False
                return self._to_boolean(self._expr(expr.right, context_pre, position, size))
            left = self._expr(expr.left, context_pre, position, size)
            right = self._expr(expr.right, context_pre, position, size)
            if expr.op == "|":
                if not (isinstance(left, np.ndarray) and isinstance(right, np.ndarray)):
                    raise XPathEvaluationError("'|' requires node-set operands")
                return np.union1d(left, right)
            if expr.op in ("+", "-", "*", "div", "mod"):
                return self._arithmetic(expr.op, left, right)
            return self._compare(expr.op, left, right)
        raise XPathEvaluationError(f"cannot evaluate expression {expr!r}")

    def _arithmetic(self, op: str, left, right) -> float:
        """XPath 1.0 numeric operators (NaN-propagating)."""
        ln, rn = self._to_number(left), self._to_number(right)
        if np.isnan(ln) or np.isnan(rn):
            return float("nan")
        if op == "+":
            return ln + rn
        if op == "-":
            return ln - rn
        if op == "*":
            return ln * rn
        if op == "div":
            if rn == 0:
                return float("inf") if ln > 0 else float("-inf") if ln < 0 else float("nan")
            return ln / rn
        # mod: remainder with the sign of the dividend (math.fmod semantics)
        if rn == 0:
            return float("nan")
        import math

        return math.fmod(ln, rn)

    def _function(self, call: FunctionCall, context_pre: int, position: int, size: int):
        name = call.name
        args = [self._expr(a, context_pre, position, size) for a in call.args]
        if name == "position":
            return float(position)
        if name == "last":
            return float(size)
        if name == "count":
            if len(args) != 1 or not isinstance(args[0], np.ndarray):
                raise XPathEvaluationError("count() expects one node-set argument")
            return float(len(args[0]))
        if name == "not":
            if len(args) != 1:
                raise XPathEvaluationError("not() expects one argument")
            return not self._to_boolean(args[0])
        if name == "name":
            if args:
                node_set = args[0]
                if not isinstance(node_set, np.ndarray):
                    raise XPathEvaluationError("name() expects a node-set argument")
                if len(node_set) == 0:
                    return ""
                return self.doc.tag_of(int(node_set[0]))
            return self.doc.tag_of(context_pre)
        if name == "string-length":
            if args:
                return float(len(self._to_string(args[0])))
            return float(len(self.doc.string_value(context_pre)))
        if name == "contains":
            if len(args) != 2:
                raise XPathEvaluationError("contains() expects two arguments")
            return self._to_string(args[1]) in self._to_string(args[0])
        if name == "starts-with":
            if len(args) != 2:
                raise XPathEvaluationError("starts-with() expects two arguments")
            return self._to_string(args[0]).startswith(self._to_string(args[1]))
        if name == "local-name":
            # No namespaces in this data model: local-name == name.
            return self._function(
                FunctionCall("name", call.args), context_pre, position, size
            )
        if name == "string":
            if args:
                return self._to_string(args[0])
            return self.doc.string_value(context_pre)
        if name == "number":
            if args:
                return self._to_number(args[0])
            return self._to_number(self.doc.string_value(context_pre))
        if name == "boolean":
            if len(args) != 1:
                raise XPathEvaluationError("boolean() expects one argument")
            return self._to_boolean(args[0])
        if name == "true":
            return True
        if name == "false":
            return False
        if name == "concat":
            if len(args) < 2:
                raise XPathEvaluationError("concat() expects two or more arguments")
            return "".join(self._to_string(a) for a in args)
        if name == "substring":
            if len(args) not in (2, 3):
                raise XPathEvaluationError("substring() expects two or three arguments")
            value = self._to_string(args[0])
            # XPath positions are 1-based and rounded; out-of-range is
            # clamped, NaN yields the empty string.
            start_number = self._to_number(args[1])
            if np.isnan(start_number):
                return ""
            start = int(round(start_number))
            if len(args) == 3:
                length_number = self._to_number(args[2])
                if np.isnan(length_number):
                    return ""
                end = start + int(round(length_number))
            else:
                end = len(value) + 1
            begin = max(1, start)
            return value[begin - 1 : max(begin - 1, end - 1)]
        if name == "substring-before":
            if len(args) != 2:
                raise XPathEvaluationError("substring-before() expects two arguments")
            value, marker = self._to_string(args[0]), self._to_string(args[1])
            index = value.find(marker)
            return value[:index] if index >= 0 else ""
        if name == "substring-after":
            if len(args) != 2:
                raise XPathEvaluationError("substring-after() expects two arguments")
            value, marker = self._to_string(args[0]), self._to_string(args[1])
            index = value.find(marker)
            return value[index + len(marker):] if index >= 0 else ""
        if name == "normalize-space":
            if args:
                value = self._to_string(args[0])
            else:
                value = self.doc.string_value(context_pre)
            return " ".join(value.split())
        if name == "sum":
            if len(args) != 1 or not isinstance(args[0], np.ndarray):
                raise XPathEvaluationError("sum() expects one node-set argument")
            return float(
                sum(self._to_number(self.doc.string_value(int(p))) for p in args[0])
            )
        if name == "floor":
            import math

            return float(math.floor(self._to_number(args[0])))
        if name == "ceiling":
            import math

            return float(math.ceil(self._to_number(args[0])))
        if name == "round":
            number = self._to_number(args[0])
            if np.isnan(number):
                return number
            import math

            return float(math.floor(number + 0.5))  # XPath rounds half up
        raise XPathEvaluationError(f"unknown function {name!r}")

    # -- coercions --------------------------------------------------------
    def _to_boolean(self, value) -> bool:
        if isinstance(value, np.ndarray):
            return len(value) > 0
        if isinstance(value, bool):
            return value
        if isinstance(value, float):
            return value != 0.0 and not np.isnan(value)
        if isinstance(value, str):
            return value != ""
        raise XPathEvaluationError(f"cannot coerce {type(value).__name__} to boolean")

    def _to_number(self, value) -> float:
        if isinstance(value, bool):
            return 1.0 if value else 0.0
        if isinstance(value, float):
            return value
        if isinstance(value, str):
            try:
                return float(value.strip())
            except ValueError:
                return float("nan")
        if isinstance(value, np.ndarray):
            return self._to_number(self._to_string(value))
        raise XPathEvaluationError(f"cannot coerce {type(value).__name__} to number")

    def _to_string(self, value) -> str:
        if isinstance(value, str):
            return value
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, float):
            if value == int(value):
                return str(int(value))
            return str(value)
        if isinstance(value, np.ndarray):
            if len(value) == 0:
                return ""
            return self.doc.string_value(int(value[0]))
        raise XPathEvaluationError(f"cannot coerce {type(value).__name__} to string")

    def _compare(self, op: str, left, right) -> bool:
        """XPath 1.0 comparison with existential node-set semantics."""
        if isinstance(left, np.ndarray) and isinstance(right, np.ndarray):
            left_values = {self.doc.string_value(int(p)) for p in left}
            right_values = {self.doc.string_value(int(p)) for p in right}
            return any(
                self._compare_scalar(op, lv, rv)
                for lv in left_values
                for rv in right_values
            )
        if isinstance(left, np.ndarray):
            return any(
                self._compare_scalar(op, self.doc.string_value(int(p)), right)
                for p in left
            )
        if isinstance(right, np.ndarray):
            return any(
                self._compare_scalar(op, left, self.doc.string_value(int(p)))
                for p in right
            )
        return self._compare_scalar(op, left, right)

    def _compare_scalar(self, op: str, left, right) -> bool:
        if op in ("<", "<=", ">", ">="):
            ln, rn = self._to_number(left), self._to_number(right)
            if np.isnan(ln) or np.isnan(rn):
                return False
            return {"<": ln < rn, "<=": ln <= rn, ">": ln > rn, ">=": ln >= rn}[op]
        # = / != : numbers if either side is numeric or boolean if either
        # side is boolean, else strings.
        if isinstance(left, bool) or isinstance(right, bool):
            lb, rb = self._to_boolean(left), self._to_boolean(right)
            return lb == rb if op == "=" else lb != rb
        if isinstance(left, float) or isinstance(right, float):
            ln, rn = self._to_number(left), self._to_number(right)
            if np.isnan(ln) or np.isnan(rn):
                return op == "!="
            return ln == rn if op == "=" else ln != rn
        ls, rs = self._to_string(left), self._to_string(right)
        return ls == rs if op == "=" else ls != rs


def evaluate(
    doc: DocTable,
    path: Union[str, LocationPath],
    context: Union[None, int, np.ndarray] = None,
    strategy: Optional[str] = None,
    mode: SkipMode = SkipMode.ESTIMATE,
    pushdown: bool = False,
    stats: Optional[JoinStatistics] = None,
    engine: Optional[str] = None,
    result_mode: str = "materialize",
) -> Union[np.ndarray, int, bool]:
    """One-shot convenience wrapper around :class:`Evaluator` (the
    return type follows ``result_mode``: ranks, a count, or a bool)."""
    evaluator = Evaluator(
        doc, strategy=strategy, mode=mode, pushdown=pushdown, stats=stats,
        engine=engine,
    )
    return evaluator.evaluate(path, context=context, mode=result_mode)
