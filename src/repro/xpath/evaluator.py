"""XPath evaluation over the accelerator (steps → staircase joins).

The evaluator walks a :class:`~repro.xpath.ast.LocationPath` step by step:
the node sequence output by step ``s_i`` is the context sequence for
``s_(i+1)`` (Section 2.1).  Every intermediate sequence is an ``int64``
array of preorder ranks — duplicate-free and document-ordered, because the
staircase join already guarantees both and the structural axes normalise.

Name-test pushdown (Experiment 3) is available per evaluator: steps of the
shape ``descendant::tag`` / ``ancestor::tag`` without predicates are then
executed against the per-tag fragment
(:class:`~repro.core.fragments.FragmentedDocument`), i.e. the name test is
applied *before* the join — ``staircasejoin(nametest(doc, n), cs)`` — which
is valid because pre/post-derived tree properties "remain valid for a
subset of nodes".

Predicates follow XPath 1.0 semantics: positional predicates see the axis
order (reverse for the reverse axes); value comparisons use existential
node-set semantics.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.counters import JoinStatistics
from repro.core.fragments import FragmentedDocument
from repro.core.staircase import SkipMode
from repro.encoding.doctable import DocTable
from repro.errors import XPathEvaluationError
from repro.xpath.ast import (
    BinaryExpr,
    Expr,
    FunctionCall,
    LocationPath,
    NumberLiteral,
    Step,
    StringLiteral,
)
from repro.xpath.axes import DOCUMENT_CONTEXT, AxisExecutor, apply_node_test
from repro.xpath.parser import parse_xpath

__all__ = ["Evaluator", "evaluate"]

_REVERSE_AXES = frozenset(
    ("ancestor", "ancestor-or-self", "preceding", "preceding-sibling", "parent")
)


def _uses_position(expr: Expr) -> bool:
    """Does ``expr`` depend on the context position/size?"""
    if isinstance(expr, NumberLiteral):
        return True  # a top-level number predicate is positional shorthand
    if isinstance(expr, FunctionCall):
        if expr.name in ("position", "last"):
            return True
        return any(_uses_position(a) for a in expr.args)
    if isinstance(expr, BinaryExpr):
        return _uses_position(expr.left) or _uses_position(expr.right)
    return False


def _is_positional_predicate(expr: Expr) -> bool:
    """Positional predicates compare against the context position.

    Besides explicit ``position()``/``last()`` uses, any predicate whose
    top-level value is numeric (a literal or a number-returning function
    like ``count``) is shorthand for ``position() = <number>`` per the
    XPath 1.0 rules, and therefore positional.
    """
    if _uses_position(expr):
        return True
    if isinstance(expr, FunctionCall):
        return expr.name in ("count", "string-length")
    return False


class Evaluator:
    """Evaluate XPath expressions against one encoded document.

    Parameters
    ----------
    doc:
        The encoded document.
    strategy:
        ``"staircase"`` (scalar Algorithms 2–4) or ``"vectorized"``
        (numpy bulk kernels) for the partitioning axes.
    mode:
        :class:`SkipMode` for the scalar staircase join.
    pushdown:
        Push name tests below descendant/ancestor staircase joins
        (Experiment 3's ~3× rewrite).  Fragments are built lazily on
        first use and cached for the evaluator's lifetime.
    stats:
        Shared :class:`JoinStatistics`; accumulates across queries.
    """

    def __init__(
        self,
        doc: DocTable,
        strategy: str = "staircase",
        mode: SkipMode = SkipMode.ESTIMATE,
        pushdown: bool = False,
        stats: Optional[JoinStatistics] = None,
    ):
        self.doc = doc
        self.stats = stats if stats is not None else JoinStatistics()
        self.axes = AxisExecutor(doc, strategy=strategy, mode=mode, stats=self.stats)
        self.pushdown = pushdown
        self._fragments: Optional[FragmentedDocument] = None

    # ------------------------------------------------------------------
    @property
    def fragments(self) -> FragmentedDocument:
        if self._fragments is None:
            self._fragments = FragmentedDocument(self.doc)
        return self._fragments

    # ------------------------------------------------------------------
    def evaluate(
        self,
        path: Union[str, LocationPath],
        context: Union[None, int, np.ndarray] = None,
    ) -> np.ndarray:
        """Evaluate ``path``; returns preorder ranks in document order.

        ``context`` seeds relative paths (default: the root element); it
        is ignored by absolute paths, which start at the virtual document
        node.
        """
        if isinstance(path, str):
            path = parse_xpath(path)
        if isinstance(path, BinaryExpr):
            if path.op != "|":
                raise XPathEvaluationError(
                    f"top-level expression must be a path or union, got {path.op!r}"
                )
            left = self.evaluate(path.left, context=context)
            right = self.evaluate(path.right, context=context)
            return np.union1d(left, right)
        if path.absolute:
            current = DOCUMENT_CONTEXT
        elif context is None:
            current = np.asarray([self.doc.root], dtype=np.int64)
        elif isinstance(context, (int, np.integer)):
            current = np.asarray([int(context)], dtype=np.int64)
        else:
            current = np.unique(np.asarray(context, dtype=np.int64))
        for step in path.steps:
            current = self._evaluate_step(current, step)
        if current is DOCUMENT_CONTEXT:
            # A bare "/" — the document node itself is not encoded.
            return np.empty(0, dtype=np.int64)
        return current

    # ------------------------------------------------------------------
    def _evaluate_step(self, context, step: Step) -> np.ndarray:
        positional = any(_is_positional_predicate(p) for p in step.predicates)
        if positional and context is not DOCUMENT_CONTEXT:
            # Positional semantics are per context node: evaluate the axis
            # for each node separately so position()/last() see the right
            # node list.
            pieces = []
            for c in np.asarray(context, dtype=np.int64):
                single = np.asarray([int(c)], dtype=np.int64)
                pieces.append(self._single_context_step(single, step))
            if not pieces:
                return np.empty(0, dtype=np.int64)
            merged = np.concatenate(pieces)
            return np.unique(merged)
        return self._single_context_step(context, step)

    def _single_context_step(self, context, step: Step) -> np.ndarray:
        candidates = self._axis_with_test(context, step)
        for predicate in step.predicates:
            candidates = self._filter_predicate(candidates, step.axis, predicate)
        return candidates

    def _axis_with_test(self, context, step: Step) -> np.ndarray:
        if (
            self.pushdown
            and context is DOCUMENT_CONTEXT
            and step.test.kind == "name"
            and step.axis in ("descendant", "descendant-or-self")
        ):
            # Every node descends from the document node: the pushed-down
            # name test *is* the step — read the fragment and be done.
            pres, _ = self.fragments.fragment(step.test.name or "")
            return pres
        if (
            self.pushdown
            and context is not DOCUMENT_CONTEXT
            and step.test.kind == "name"
            and step.axis in ("descendant", "ancestor")
        ):
            context_array = np.asarray(context, dtype=np.int64)
            if step.axis == "descendant":
                return self.fragments.descendant_step(
                    context_array, step.test.name or "", self.stats
                )
            return self.fragments.ancestor_step(
                context_array, step.test.name or "", self.stats
            )
        pres = self.axes.step(context, step.axis)
        return apply_node_test(
            self.doc, pres, step.axis, step.test.kind, step.test.name
        )

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def _filter_predicate(
        self, candidates: np.ndarray, axis: str, predicate: Expr
    ) -> np.ndarray:
        if len(candidates) == 0:
            return candidates
        ordered = candidates[::-1] if axis in _REVERSE_AXES else candidates
        size = len(ordered)
        kept = []
        for position, pre in enumerate(ordered, start=1):
            value = self._expr(predicate, int(pre), position, size)
            if isinstance(value, float):
                # Positional shorthand: [n] ⇔ [position() = n].  Float
                # comparison handles NaN/±inf/non-integers (all false).
                keep = value == float(position)
            else:
                keep = self._to_boolean(value)
            if keep:
                kept.append(int(pre))
        kept.sort()
        return np.asarray(kept, dtype=np.int64)

    # ------------------------------------------------------------------
    # Expression evaluation (XPath 1.0 core semantics)
    # ------------------------------------------------------------------
    def _expr(self, expr: Expr, context_pre: int, position: int, size: int):
        if isinstance(expr, NumberLiteral):
            return expr.value
        if isinstance(expr, StringLiteral):
            return expr.value
        if isinstance(expr, LocationPath):
            seed = None if expr.absolute else context_pre
            return self.evaluate(expr, context=seed)
        if isinstance(expr, FunctionCall):
            return self._function(expr, context_pre, position, size)
        if isinstance(expr, BinaryExpr):
            if expr.op == "or":
                left = self._to_boolean(self._expr(expr.left, context_pre, position, size))
                if left:
                    return True
                return self._to_boolean(self._expr(expr.right, context_pre, position, size))
            if expr.op == "and":
                left = self._to_boolean(self._expr(expr.left, context_pre, position, size))
                if not left:
                    return False
                return self._to_boolean(self._expr(expr.right, context_pre, position, size))
            left = self._expr(expr.left, context_pre, position, size)
            right = self._expr(expr.right, context_pre, position, size)
            if expr.op == "|":
                if not (isinstance(left, np.ndarray) and isinstance(right, np.ndarray)):
                    raise XPathEvaluationError("'|' requires node-set operands")
                return np.union1d(left, right)
            if expr.op in ("+", "-", "*", "div", "mod"):
                return self._arithmetic(expr.op, left, right)
            return self._compare(expr.op, left, right)
        raise XPathEvaluationError(f"cannot evaluate expression {expr!r}")

    def _arithmetic(self, op: str, left, right) -> float:
        """XPath 1.0 numeric operators (NaN-propagating)."""
        ln, rn = self._to_number(left), self._to_number(right)
        if np.isnan(ln) or np.isnan(rn):
            return float("nan")
        if op == "+":
            return ln + rn
        if op == "-":
            return ln - rn
        if op == "*":
            return ln * rn
        if op == "div":
            if rn == 0:
                return float("inf") if ln > 0 else float("-inf") if ln < 0 else float("nan")
            return ln / rn
        # mod: remainder with the sign of the dividend (math.fmod semantics)
        if rn == 0:
            return float("nan")
        import math

        return math.fmod(ln, rn)

    def _function(self, call: FunctionCall, context_pre: int, position: int, size: int):
        name = call.name
        args = [self._expr(a, context_pre, position, size) for a in call.args]
        if name == "position":
            return float(position)
        if name == "last":
            return float(size)
        if name == "count":
            if len(args) != 1 or not isinstance(args[0], np.ndarray):
                raise XPathEvaluationError("count() expects one node-set argument")
            return float(len(args[0]))
        if name == "not":
            if len(args) != 1:
                raise XPathEvaluationError("not() expects one argument")
            return not self._to_boolean(args[0])
        if name == "name":
            if args:
                node_set = args[0]
                if not isinstance(node_set, np.ndarray):
                    raise XPathEvaluationError("name() expects a node-set argument")
                if len(node_set) == 0:
                    return ""
                return self.doc.tag_of(int(node_set[0]))
            return self.doc.tag_of(context_pre)
        if name == "string-length":
            if args:
                return float(len(self._to_string(args[0])))
            return float(len(self.doc.string_value(context_pre)))
        if name == "contains":
            if len(args) != 2:
                raise XPathEvaluationError("contains() expects two arguments")
            return self._to_string(args[1]) in self._to_string(args[0])
        if name == "starts-with":
            if len(args) != 2:
                raise XPathEvaluationError("starts-with() expects two arguments")
            return self._to_string(args[0]).startswith(self._to_string(args[1]))
        if name == "local-name":
            # No namespaces in this data model: local-name == name.
            return self._function(
                FunctionCall("name", call.args), context_pre, position, size
            )
        if name == "string":
            if args:
                return self._to_string(args[0])
            return self.doc.string_value(context_pre)
        if name == "number":
            if args:
                return self._to_number(args[0])
            return self._to_number(self.doc.string_value(context_pre))
        if name == "boolean":
            if len(args) != 1:
                raise XPathEvaluationError("boolean() expects one argument")
            return self._to_boolean(args[0])
        if name == "true":
            return True
        if name == "false":
            return False
        if name == "concat":
            if len(args) < 2:
                raise XPathEvaluationError("concat() expects two or more arguments")
            return "".join(self._to_string(a) for a in args)
        if name == "substring":
            if len(args) not in (2, 3):
                raise XPathEvaluationError("substring() expects two or three arguments")
            value = self._to_string(args[0])
            # XPath positions are 1-based and rounded; out-of-range is
            # clamped, NaN yields the empty string.
            start_number = self._to_number(args[1])
            if np.isnan(start_number):
                return ""
            start = int(round(start_number))
            if len(args) == 3:
                length_number = self._to_number(args[2])
                if np.isnan(length_number):
                    return ""
                end = start + int(round(length_number))
            else:
                end = len(value) + 1
            begin = max(1, start)
            return value[begin - 1 : max(begin - 1, end - 1)]
        if name == "substring-before":
            if len(args) != 2:
                raise XPathEvaluationError("substring-before() expects two arguments")
            value, marker = self._to_string(args[0]), self._to_string(args[1])
            index = value.find(marker)
            return value[:index] if index >= 0 else ""
        if name == "substring-after":
            if len(args) != 2:
                raise XPathEvaluationError("substring-after() expects two arguments")
            value, marker = self._to_string(args[0]), self._to_string(args[1])
            index = value.find(marker)
            return value[index + len(marker):] if index >= 0 else ""
        if name == "normalize-space":
            if args:
                value = self._to_string(args[0])
            else:
                value = self.doc.string_value(context_pre)
            return " ".join(value.split())
        if name == "sum":
            if len(args) != 1 or not isinstance(args[0], np.ndarray):
                raise XPathEvaluationError("sum() expects one node-set argument")
            return float(
                sum(self._to_number(self.doc.string_value(int(p))) for p in args[0])
            )
        if name == "floor":
            import math

            return float(math.floor(self._to_number(args[0])))
        if name == "ceiling":
            import math

            return float(math.ceil(self._to_number(args[0])))
        if name == "round":
            number = self._to_number(args[0])
            if np.isnan(number):
                return number
            import math

            return float(math.floor(number + 0.5))  # XPath rounds half up
        raise XPathEvaluationError(f"unknown function {name!r}")

    # -- coercions --------------------------------------------------------
    def _to_boolean(self, value) -> bool:
        if isinstance(value, np.ndarray):
            return len(value) > 0
        if isinstance(value, bool):
            return value
        if isinstance(value, float):
            return value != 0.0 and not np.isnan(value)
        if isinstance(value, str):
            return value != ""
        raise XPathEvaluationError(f"cannot coerce {type(value).__name__} to boolean")

    def _to_number(self, value) -> float:
        if isinstance(value, bool):
            return 1.0 if value else 0.0
        if isinstance(value, float):
            return value
        if isinstance(value, str):
            try:
                return float(value.strip())
            except ValueError:
                return float("nan")
        if isinstance(value, np.ndarray):
            return self._to_number(self._to_string(value))
        raise XPathEvaluationError(f"cannot coerce {type(value).__name__} to number")

    def _to_string(self, value) -> str:
        if isinstance(value, str):
            return value
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, float):
            if value == int(value):
                return str(int(value))
            return str(value)
        if isinstance(value, np.ndarray):
            if len(value) == 0:
                return ""
            return self.doc.string_value(int(value[0]))
        raise XPathEvaluationError(f"cannot coerce {type(value).__name__} to string")

    def _compare(self, op: str, left, right) -> bool:
        """XPath 1.0 comparison with existential node-set semantics."""
        if isinstance(left, np.ndarray) and isinstance(right, np.ndarray):
            left_values = {self.doc.string_value(int(p)) for p in left}
            right_values = {self.doc.string_value(int(p)) for p in right}
            return any(
                self._compare_scalar(op, lv, rv)
                for lv in left_values
                for rv in right_values
            )
        if isinstance(left, np.ndarray):
            return any(
                self._compare_scalar(op, self.doc.string_value(int(p)), right)
                for p in left
            )
        if isinstance(right, np.ndarray):
            return any(
                self._compare_scalar(op, left, self.doc.string_value(int(p)))
                for p in right
            )
        return self._compare_scalar(op, left, right)

    def _compare_scalar(self, op: str, left, right) -> bool:
        if op in ("<", "<=", ">", ">="):
            ln, rn = self._to_number(left), self._to_number(right)
            if np.isnan(ln) or np.isnan(rn):
                return False
            return {"<": ln < rn, "<=": ln <= rn, ">": ln > rn, ">=": ln >= rn}[op]
        # = / != : numbers if either side is numeric or boolean if either
        # side is boolean, else strings.
        if isinstance(left, bool) or isinstance(right, bool):
            lb, rb = self._to_boolean(left), self._to_boolean(right)
            return lb == rb if op == "=" else lb != rb
        if isinstance(left, float) or isinstance(right, float):
            ln, rn = self._to_number(left), self._to_number(right)
            if np.isnan(ln) or np.isnan(rn):
                return op == "!="
            return ln == rn if op == "=" else ln != rn
        ls, rs = self._to_string(left), self._to_string(right)
        return ls == rs if op == "=" else ls != rs


def evaluate(
    doc: DocTable,
    path: Union[str, LocationPath],
    context: Union[None, int, np.ndarray] = None,
    strategy: str = "staircase",
    mode: SkipMode = SkipMode.ESTIMATE,
    pushdown: bool = False,
    stats: Optional[JoinStatistics] = None,
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`Evaluator`."""
    evaluator = Evaluator(
        doc, strategy=strategy, mode=mode, pushdown=pushdown, stats=stats
    )
    return evaluator.evaluate(path, context=context)
