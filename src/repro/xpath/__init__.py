"""XPath subset: parsing and evaluation over the XPath accelerator.

The layer that turns path expressions like the paper's

* Q1 — ``/descendant::profile/descendant::education``
* Q2 — ``/descendant::increase/ancestor::bidder``

into sequences of axis steps executed by the staircase join (or, for
comparison, by the tree-unaware baselines).  Supported: the XPath axes
(``namespace`` excepted — the data model here has no namespace nodes),
name and kind tests, abbreviated syntax (``//``, ``@``, ``.``, ``..``),
and predicates with positions, comparisons, paths and the core functions
(``position``, ``last``, ``count``, ``not``, ``name``).

>>> from repro import xpath, xmark
>>> doc = xmark.generate_table(0.1)
>>> education = xpath.evaluate(doc, "/descendant::profile/descendant::education")
"""

from repro.xpath.ast import AXES, LocationPath, NodeTest, Step
from repro.xpath.evaluator import Evaluator, evaluate
from repro.xpath.parser import parse_xpath
from repro.xpath.pipeline import MODES, PhysicalPlan, compile_plan, drive
from repro.xpath.planner import Planner, QueryPlan, TagStatistics
from repro.xpath.rewrite import push_name_test, symmetry_rewrite

__all__ = [
    "LocationPath",
    "Step",
    "NodeTest",
    "AXES",
    "MODES",
    "parse_xpath",
    "Evaluator",
    "evaluate",
    "compile_plan",
    "drive",
    "PhysicalPlan",
    "Planner",
    "QueryPlan",
    "TagStatistics",
    "push_name_test",
    "symmetry_rewrite",
]
