"""XPath rewriting laws used in the paper's experiments.

Two rewrites appear in Section 4.4:

* **Name-test pushdown** (Experiment 3): ``cs/ancestor::n`` evaluated as
  ``staircasejoin_anc(nametest(doc, n), cs)`` instead of
  ``nametest(staircasejoin_anc(doc, cs), n)``.  Valid because the tree
  properties staircase join relies on are "entirely based on preorder and
  postorder ranks [and] remain valid for a subset of nodes".  In this
  repository pushdown is an :class:`~repro.xpath.evaluator.Evaluator`
  option; :func:`push_name_test` reports *where* it applies, which the
  planner and the benchmarks use.

* **Symmetry rewrite** [Olteanu et al. 2001]: the paper ran the DB2
  comparison for Q2 on the manually rewritten
  ``/descendant::bidder[descendant::increase]`` because the tree-unaware
  optimiser mis-planned ``/descendant::increase/ancestor::bidder``.
  :func:`symmetry_rewrite` implements exactly this law — a trailing
  ``ancestor::n`` step becomes a name-tested descendant step with an
  existential ``descendant`` predicate.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

from repro.xpath.ast import LocationPath, NodeTest, Step
from repro.xpath.parser import parse_xpath

__all__ = [
    "collapse_descendant_or_self",
    "push_name_test",
    "pushdown_opportunities",
    "symmetry_rewrite",
]


def pushdown_opportunities(path: LocationPath) -> List[int]:
    """Indices of steps where a name test can be pushed below the join.

    A step qualifies when it walks ``descendant`` or ``ancestor`` with a
    plain name test and no predicates — the exact shape of the paper's
    Experiment 3 steps.
    """
    return [
        index
        for index, step in enumerate(path.steps)
        if step.axis in ("descendant", "ancestor")
        and step.test.kind == "name"
        and not step.predicates
    ]


def push_name_test(path: LocationPath) -> Tuple[LocationPath, List[int]]:
    """Return ``path`` plus the step indices eligible for pushdown.

    The AST itself is unchanged (pushdown is an execution-strategy
    decision, not a syntactic one); callers enable it by constructing an
    evaluator with ``pushdown=True``.  Returning the opportunity list
    keeps plan explanations honest: "pushdown makes sense for selective
    name tests only" (Section 4.4) — an empty list means the evaluator
    flag would change nothing.
    """
    return path, pushdown_opportunities(path)


def collapse_descendant_or_self(
    path, root_tags: Optional[FrozenSet[str]] = None
) -> LocationPath:
    """Collapse ``descendant-or-self::node()/child::t`` pairs into
    ``descendant::t`` (the expansion of the ``//`` abbreviation).

    ``c/descendant-or-self::node()/child::t`` selects the children of
    ``c``'s inclusive descendants — exactly ``c``'s proper descendants
    passing the test — so the pair is one descendant step.  The single
    step skips an O(n) intermediate *and* has the shape name-test
    pushdown accepts, which is why the planner applies this before
    costing steps.

    Two guards keep the law exact:

    * a ``child`` step carrying a positional predicate keeps its pair —
      ``//t[2]`` counts positions within each parent's child list,
      ``descendant::t[2]`` within a descendant list;
    * the *leading* pair of an absolute path is collapsed only when the
      tested name provably cannot match a plane root: this engine's
      ``descendant-or-self`` from the (un-encoded) document node yields
      encoded nodes only, so ``//t`` never returns the root element,
      while ``/descendant::t`` would.  ``root_tags`` names the tags a
      root may carry (e.g. a collection's virtual root tag); ``None``
      means unknown, which disables the leading collapse entirely.
    """
    from repro.xpath.pipeline import (
        is_positional_predicate as _is_positional_predicate,
    )

    if isinstance(path, str):
        path = parse_xpath(path)
    if not isinstance(path, LocationPath):
        return path
    steps = list(path.steps)
    index = 0
    changed = False
    while index < len(steps) - 1:
        first, second = steps[index], steps[index + 1]
        collapsible = (
            first.axis == "descendant-or-self"
            and first.test.kind == "node"
            and not first.predicates
            and second.axis == "child"
            and not any(_is_positional_predicate(p) for p in second.predicates)
        )
        if collapsible and index == 0 and path.absolute:
            collapsible = (
                root_tags is not None
                and second.test.kind == "name"
                and second.test.name not in root_tags
            )
        if collapsible:
            steps[index : index + 2] = [
                Step("descendant", second.test, second.predicates)
            ]
            changed = True
        else:
            index += 1
    if not changed:
        return path
    return LocationPath(path.absolute, tuple(steps))


def symmetry_rewrite(path) -> LocationPath:
    """Rewrite a trailing ``.../descendant::m/ancestor::n`` pair.

    ``cs/descendant::m/ancestor::n`` is equivalent to
    ``cs/descendant-or-self::node()/child::n[descendant::m]`` restricted
    to descendants of ``cs`` — for the paper's absolute Q2,
    ``/descendant::increase/ancestor::bidder`` becomes
    ``/descendant::bidder[descendant::increase]``.

    The law implemented here covers the absolute two-step shape the paper
    used (and the test suite verifies the equivalence on random
    documents); other shapes are returned unchanged.
    """
    if isinstance(path, str):
        path = parse_xpath(path)
    steps = path.steps
    # Only the absolute two-step shape: with a longer prefix the ancestor
    # step may climb above the prefix context, where the rewritten
    # descendant step would not look.
    if len(steps) != 2 or not path.absolute:
        return path
    desc_step = steps[-2]
    anc_step = steps[-1]
    if not (
        desc_step.axis == "descendant"
        and desc_step.test.kind == "name"
        and not desc_step.predicates
        and anc_step.axis == "ancestor"
        and anc_step.test.kind == "name"
        and not anc_step.predicates
    ):
        return path
    predicate = LocationPath(
        False, (Step("descendant", NodeTest("name", desc_step.test.name)),)
    )
    rewritten_last = Step(
        "descendant", NodeTest("name", anc_step.test.name), (predicate,)
    )
    return LocationPath(path.absolute, steps[:-2] + (rewritten_last,))
