"""Tokeniser for the XPath subset.

A hand-written scanner producing a flat token list; the parser consumes it
with one-token lookahead.  Token types:

``NAME``, ``NUMBER``, ``STRING``, ``AXIS`` (a name directly followed by
``::``), and the punctuation/operator tokens spelled literally (``/``,
``//``, ``[``, ``]``, ``(``, ``)``, ``@``, ``.``, ``..``, ``*``, ``,``,
``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=``, ``|``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import XPathSyntaxError

__all__ = ["Token", "tokenize"]

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CHARS = _NAME_START | set("0123456789.-")
_TWO_CHAR = ("//", "..", "!=", "<=", ">=", "::")
_ONE_CHAR = set("/[]()@.*,=<>|+-")


@dataclass(frozen=True)
class Token:
    type: str  # "NAME" | "NUMBER" | "STRING" | literal spelling | "EOF"
    value: str
    position: int


def tokenize(expression: str) -> List[Token]:
    """Scan ``expression`` into tokens (with a trailing ``EOF`` token)."""
    tokens: List[Token] = []
    i = 0
    n = len(expression)
    while i < n:
        ch = expression[i]
        if ch.isspace():
            i += 1
            continue
        # String literals
        if ch in ("'", '"'):
            end = expression.find(ch, i + 1)
            if end < 0:
                raise XPathSyntaxError("unterminated string literal", i, expression)
            tokens.append(Token("STRING", expression[i + 1 : end], i))
            i = end + 1
            continue
        # Numbers
        if ch.isdigit():
            start = i
            while i < n and expression[i].isdigit():
                i += 1
            if i < n and expression[i] == "." and i + 1 < n and expression[i + 1].isdigit():
                i += 1
                while i < n and expression[i].isdigit():
                    i += 1
            tokens.append(Token("NUMBER", expression[start:i], start))
            continue
        # Names (axes, tags, functions, operators 'and'/'or')
        if ch in _NAME_START:
            start = i
            while i < n and expression[i] in _NAME_CHARS:
                i += 1
            name = expression[start:i]
            # A name with a trailing '.' or '-' that is really punctuation
            # cannot occur in our grammar, so greedy scanning is safe.
            if expression.startswith("::", i):
                tokens.append(Token("AXIS", name, start))
                i += 2
            else:
                tokens.append(Token("NAME", name, start))
            continue
        # Two-character operators
        two = expression[i : i + 2]
        if two in _TWO_CHAR:
            if two == "::":
                raise XPathSyntaxError("'::' without an axis name", i, expression)
            tokens.append(Token(two, two, i))
            i += 2
            continue
        if ch in _ONE_CHAR:
            tokens.append(Token(ch, ch, i))
            i += 1
            continue
        raise XPathSyntaxError(f"unexpected character {ch!r}", i, expression)
    tokens.append(Token("EOF", "", n))
    return tokens
