"""Cost-based query planning from per-tag catalogue statistics.

The paper leaves planning as future work — "future research on a cost
model is intended to let the system intelligently decide for or against
name test pushdown or similar rewrites" (Section 4.4) — and observes
that its own rewrite laws pay off only conditionally: "pushdown makes
sense for selective name tests only", and the symmetry rewrite of
[Olteanu et al. 2001] was applied *manually* to keep DB2's tree-unaware
optimizer from mis-planning Q2.  This module is that missing decision
layer, in the classical System-R shape: catalogue statistics in, costed
plan out.

* :class:`TagStatistics` — the catalogue: per-tag element cardinalities
  (``np.bincount`` histograms computed once per plane, persisted per
  shard by :class:`~repro.service.store.ShardedStore`), total node
  count, and tree height.
* :class:`Planner` — turns a parsed AST into a :class:`QueryPlan`:
  applies :func:`~repro.xpath.rewrite.symmetry_rewrite` when the model
  prices the rewritten shape cheaper, decides name-test pushdown per
  eligible step, orders non-positional predicates cheapest-first,
  and picks the scalar staircase :class:`SkipMode`.
* :class:`QueryPlan` — the costed result: the (possibly rewritten)
  path, the per-step pushdown verdicts the evaluator honours, per-step
  cardinality estimates, and :meth:`QueryPlan.describe` — the text the
  ``explain`` CLI verb prints.

Every decision is *result-invariant*: a plan changes how a query runs,
never what it returns (the hypothesis equivalence tests pin this down
on random forests, both engines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple, Union

from repro.core.staircase import SkipMode
from repro.feedback.records import predicate_signature, step_signature
from repro.xpath.ast import (
    BinaryExpr,
    Expr,
    FunctionCall,
    LocationPath,
    NumberLiteral,
    Step,
    StringLiteral,
)
from repro.xpath.axes import resolve_engine
from repro.xpath.parser import parse_xpath
from repro.xpath.pipeline import (
    is_positional_predicate as _is_positional_predicate,
    operator_name,
)
from repro.xpath.rewrite import collapse_descendant_or_self, symmetry_rewrite

__all__ = ["TagStatistics", "Planner", "QueryPlan", "StepDecision"]


class TagStatistics:
    """The planner's catalogue: what an RDBMS would keep about a corpus.

    ``counts`` maps tag name → element cardinality, ``total_nodes`` is
    the encoded node count (all kinds), ``height`` the tree height.
    ``root_tags`` names the tags a plane root may carry (needed by the
    ``//``-collapse law's leading-pair guard; ``None`` = unknown).
    Build one from a live table (:meth:`from_doc`), from a sharded
    store's persisted manifest statistics (:meth:`from_store` — no
    shard I/O), or from a plain mapping.
    """

    def __init__(
        self,
        counts: Mapping[str, int],
        total_nodes: int,
        height: int,
        root_tags: Optional[FrozenSet[str]] = None,
    ):
        self.counts: Dict[str, int] = dict(counts)
        self.total_nodes = max(1, int(total_nodes))
        self.height = max(1, int(height))
        self.root_tags = root_tags

    @classmethod
    def from_doc(cls, doc) -> "TagStatistics":
        """Statistics of one encoded :class:`DocTable` (O(n) once)."""
        return cls(
            doc.tag_statistics(),
            len(doc),
            doc.height,
            root_tags=frozenset((doc.tag_of(doc.root),)),
        )

    @classmethod
    def from_collection(cls, collection) -> "TagStatistics":
        return cls.from_doc(collection.doc)

    @classmethod
    def from_store(cls, store) -> "TagStatistics":
        """Aggregate statistics of a sharded store, read from its
        manifest (kept exact through ``apply_updates``)."""
        return cls(
            store.tag_statistics(),
            store.total_nodes(),
            store.height(),
            root_tags=frozenset((store.virtual_root_tag,)),
        )

    # ------------------------------------------------------------------
    def count(self, tag: Optional[str]) -> int:
        """Element cardinality of ``tag`` (0 for absent tags)."""
        return self.counts.get(tag or "", 0)

    def selectivity(self, tag: Optional[str]) -> float:
        """Fraction of all nodes a name test on ``tag`` retains."""
        return self.count(tag) / self.total_nodes

    def branching(self) -> float:
        """Estimated branching factor ``b`` with ``b^height ≈ n``."""
        return max(2.0, self.total_nodes ** (1.0 / self.height))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TagStatistics(tags={len(self.counts)}, "
            f"nodes={self.total_nodes}, height={self.height})"
        )


@dataclass(frozen=True)
class StepDecision:
    """The planner's verdict and estimates for one top-level step."""

    index: int
    step: Step
    pushdown: bool
    est_in: float       #: estimated context cardinality
    est_out: float      #: estimated step output cardinality
    cost: float         #: estimated node touches of the chosen variant
    cost_alternative: Optional[float]  #: the rejected variant (if any)
    reason: str = "cost model"  #: "cost model" or "forced"
    notes: Tuple[str, ...] = ()


@dataclass(frozen=True)
class QueryPlan:
    """A costed, executable plan for one query.

    ``path`` is the expression the engines run (rewritten predicates
    re-ordered, symmetry law applied when priced cheaper); ``original``
    is what the user wrote.  ``pushdown_steps`` holds the indices of
    top-level steps whose name test runs below the join — the exact
    value :class:`~repro.xpath.evaluator.Evaluator` accepts as its
    ``pushdown`` argument.  Plans are immutable and picklable, so the
    service ships them to shard workers as-is.
    """

    query: str
    original: Expr
    path: Expr
    engine: str
    skip_mode: SkipMode
    pushdown_steps: frozenset
    rewrites: Tuple[str, ...]
    steps: Tuple[StepDecision, ...]
    estimated_cost: float

    @property
    def rewritten(self) -> bool:
        return self.path is not self.original

    def describe(self) -> str:
        """The multi-line ``explain`` rendering of this plan."""
        lines = [f"XPath: {self.original}"]
        lines.append(f"engine: {self.engine}; scalar skip mode: {self.skip_mode.value}")
        for rewrite in self.rewrites:
            lines.append(f"rewrite: {rewrite}")
        if not self.rewrites:
            lines.append("rewrite: none applicable")
        if not isinstance(self.path, LocationPath):
            lines.append("plan: union of sub-plans (each branch planned alone)")
        for decision in self.steps:
            lines.append(f"step {decision.index + 1}: {decision.step}")
            placement = (
                "PUSHDOWN (fragment scan)" if decision.pushdown else "after the join"
            )
            if decision.cost_alternative is not None:
                lines.append(
                    f"  name test   : {placement} "
                    f"[{decision.reason}; est. {decision.cost:,.0f} vs "
                    f"{decision.cost_alternative:,.0f} node touches]"
                )
            for note in decision.notes:
                lines.append(f"  {note}")
            lines.append(
                f"  cardinality : in ≈ {decision.est_in:,.0f}, "
                f"out ≈ {decision.est_out:,.0f}"
            )
        lines.append(f"est. total cost: ≈ {self.estimated_cost:,.0f} node touches")
        return "\n".join(lines)


class Planner:
    """Plan queries against one statistics catalogue.

    Parameters
    ----------
    statistics:
        The :class:`TagStatistics` of the corpus the plans will run on.
    engine:
        Execution engine the costs are modelled for (the two engines
        price predicate evaluation very differently).
    rewrite:
        Allow the rewrite laws (on by default; the cost model still has
        to price the rewritten shape cheaper for it to apply).
    pushdown:
        ``"auto"`` (the cost model decides per step) or a forced
        ``True``/``False`` for every eligible step — the ``explain``
        CLI's ablation switch; costs are estimated either way.
    feedback:
        An optional :class:`~repro.feedback.store.FeedbackStore`.  When
        given, observed per-signature selectivities are *blended* over
        the static histogram estimates with weight ``n / (n + K)``
        (``K`` = :data:`FEEDBACK_BLEND_K`): a handful of sampled drives
        nudges an estimate, a steady stream of them dominates it.  The
        blend corrects step cardinalities (and therefore every
        downstream pushdown verdict) and re-orders non-positional
        predicates by observed effectiveness — the query *results*
        remain byte-identical by construction.

    The planner is stateless apart from its catalogue and the (locked)
    feedback store it reads — plan objects are immutable, so one
    planner may serve many threads.
    """

    #: Relative cost of one index probe (fragment binary search) vs one
    #: sequential node touch, per engine: the vectorised engine batches
    #: all probes into one ``searchsorted`` call, the scalar engine pays
    #: interpreter dispatch per probe.
    PROBE_WEIGHTS = {"vectorized": 1.0, "scalar": 2.0}
    #: Scalar-engine overhead of one per-candidate predicate
    #: sub-evaluation, in node-touch equivalents (interpreter dispatch,
    #: context setup) — why the scalar engine hates existence rewrites
    #: on dense candidate sets.
    PREDICATE_EVAL_WEIGHT = 64.0
    #: A rewrite must be priced below ``margin × cost(original)`` to be
    #: applied — decisions near the break-even point stay with the
    #: shape the user wrote.
    REWRITE_MARGIN = 0.7
    #: Ancestor paths share ancestors heavily (Experiment 1 saw ~75 %
    #: sharing); the climb touches this fraction of ``|context| × h``.
    ANCESTOR_SHARING = 0.25
    #: Below this plane size the scalar staircase join runs without
    #: skipping — Algorithm 4's estimate bookkeeping costs more than
    #: the short scans it avoids.
    SMALL_PLANE = 512
    #: Feedback blend half-weight: an observed selectivity with ``n``
    #: samples carries weight ``n / (n + K)`` against the static
    #: estimate, so K samples split the difference and ~5K observations
    #: all but replace the histogram guess.
    FEEDBACK_BLEND_K = 4.0
    #: Static per-predicate retention guess (the pre-feedback constant).
    STATIC_PREDICATE_SELECTIVITY = 0.5

    def __init__(
        self,
        statistics: TagStatistics,
        engine: str = "vectorized",
        rewrite: bool = True,
        pushdown: Union[str, bool] = "auto",
        feedback=None,
    ):
        self.statistics = statistics
        self.engine = resolve_engine(engine)
        self.rewrite = rewrite
        self.pushdown = pushdown
        self.feedback = feedback
        self.probe_weight = self.PROBE_WEIGHTS[self.engine]

    # ------------------------------------------------------------------
    def plan(
        self, path: Union[str, Expr], context_size: int = 1
    ) -> QueryPlan:
        """Produce a :class:`QueryPlan` for ``path``.

        ``context_size`` seeds the cardinality estimate for relative
        paths (absolute paths anchor at the document node).
        """
        query = path if isinstance(path, str) else str(path)
        original = parse_xpath(path) if isinstance(path, str) else path
        if isinstance(original, BinaryExpr):
            # Top-level unions: plan each branch independently.  Both
            # branches walk the same step-index space inside one
            # evaluator, so per-step pushdown indices would collide —
            # branches are planned with pushdown forced off and the
            # union runs on rewrites alone.
            branch_planner = (
                self
                if self.pushdown is False
                else Planner(
                    self.statistics,
                    self.engine,
                    self.rewrite,
                    pushdown=False,
                    feedback=self.feedback,
                )
            )
            left = branch_planner.plan(original.left, context_size)
            right = branch_planner.plan(original.right, context_size)
            return QueryPlan(
                query=query,
                original=original,
                path=(
                    original
                    if not (left.rewritten or right.rewritten)
                    else BinaryExpr(original.op, left.path, right.path)
                ),
                engine=self.engine,
                skip_mode=self._skip_mode(),
                pushdown_steps=frozenset(),
                rewrites=left.rewrites + right.rewrites,
                steps=left.steps + right.steps,
                estimated_cost=left.estimated_cost + right.estimated_cost,
            )
        if not isinstance(original, LocationPath):
            return QueryPlan(
                query=query,
                original=original,
                path=original,
                engine=self.engine,
                skip_mode=self._skip_mode(),
                pushdown_steps=frozenset(),
                rewrites=(),
                steps=(),
                estimated_cost=float(self.statistics.total_nodes),
            )

        path_expr, rewrites = self._collapse(original)
        path_expr, symmetry = self._apply_symmetry(path_expr, context_size)
        rewrites += symmetry
        path_expr = self._order_predicates(path_expr)
        decisions = self._decide_steps(path_expr, context_size)
        pushdown = frozenset(d.index for d in decisions if d.pushdown)
        return QueryPlan(
            query=query,
            original=original,
            path=path_expr if rewrites or path_expr != original else original,
            engine=self.engine,
            skip_mode=self._skip_mode(),
            pushdown_steps=pushdown,
            rewrites=tuple(rewrites),
            steps=tuple(decisions),
            estimated_cost=sum(d.cost for d in decisions)
            or float(self.statistics.total_nodes),
        )

    # ------------------------------------------------------------------
    # Skip mode
    # ------------------------------------------------------------------
    def _skip_mode(self) -> SkipMode:
        """Scalar staircase skip mode for this corpus size.

        Algorithm 4 (pre/post estimate) wins on anything sizeable; on a
        tiny plane the whole partition fits in a few cache lines and
        plain scans (Algorithm 2) beat the bookkeeping.
        """
        if self.statistics.total_nodes < self.SMALL_PLANE:
            return SkipMode.NONE
        return SkipMode.ESTIMATE

    # ------------------------------------------------------------------
    # Rewrite decisions
    # ------------------------------------------------------------------
    def _collapse(self, path: LocationPath) -> Tuple[LocationPath, List[str]]:
        """``descendant-or-self::node()/child::t`` → ``descendant::t``.

        Unconditional when the shape is safe (see the law's guards): a
        descendant step is never costlier than the pair it replaces and
        unlocks fragment pushdown for the ``//t`` abbreviation.
        """
        if not self.rewrite:
            return path, []
        collapsed = collapse_descendant_or_self(
            path, self.statistics.root_tags
        )
        if collapsed is path:
            return path, []
        dropped = len(path.steps) - len(collapsed.steps)
        return collapsed, [
            f"//-collapse → {collapsed} ({dropped} descendant-or-self "
            f"step{'s' if dropped > 1 else ''} fused away)"
        ]

    def _apply_symmetry(
        self, path: LocationPath, context_size: int
    ) -> Tuple[LocationPath, List[str]]:
        candidate = symmetry_rewrite(path)
        if candidate is path or candidate == path or not self.rewrite:
            return path, []
        cost_original = self._path_cost(path, context_size)
        cost_rewritten = self._path_cost(candidate, context_size)
        if cost_rewritten < self.REWRITE_MARGIN * cost_original:
            return candidate, [
                f"symmetry [Olteanu et al. 2001] → {candidate} "
                f"(est. {cost_rewritten:,.0f} vs {cost_original:,.0f} touches)"
            ]
        return path, []

    def _path_cost(self, path: LocationPath, context_size: int) -> float:
        """Total estimated cost of a path (used to price rewrites)."""
        return sum(d.cost for d in self._decide_steps(path, context_size))

    # ------------------------------------------------------------------
    # Predicate ordering
    # ------------------------------------------------------------------
    def _order_predicates(self, path: LocationPath) -> LocationPath:
        """Sort each step's predicates by rank (cost over drop rate).

        Non-positional predicates are pure per-node filters, so they
        commute; a step carrying *any* positional predicate keeps its
        order (positions re-index between predicates).  The classical
        optimal order for commuting filters is ascending
        ``cost / (1 - selectivity)``; with no feedback every selectivity
        is the static 0.5, so the rank degenerates to plain cost and the
        historical ordering is reproduced exactly.
        """
        changed = False
        steps = []
        for step in path.steps:
            if len(step.predicates) > 1 and not any(
                _is_positional_predicate(p) for p in step.predicates
            ):
                axis = step.axis
                ordered = tuple(
                    sorted(
                        step.predicates,
                        key=lambda p: self._predicate_rank(axis, p),
                    )
                )
                if ordered != step.predicates:
                    step = Step(step.axis, step.test, ordered)
                    changed = True
            steps.append(step)
        if not changed:
            return path
        return LocationPath(path.absolute, tuple(steps))

    # -- feedback blending ----------------------------------------------
    def _observed(self, signature) -> Optional[Tuple[float, int]]:
        """Observed (ratio, samples) for a signature, if any feedback."""
        if self.feedback is None:
            return None
        return self.feedback.observed(signature)

    def _blend(self, static: float, observed: Optional[Tuple[float, int]]) -> float:
        """Blend a static estimate with an observed one at weight
        ``n / (n + K)`` — few samples nudge, many dominate."""
        if observed is None:
            return static
        ratio, n = observed
        w = n / (n + self.FEEDBACK_BLEND_K)
        return (1.0 - w) * static + w * ratio

    def _predicate_selectivity(self, axis: str, predicate: Expr) -> float:
        """Fraction of candidates one predicate retains (blended)."""
        observed = self._observed(predicate_signature(axis, predicate))
        sel = self._blend(self.STATIC_PREDICATE_SELECTIVITY, observed)
        return min(1.0, max(0.0, sel))

    def _predicate_rank(self, axis: str, predicate: Expr) -> float:
        """Ordering key: cost per unit of candidates dropped."""
        drop = 1.0 - self._predicate_selectivity(axis, predicate)
        return self._predicate_cost(predicate) / max(0.05, drop)

    def _predicate_cost(self, predicate: Expr) -> float:
        """Relative evaluation cost of one predicate (ordering key).

        A cheap *and* selective predicate first shrinks the candidate
        set before the expensive ones run; rarity of the tested tag is
        the dominant signal for both.
        """
        stats = self.statistics
        if isinstance(predicate, LocationPath):
            if not predicate.steps:
                return float(stats.total_nodes)
            last = predicate.steps[-1]
            base = (
                float(stats.count(last.test.name))
                if last.test.kind == "name"
                else float(stats.total_nodes)
            )
            return base + len(predicate.steps)
        if isinstance(predicate, FunctionCall):
            inner = sum(self._predicate_cost(a) for a in predicate.args)
            if predicate.name == "not":
                return inner + 1.0
            # Other functions mostly walk string values (subtree scans).
            return inner + self.PREDICATE_EVAL_WEIGHT
        if isinstance(predicate, BinaryExpr):
            left = self._predicate_cost(predicate.left)
            right = self._predicate_cost(predicate.right)
            if predicate.op in ("and", "or", "|"):
                return left + right
            # Comparisons materialise string values on both sides.
            return left + right + self.PREDICATE_EVAL_WEIGHT
        if isinstance(predicate, (NumberLiteral, StringLiteral)):
            return 1.0
        return float(stats.total_nodes)  # pragma: no cover - exhaustive

    # ------------------------------------------------------------------
    # Per-step decisions
    # ------------------------------------------------------------------
    def _decide_steps(
        self, path: LocationPath, context_size: int
    ) -> List[StepDecision]:
        stats = self.statistics
        from_document = path.absolute
        size = float(max(1, context_size))
        decisions: List[StepDecision] = []
        for index, step in enumerate(path.steps):
            est_axis = self._axis_estimate(step.axis, size, from_document)
            est_out = self._test_estimate(step, est_axis)
            feedback_notes: List[str] = []
            observed = self._observed(step_signature(step.axis, step.test))
            if observed is not None:
                ratio, samples = observed
                blended = self._blend(
                    est_out, (min(float(stats.total_nodes), ratio * size), samples)
                )
                feedback_notes.append(
                    f"feedback    : step fan ≈ {ratio:.3f}×/ctx over "
                    f"{samples} sampled drives → out ≈ {blended:,.0f} "
                    f"(static {est_out:,.0f})"
                )
                est_out = blended
            pushdown = False
            cost_alt: Optional[float] = None
            operator = operator_name(step.axis)
            if "staircase" in operator:
                detail = (
                    f"skip={self._skip_mode().value}"
                    if self.engine == "scalar"
                    else "bulk spans"
                )
                operator = f"{operator} ({detail})"
            notes: List[str] = [f"operator    : {operator}"]
            if self._pushdown_eligible(step, from_document):
                cost_no = self._cost_without_pushdown(
                    step, size, est_axis, from_document
                )
                cost_push = self._cost_with_pushdown(
                    step, size, est_axis, from_document
                )
                if self.pushdown == "auto":
                    pushdown = cost_push < cost_no
                else:
                    pushdown = bool(self.pushdown)
                cost = cost_push if pushdown else cost_no
                cost_alt = cost_no if pushdown else cost_push
                notes.append(
                    f"statistics  : {step.test.name!r} — "
                    f"{stats.count(step.test.name):,} elements, "
                    f"selectivity {stats.selectivity(step.test.name):.4f}"
                )
            else:
                cost = self._cost_without_pushdown(
                    step, size, est_axis, from_document
                )
            for predicate in step.predicates:
                cost += self._predicate_filter_cost(predicate, est_out)
                selectivity = self._predicate_selectivity(step.axis, predicate)
                est_out = max(1.0, est_out * selectivity)
                if selectivity != self.STATIC_PREDICATE_SELECTIVITY:
                    notes.append(
                        f"predicate   : [{predicate}] "
                        f"(observed selectivity ≈ {selectivity:.3f})"
                    )
                else:
                    notes.append(f"predicate   : [{predicate}]")
            notes.extend(feedback_notes)
            decisions.append(
                StepDecision(
                    index=index,
                    step=step,
                    pushdown=pushdown,
                    est_in=size,
                    est_out=est_out,
                    cost=cost,
                    cost_alternative=cost_alt,
                    reason="cost model" if self.pushdown == "auto" else "forced",
                    notes=tuple(notes),
                )
            )
            size = max(1.0, est_out)
            from_document = False
        return decisions

    def _pushdown_eligible(self, step: Step, from_document: bool) -> bool:
        """Shapes the evaluator can execute against a fragment."""
        if step.test.kind != "name":
            return False
        if from_document:
            return step.axis in ("descendant", "descendant-or-self")
        return step.axis in ("descendant", "ancestor")

    # -- cardinality estimates ------------------------------------------
    def _axis_estimate(
        self, axis: str, context_size: float, from_document: bool
    ) -> float:
        """Unfiltered axis-step output estimate (uniform heuristics)."""
        stats = self.statistics
        n = float(stats.total_nodes)
        if from_document:
            # The document node's descendant region is the whole plane;
            # its only child is the root.
            if axis in ("descendant", "descendant-or-self"):
                return n
            if axis == "child":
                return 1.0
            return 0.0
        k = context_size
        if axis in ("descendant", "descendant-or-self"):
            # Pruned staircase subtrees are disjoint: the more context
            # nodes, the smaller each covered subtree.
            return min(n, k * (n / (k + 1.0)))
        if axis in ("ancestor", "ancestor-or-self"):
            return min(n, self.ANCESTOR_SHARING * k * stats.height + k)
        if axis in ("child", "attribute"):
            return k * stats.branching()
        if axis == "parent":
            return min(k, n)
        if axis == "self":
            return k
        if axis in ("following-sibling", "preceding-sibling"):
            return k * stats.branching()
        # following / preceding degenerate to one contiguous region.
        return n

    def _test_estimate(self, step: Step, axis_result: float) -> float:
        """Axis output after the node test (uniform tag distribution)."""
        stats = self.statistics
        test = step.test
        if test.kind == "name":
            if step.axis == "attribute":
                return max(1.0, axis_result * 0.5)
            count = float(stats.count(test.name))
            return min(count, axis_result * stats.selectivity(test.name) + 1.0)
        if test.kind == "node":
            return axis_result
        # *, text(), comment(), processing-instruction(): a kind slice.
        return max(1.0, axis_result * 0.5)

    # -- cost estimates --------------------------------------------------
    def _cost_without_pushdown(
        self, step: Step, context: float, est_axis: float, from_document: bool
    ) -> float:
        """Node touches of axis step + post-hoc name test."""
        n = float(self.statistics.total_nodes)
        if from_document:
            # One column scan produces the region, one filters it.
            return 2.0 * n
        if step.axis in ("ancestor", "ancestor-or-self"):
            climb = self.ANCESTOR_SHARING * context * self.statistics.height
            return context + climb + est_axis
        return context + 2.0 * est_axis

    def _cost_with_pushdown(
        self, step: Step, context: float, est_axis: float, from_document: bool
    ) -> float:
        """Node touches of the fragment (pushed-down) variant."""
        stats = self.statistics
        fragment = float(stats.count(step.test.name))
        if from_document:
            return fragment + self.probe_weight
        coverage = min(1.0, est_axis / float(stats.total_nodes))
        if step.axis == "descendant":
            return context * self.probe_weight + fragment * coverage
        # ancestor: walk the fragment below the context, hopping subtrees.
        return context * self.probe_weight + min(
            fragment, self.ANCESTOR_SHARING * context * stats.height
        )

    def _predicate_filter_cost(self, predicate: Expr, candidates: float) -> float:
        """Cost of filtering ``candidates`` nodes through one predicate."""
        stats = self.statistics
        n = float(stats.total_nodes)
        if self.engine == "vectorized" and self._bulk_filterable(predicate):
            # One reverse-path semi-join: universe scan + membership.
            return n + self._predicate_cost(predicate)
        # Per-candidate sub-evaluation (interpreter dispatch dominates).
        return candidates * self.PREDICATE_EVAL_WEIGHT

    def _bulk_filterable(self, predicate: Expr) -> bool:
        """Mirror of the vectorised engine's bulk predicate test."""
        if isinstance(predicate, LocationPath):
            return bool(predicate.steps) and not any(
                s.predicates for s in predicate.steps
            )
        if (
            isinstance(predicate, FunctionCall)
            and predicate.name == "not"
            and len(predicate.args) == 1
        ):
            return self._bulk_filterable(predicate.args[0])
        if isinstance(predicate, BinaryExpr) and predicate.op in ("and", "or"):
            return self._bulk_filterable(predicate.left) and self._bulk_filterable(
                predicate.right
            )
        return False
