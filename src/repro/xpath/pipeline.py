"""Physical operator pipelines: the compiled execution spine.

The paper's core claim is that each XPath location step is one
predictable physical operator over the pre/post plane.  This module
gives the execution layer that shape: :func:`compile_plan` turns a
costed :class:`~repro.xpath.planner.QueryPlan` (or a bare AST) into a
:class:`PhysicalPlan` — a picklable sequence of typed operators that
both engines execute behind one kernel dispatch:

* :class:`ContextInit` — seed the context (document node or caller
  context), normalised to a sorted duplicate-free rank array;
* :class:`StaircaseStep` — one axis step plus its node test, with the
  planner's name-test pushdown verdict *fused into the operator* (the
  per-step ``pushdown`` frozenset side-channel is absorbed at compile
  time);
* :class:`PredicateFilter` — non-positional predicates, mask-based in
  the vectorized engine, cheapest-first order preserved from the plan;
* :class:`PositionalSelect` — a whole step whose predicates need
  per-context-node position semantics (``[2]``, ``[last()]``, …);
* :class:`DocOrderDedup` — merges union branches in document order;
* terminal :class:`Materialize` / :class:`Count` / :class:`Exists` —
  the result mode.

Each non-terminal operator has a scalar and a vectorized kernel
registered behind one dispatch table (:func:`register_kernel` /
:func:`dispatch`); the runtime object (an
:class:`~repro.xpath.evaluator.Evaluator`) supplies the document,
the axis executor, fragments and the predicate machinery.

:func:`drive` threads a single context through the operators and
supports early termination: ``Exists`` stops at the first non-empty
final frontier (the last producing operator is re-run on geometrically
growing context chunks) and short-circuits the moment any intermediate
frontier is empty; ``Count`` skips rank materialization beyond the
final frontier.  Both modes are value-identical to materializing and
then applying ``len``/truthiness — the property tests pin this down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.staircase import SkipMode
from repro.errors import XPathEvaluationError
from repro.feedback.records import predicate_signature, step_signature
from repro.xpath.ast import (
    BinaryExpr,
    Expr,
    FunctionCall,
    LocationPath,
    NodeTest,
    NumberLiteral,
    Step,
)
from repro.xpath.axes import DOCUMENT_CONTEXT, apply_node_test

__all__ = [
    "MODES",
    "ContextInit",
    "Count",
    "DocOrderDedup",
    "Exists",
    "Materialize",
    "PhysicalPlan",
    "PositionalSelect",
    "PredicateFilter",
    "StaircaseStep",
    "compile_plan",
    "compile_step_ops",
    "dispatch",
    "drive",
    "exists_ready",
    "exists_tail",
    "is_positional_predicate",
    "operator_name",
    "register_kernel",
]

#: The result modes a pipeline can terminate in.
MODES = ("materialize", "count", "exists")


# ----------------------------------------------------------------------
# Positional-predicate classification (compile-time concern)
# ----------------------------------------------------------------------
def _uses_position(expr: Expr) -> bool:
    """Does ``expr`` call ``position()``/``last()`` anywhere?"""
    if isinstance(expr, FunctionCall):
        if expr.name in ("position", "last"):
            return True
        return any(_uses_position(a) for a in expr.args)
    if isinstance(expr, BinaryExpr):
        return _uses_position(expr.left) or _uses_position(expr.right)
    return False


#: Core functions whose return type is number (XPath 1.0 §4.4).
_NUMBER_FUNCTIONS = frozenset(
    ("position", "last", "count", "string-length", "sum", "number",
     "floor", "ceiling", "round")
)


def _returns_number(expr: Expr) -> bool:
    """Can ``expr``'s top-level value be a number?

    Per the XPath 1.0 predicate rule, a numeric predicate value is
    shorthand for ``position() = <number>`` — so any expression that can
    yield a number must be evaluated per context position.  Comparisons
    and ``and``/``or`` always yield booleans, unions yield node-sets, so a
    predicate like ``[initial + 20 < current]`` is *not* positional and
    can be filtered set-at-a-time.
    """
    if isinstance(expr, NumberLiteral):
        return True
    if isinstance(expr, FunctionCall):
        return expr.name in _NUMBER_FUNCTIONS
    if isinstance(expr, BinaryExpr):
        return expr.op in ("+", "-", "*", "div", "mod")
    return False


def is_positional_predicate(expr: Expr) -> bool:
    """Positional predicates compare against the context position."""
    return _uses_position(expr) or _returns_number(expr)


# ----------------------------------------------------------------------
# Operators
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ContextInit:
    """Seed the pipeline's context.

    Absolute paths anchor at the virtual document node; relative paths
    at the caller context (default: the root element), normalised to a
    sorted duplicate-free rank array.
    """

    absolute: bool

    def __str__(self) -> str:
        return f"ContextInit({'document' if self.absolute else 'context'})"


@dataclass(frozen=True)
class StaircaseStep:
    """One axis step plus its node test.

    ``pushdown`` fuses the name test below the join: the step reads the
    per-tag fragment instead of filtering the join output (the planner's
    per-step verdict, baked in at compile time).  The kernel still
    guards the shape — only ``descendant``/``ancestor`` steps (and
    ``descendant-or-self`` from the document node) have a fragment
    variant; ineligible contexts fall back to join-then-test.
    """

    index: int  #: top-level step position (-1 = no top-level position)
    axis: str
    test: NodeTest
    pushdown: bool = False

    def __str__(self) -> str:
        fused = ", pushdown" if self.pushdown else ""
        return f"StaircaseStep({self.axis}::{self.test}{fused})"


@dataclass(frozen=True)
class PredicateFilter:
    """Filter the frontier through non-positional predicates.

    Predicates arrive in the plan's (cheapest-first) order and are
    applied in sequence; the vectorized kernel evaluates each as one
    boolean keep-mask (reverse-path semi-join) where the shape allows
    and falls back to the per-candidate evaluator otherwise.
    """

    index: int
    axis: str  #: the producing step's axis (reverse axes flip positions)
    predicates: Tuple[Expr, ...]

    def __str__(self) -> str:
        preds = "".join(f"[{p}]" for p in self.predicates)
        return f"PredicateFilter({preds})"


@dataclass(frozen=True)
class PositionalSelect:
    """A whole step whose predicates carry position semantics.

    ``position()``/``last()``/numeric predicates see the axis order per
    context node, so the step cannot be decomposed into a bulk axis step
    plus a set-at-a-time filter; the vectorized kernel still recognises
    ``child::t[k]`` / ``child::t[last()]`` and selects set-at-a-time by
    ranking candidates within parent groups.
    """

    index: int
    step: Step
    pushdown: bool = False

    def __str__(self) -> str:
        return f"PositionalSelect({self.step})"


@dataclass(frozen=True)
class DocOrderDedup:
    """Merge union branches into one duplicate-free, document-ordered
    rank array (each branch is already sorted and duplicate-free)."""

    def __str__(self) -> str:
        return "DocOrderDedup(merge branches)"


@dataclass(frozen=True)
class Materialize:
    """Terminal: the full rank array, in document order."""

    def __str__(self) -> str:
        return "Materialize"


@dataclass(frozen=True)
class Count:
    """Terminal: result cardinality only — the driver never converts
    the final frontier into a caller-facing rank payload."""

    def __str__(self) -> str:
        return "Count"


@dataclass(frozen=True)
class Exists:
    """Terminal: boolean existence — the driver stops at the first
    non-empty final frontier and short-circuits on empty ones."""

    def __str__(self) -> str:
        return "Exists"


Operator = Union[
    ContextInit, StaircaseStep, PredicateFilter, PositionalSelect,
    DocOrderDedup, Materialize, Count, Exists,
]

_TERMINALS = {"materialize": Materialize(), "count": Count(), "exists": Exists()}

#: Operators that produce a new frontier from the previous one (the
#: chunkable targets of the ``Exists`` early-termination driver).
_PRODUCERS = (StaircaseStep, PositionalSelect)


#: What each axis runs on (the Section 2/3 execution vocabulary) —
#: shared with the planner's ``explain`` rendering.
AXIS_OPERATORS = {
    "descendant": "staircase_join_desc",
    "ancestor": "staircase_join_anc",
    "following": "staircase_join_following (context degenerates to a singleton)",
    "preceding": "staircase_join_preceding (context degenerates to a singleton)",
    "descendant-or-self": "staircase_join_desc ∪ context",
    "ancestor-or-self": "staircase_join_anc ∪ context",
    "child": "parent-column equi-join (kind ≠ attribute)",
    "parent": "parent-column projection (unique)",
    "attribute": "parent-column equi-join (kind = attribute)",
    "self": "identity",
    "following-sibling": "parent-column sibling scan (pre > context)",
    "preceding-sibling": "parent-column sibling scan (pre < context)",
}


def operator_name(axis: str) -> str:
    """The physical operator an axis step runs on."""
    return AXIS_OPERATORS.get(axis, axis)


# ----------------------------------------------------------------------
# The compiled plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PhysicalPlan:
    """A compiled, engine-agnostic operator pipeline.

    ``branches`` holds one operator sequence per union branch (usually
    one); ``terminal`` is the result mode.  Plans are immutable,
    hashable and picklable — the service ships them to shard workers
    as-is, and the workers' prefix tries key shared intermediate
    contexts by operator-prefix tuples.

    ``source`` keeps the expression the operators were compiled from
    (document-scoped execution re-anchors its first step), and
    ``pushdown_steps``/``skip_mode`` carry the originating
    :class:`~repro.xpath.planner.QueryPlan`'s evaluator-level decisions
    for that scoped path.
    """

    branches: Tuple[Tuple[Operator, ...], ...]
    terminal: Operator
    source: Expr
    query: str
    skip_mode: Optional[SkipMode] = None
    pushdown_steps: frozenset = frozenset()
    #: Compiled from a costed QueryPlan.  Only planned pipelines enter
    #: the executor's shared-prefix trie — ``planner=False`` keeps its
    #: documented ablation meaning of per-query execution.
    planned: bool = False
    merge: DocOrderDedup = field(default_factory=DocOrderDedup)

    @property
    def mode(self) -> str:
        if isinstance(self.terminal, Count):
            return "count"
        if isinstance(self.terminal, Exists):
            return "exists"
        return "materialize"

    def with_mode(self, mode: str) -> "PhysicalPlan":
        """The same pipeline under a different terminal."""
        if mode not in _TERMINALS:
            raise XPathEvaluationError(
                f"unknown result mode {mode!r} (expected one of {MODES})"
            )
        if self.mode == mode:
            return self
        return replace(self, terminal=_TERMINALS[mode])

    @property
    def single_path(self) -> bool:
        """One branch — the shape the prefix trie can share."""
        return len(self.branches) == 1

    def operator_count(self) -> int:
        return sum(len(branch) for branch in self.branches) + 1

    def describe(self) -> str:
        """The ``explain`` rendering of the compiled pipeline."""
        skip = f", scalar skip={self.skip_mode.value}" if self.skip_mode else ""
        lines = [
            f"physical pipeline: {self.operator_count()} operators, "
            f"terminal {self.terminal}{skip}"
        ]
        for number, branch in enumerate(self.branches, start=1):
            if len(self.branches) > 1:
                lines.append(f"  branch {number}:")
            indent = "    " if len(self.branches) > 1 else "  "
            for op in branch:
                lines.append(f"{indent}{op}")
                if isinstance(op, StaircaseStep):
                    lines.append(f"{indent}  └─ {operator_name(op.axis)}")
        if len(self.branches) > 1:
            lines.append(f"  {self.merge}")
        lines.append(f"  {self.terminal}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
def _pushdown_shape(step: Step) -> bool:
    """Steps that *can* run against a per-tag fragment."""
    return step.test.kind == "name" and step.axis in (
        "descendant", "descendant-or-self", "ancestor",
    )


def compile_step_ops(
    step: Step, index: int, pushdown: bool
) -> Tuple[Operator, ...]:
    """Compile one location step into its operator(s).

    A step carrying any positional predicate compiles to one
    :class:`PositionalSelect`; otherwise to a :class:`StaircaseStep`
    plus, if predicates remain, a :class:`PredicateFilter`.
    """
    push = pushdown and _pushdown_shape(step)
    if any(is_positional_predicate(p) for p in step.predicates):
        return (PositionalSelect(index, step, push),)
    ops: Tuple[Operator, ...] = (
        StaircaseStep(index, step.axis, step.test, push),
    )
    if step.predicates:
        ops += (PredicateFilter(index, step.axis, step.predicates),)
    return ops


def _compile_path(path: LocationPath, push_at) -> Tuple[Operator, ...]:
    ops: List[Operator] = [ContextInit(path.absolute)]
    for index, step in enumerate(path.steps):
        ops.extend(compile_step_ops(step, index, push_at(index)))
    return tuple(ops)


def compile_plan(
    plan,
    mode: str = "materialize",
    pushdown=None,
    skip_mode: Optional[SkipMode] = None,
) -> "PhysicalPlan":
    """Compile ``plan`` into a :class:`PhysicalPlan`.

    ``plan`` is a :class:`~repro.xpath.planner.QueryPlan` (its rewritten
    path, per-step pushdown verdicts and skip mode are honoured), a
    parsed expression, or a query string.  ``pushdown`` overrides the
    name-test placement: ``True``/``False`` for every eligible step, or
    an iterable of top-level step indices (the planner's spelling);
    ``None`` takes the :class:`QueryPlan`'s verdicts (no pushdown for
    bare expressions).  Already-compiled plans pass through (re-moded).
    """
    if isinstance(plan, PhysicalPlan):
        return plan.with_mode(mode)
    query: Optional[str] = None
    planned = False
    if isinstance(plan, str):
        from repro.xpath.parser import parse_xpath

        query, plan = plan, parse_xpath(plan)
    if hasattr(plan, "pushdown_steps") and hasattr(plan, "path"):
        # A QueryPlan (duck-typed to avoid the planner import cycle).
        query = plan.query
        planned = True
        if pushdown is None:
            pushdown = plan.pushdown_steps
        if skip_mode is None:
            skip_mode = plan.skip_mode
        expr = plan.path
    else:
        expr = plan
    if pushdown is None:
        pushdown = False
    if isinstance(pushdown, bool):
        blanket = pushdown

        def push_at(index: int) -> bool:
            return blanket
        pushdown_steps = frozenset()
    else:
        pushdown_steps = frozenset(int(i) for i in pushdown)

        def push_at(index: int) -> bool:
            return index in pushdown_steps

    branches: List[Tuple[Operator, ...]] = []

    def flatten(e: Expr) -> None:
        if isinstance(e, BinaryExpr):
            if e.op != "|":
                raise XPathEvaluationError(
                    f"top-level expression must be a path or union, got {e.op!r}"
                )
            flatten(e.left)
            flatten(e.right)
        elif isinstance(e, LocationPath):
            branches.append(_compile_path(e, push_at))
        else:
            raise XPathEvaluationError(
                f"cannot compile top-level expression {e!r}"
            )

    flatten(expr)
    if mode not in _TERMINALS:
        raise XPathEvaluationError(
            f"unknown result mode {mode!r} (expected one of {MODES})"
        )
    return PhysicalPlan(
        branches=tuple(branches),
        terminal=_TERMINALS[mode],
        source=expr,
        query=query if query is not None else str(expr),
        skip_mode=skip_mode,
        pushdown_steps=pushdown_steps,
        planned=planned,
    )


# ----------------------------------------------------------------------
# Kernel dispatch — one registry, a scalar and a vectorized impl each
# ----------------------------------------------------------------------
Kernel = Callable[[Operator, object, object], object]

_KERNELS: Dict[Tuple[type, str], Kernel] = {}


def register_kernel(op_type: type, *engines: str):
    """Register a kernel for ``op_type`` under the given engine names."""

    def decorate(fn: Kernel) -> Kernel:
        for engine in engines:
            _KERNELS[(op_type, engine)] = fn
        return fn

    return decorate


def dispatch(op: Operator, runtime, context):
    """Run one operator's kernel for the runtime's engine."""
    try:
        kernel = _KERNELS[(type(op), runtime.engine)]
    except KeyError:
        raise XPathEvaluationError(
            f"no {runtime.engine!r} kernel for operator {type(op).__name__}"
        ) from None
    return kernel(op, runtime, context)


def _empty() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


@register_kernel(ContextInit, "scalar", "vectorized")
def _context_init(op: ContextInit, rt, context):
    if op.absolute:
        return DOCUMENT_CONTEXT
    if context is None:
        return np.asarray([rt.doc.root], dtype=np.int64)
    if isinstance(context, (int, np.integer)):
        return np.asarray([int(context)], dtype=np.int64)
    return np.unique(np.asarray(context, dtype=np.int64))


def _fragment_document(op: StaircaseStep, rt):
    """Every node descends from the document node: the pushed-down name
    test *is* the step — read the fragment and be done."""
    pres, _ = rt.fragments.fragment(op.test.name or "")
    return pres


def _staircase(op: StaircaseStep, rt, context, fragment_steps):
    if op.pushdown and op.test.kind == "name":
        if context is DOCUMENT_CONTEXT:
            if op.axis in ("descendant", "descendant-or-self"):
                return _fragment_document(op, rt)
        elif op.axis in ("descendant", "ancestor"):
            fragment_step = fragment_steps(rt.fragments)[op.axis]
            context_array = np.asarray(context, dtype=np.int64)
            return fragment_step(context_array, op.test.name or "", rt.stats)
    pres = rt.axes.step(context, op.axis)
    return apply_node_test(rt.doc, pres, op.axis, op.test.kind, op.test.name)


@register_kernel(StaircaseStep, "scalar")
def _staircase_scalar(op: StaircaseStep, rt, context):
    return _staircase(
        op, rt, context,
        lambda fragments: {
            "descendant": fragments.descendant_step,
            "ancestor": fragments.ancestor_step,
        },
    )


@register_kernel(StaircaseStep, "vectorized")
def _staircase_vectorized(op: StaircaseStep, rt, context):
    return _staircase(
        op, rt, context,
        lambda fragments: {
            "descendant": fragments.descendant_step_vectorized,
            "ancestor": fragments.ancestor_step_vectorized,
        },
    )


@register_kernel(PredicateFilter, "scalar")
def _filter_scalar(op: PredicateFilter, rt, candidates):
    observer = getattr(rt, "observer", None)
    for predicate in op.predicates:
        if len(candidates) == 0:
            return candidates
        if observer is None:
            candidates = rt.filter_predicate_scalar(
                candidates, op.axis, predicate
            )
        else:
            n_in, started = len(candidates), time.perf_counter_ns()
            candidates = rt.filter_predicate_scalar(
                candidates, op.axis, predicate
            )
            observer.record(
                predicate_signature(op.axis, predicate),
                n_in,
                len(candidates),
                time.perf_counter_ns() - started,
            )
    return candidates


@register_kernel(PredicateFilter, "vectorized")
def _filter_vectorized(op: PredicateFilter, rt, candidates):
    observer = getattr(rt, "observer", None)
    for predicate in op.predicates:
        if len(candidates) == 0:
            return candidates
        n_in, started = len(candidates), (
            time.perf_counter_ns() if observer is not None else 0
        )
        mask = rt.bulk_predicate_mask(candidates, predicate)
        if mask is not None:
            candidates = candidates[mask]
        else:
            candidates = rt.filter_predicate_scalar(
                candidates, op.axis, predicate
            )
        if observer is not None:
            observer.record(
                predicate_signature(op.axis, predicate),
                n_in,
                len(candidates),
                time.perf_counter_ns() - started,
            )
    return candidates


def _positional_per_node(op: PositionalSelect, rt, context):
    """Positional semantics are per context node: evaluate the whole
    step for each node separately so position()/last() see the right
    node list."""
    if context is DOCUMENT_CONTEXT:
        return rt.single_context_step(context, op.step, op.pushdown)
    pieces = []
    for c in np.asarray(context, dtype=np.int64):
        single = np.asarray([int(c)], dtype=np.int64)
        pieces.append(rt.single_context_step(single, op.step, op.pushdown))
    if not pieces:
        return _empty()
    return np.unique(np.concatenate(pieces, dtype=np.int64))


@register_kernel(PositionalSelect, "scalar")
def _positional_scalar(op: PositionalSelect, rt, context):
    return _positional_per_node(op, rt, context)


@register_kernel(PositionalSelect, "vectorized")
def _positional_vectorized(op: PositionalSelect, rt, context):
    if context is not DOCUMENT_CONTEXT:
        bulk = rt.bulk_positional_select(context, op.step, op.pushdown)
        if bulk is not None:
            return bulk
    return _positional_per_node(op, rt, context)


@register_kernel(DocOrderDedup, "scalar", "vectorized")
def _doc_order_dedup(op: DocOrderDedup, rt, results):
    merged = results[0]
    for other in results[1:]:
        merged = np.union1d(merged, other)
    return merged


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------
#: First chunk size (and geometric growth factor) of the ``Exists``
#: final-frontier scan: small enough that a hit on the first context
#: nodes touches almost nothing, steep enough that a miss costs only a
#: constant factor over the one-shot evaluation.
_EXISTS_CHUNK = 8
_EXISTS_GROWTH = 4


def _run_branch(ops: Tuple[Operator, ...], runtime, context) -> np.ndarray:
    if getattr(runtime, "observer", None) is not None:
        return _run_branch_observed(ops, runtime, context)
    for op in ops:
        context = dispatch(op, runtime, context)
        if context is not DOCUMENT_CONTEXT and len(context) == 0:
            # Every downstream operator maps empty to empty.
            return _empty()
    if context is DOCUMENT_CONTEXT:
        # A bare "/" — the document node itself is not encoded.
        return _empty()
    return context


def _frontier_size(context) -> int:
    """Context cardinality for observation: the document node, the
    implicit root seed, and a bare rank all count as one context node."""
    if context is None or context is DOCUMENT_CONTEXT:
        return 1
    if isinstance(context, (int, np.integer)):
        return 1
    return len(context)


def _operator_signature(op: Operator) -> Optional[Tuple[str, ...]]:
    """The feedback signature of one operator (``None`` = unobserved).

    :class:`PredicateFilter` records per *predicate* inside its kernels
    (the planner orders predicates individually), so the operator-level
    record is skipped to avoid double counting.
    """
    if isinstance(op, StaircaseStep):
        return step_signature(op.axis, op.test)
    if isinstance(op, PositionalSelect):
        return ("pos", op.step.axis, str(op.step.test))
    return None


def _run_branch_observed(
    ops: Tuple[Operator, ...], runtime, context
) -> np.ndarray:
    """The instrumented twin of :func:`_run_branch`.

    Only runs when the worker attached an observer for a *sampled*
    drive — per-operator timing and cardinality bookkeeping stays off
    the unobserved hot path entirely.
    """
    observer = runtime.observer
    for op in ops:
        n_in = _frontier_size(context)
        started = time.perf_counter_ns()
        context = dispatch(op, runtime, context)
        elapsed = time.perf_counter_ns() - started
        signature = _operator_signature(op)
        if signature is not None:
            observer.record(
                signature, n_in, _frontier_size(context), elapsed
            )
        if context is not DOCUMENT_CONTEXT and len(context) == 0:
            return _empty()
    if context is DOCUMENT_CONTEXT:
        return _empty()
    return context


def exists_ready(ops: Tuple[Operator, ...], depth: int, context) -> bool:
    """Should an ``Exists`` evaluation leave the shared pipeline at
    ``depth`` and drive the remaining tail over context chunks?

    Every operator distributes over context partitions (axis steps and
    positional selects are per context node, predicate filters per
    candidate), so the tail may be chunked from *any* multi-element
    frontier — the earlier, the more downstream work a first-chunk hit
    skips.  The one exception is a :class:`PredicateFilter` whose bulk
    mask rescans the plane per invocation: tails containing one only
    chunk at the last producer, so the mask runs at most once per
    chunk of the *final* frontier instead of once per intermediate
    chunk cascade.
    """
    if not isinstance(context, np.ndarray) or len(context) <= 1:
        return False
    if depth >= len(ops) or not isinstance(ops[depth], _PRODUCERS):
        return False
    tail = ops[depth:]
    if not any(isinstance(op, PredicateFilter) for op in tail):
        return True
    return not any(isinstance(op, _PRODUCERS) for op in tail[1:])


def exists_tail(
    tail: Tuple[Operator, ...], runtime, context, exclude_pre: Optional[int]
) -> bool:
    """Early-terminating existence of the final pipeline segment.

    ``tail`` is the last producing operator plus its trailing filters;
    ``context`` the frontier feeding it.  Predicates are per-node (the
    positional ones per *context* node), so running the segment on a
    slice of the context can only produce a subset of the full result —
    any non-empty slice output proves existence, and exhausting the
    slices proves absence.
    """
    def survives(out) -> bool:
        if exclude_pre is not None and len(out):
            out = out[out != exclude_pre]
        return len(out) > 0

    def run_tail(chunk) -> np.ndarray:
        out = chunk
        for op in tail:
            out = dispatch(op, runtime, out)
            if len(out) == 0:
                break
        return out

    if not tail:
        if context is DOCUMENT_CONTEXT:
            return False
        return survives(context)
    if context is DOCUMENT_CONTEXT:
        return survives(run_tail(context))
    size = _EXISTS_CHUNK
    start = 0
    total = len(context)
    while start < total:
        if survives(run_tail(context[start : start + size])):
            return True
        start += size
        size *= _EXISTS_GROWTH
    return False


def _branch_exists(
    ops: Tuple[Operator, ...], runtime, context, exclude_pre: Optional[int]
) -> bool:
    frontier = context
    for depth, op in enumerate(ops):
        if exists_ready(ops, depth, frontier):
            return exists_tail(ops[depth:], runtime, frontier, exclude_pre)
        frontier = dispatch(op, runtime, frontier)
        if frontier is not DOCUMENT_CONTEXT and len(frontier) == 0:
            return False
    if frontier is DOCUMENT_CONTEXT:
        return False
    if exclude_pre is not None and len(frontier):
        frontier = frontier[frontier != exclude_pre]
    return len(frontier) > 0


def drive(
    plan: PhysicalPlan,
    runtime,
    context=None,
    exclude_pre: Optional[int] = None,
):
    """Execute a compiled plan against ``runtime`` (an Evaluator).

    Returns a rank array (``materialize``), an ``int`` (``count``) or a
    ``bool`` (``exists``).  ``exclude_pre`` drops one rank from the
    result — the collection layer's virtual-root filter, honoured by
    the early-terminating modes too.
    """
    mode = plan.mode
    if mode == "exists":
        return any(
            _branch_exists(ops, runtime, context, exclude_pre)
            for ops in plan.branches
        )
    results = [_run_branch(ops, runtime, context) for ops in plan.branches]
    if len(results) == 1:
        merged = results[0]
    else:
        merged = dispatch(plan.merge, runtime, results)
    if exclude_pre is not None and len(merged):
        merged = merged[merged != exclude_pre]
    if mode == "count":
        return int(len(merged))
    return merged
