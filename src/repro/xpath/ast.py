"""Abstract syntax for the XPath subset.

Plain frozen dataclasses; the evaluator pattern-matches on the node types.
``LocationPath`` with its ``Step`` list is the core — everything else only
occurs inside predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

__all__ = [
    "AXES",
    "NodeTest",
    "Step",
    "LocationPath",
    "NumberLiteral",
    "StringLiteral",
    "FunctionCall",
    "BinaryExpr",
    "Expr",
]

#: Axes the evaluator implements (XPath 1.0 minus ``namespace``).
AXES = (
    "child",
    "descendant",
    "parent",
    "ancestor",
    "following-sibling",
    "preceding-sibling",
    "following",
    "preceding",
    "attribute",
    "self",
    "descendant-or-self",
    "ancestor-or-self",
)


@dataclass(frozen=True)
class NodeTest:
    """A node test: either a kind test or a name test.

    ``kind`` is one of ``"name"``, ``"node"``, ``"text"``, ``"comment"``,
    ``"processing-instruction"``, ``"*"``.  For ``kind == "name"`` the
    ``name`` field holds the tested tag (which matches the *principal node
    kind* of the step's axis: elements everywhere except the attribute
    axis, where it matches attribute names).
    """

    kind: str
    name: Optional[str] = None

    def __str__(self) -> str:
        if self.kind == "name":
            return self.name or "?"
        if self.kind == "*":
            return "*"
        return f"{self.kind}()"


@dataclass(frozen=True)
class Step:
    """One location step: ``axis::nodetest[predicate]*``."""

    axis: str
    test: NodeTest
    predicates: Tuple["Expr", ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        preds = "".join(f"[{p}]" for p in self.predicates)
        return f"{self.axis}::{self.test}{preds}"


@dataclass(frozen=True)
class LocationPath:
    """A path: optional absolute anchor plus a sequence of steps."""

    absolute: bool
    steps: Tuple[Step, ...]

    def __str__(self) -> str:
        body = "/".join(str(s) for s in self.steps)
        return ("/" + body) if self.absolute else body


@dataclass(frozen=True)
class NumberLiteral:
    value: float

    def __str__(self) -> str:
        if self.value == int(self.value):
            return str(int(self.value))
        return str(self.value)


@dataclass(frozen=True)
class StringLiteral:
    value: str

    def __str__(self) -> str:
        return f'"{self.value}"'


@dataclass(frozen=True)
class FunctionCall:
    name: str
    args: Tuple["Expr", ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class BinaryExpr:
    """``or``/``and``, comparisons, arithmetic, and node-set union.

    ``__str__`` parenthesises nested binary operands so that the rendered
    text reparses to the identical tree regardless of associativity or
    precedence (the parser-fuzz round-trip property).
    """

    op: str
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        def wrap(operand: "Expr") -> str:
            if isinstance(operand, BinaryExpr):
                return f"({operand})"
            return str(operand)

        return f"{wrap(self.left)} {self.op} {wrap(self.right)}"


Expr = Union[
    LocationPath, NumberLiteral, StringLiteral, FunctionCall, BinaryExpr
]
