"""Recursive-descent parser for the XPath subset.

Grammar (abbreviations are desugared while parsing — ``//`` becomes a
``descendant-or-self::node()`` step, ``@x`` becomes ``attribute::x``,
``.``/``..`` become ``self``/``parent`` steps):

.. code-block:: text

   path        := '/' relative? | '//' relative | relative
   relative    := step (('/' | '//') step)*
   step        := axis '::' nodetest predicate*
                | '@' nodetest predicate*
                | nodetest predicate*          (child axis)
                | '.' | '..'
   nodetest    := NAME | '*' | ('node'|'text'|'comment'
                | 'processing-instruction') '(' ')'
   predicate   := '[' expr ']'
   expr        := or-expr
   or-expr     := and-expr ('or' and-expr)*
   and-expr    := cmp-expr ('and' cmp-expr)*
   cmp-expr    := value (('='|'!='|'<'|'<='|'>'|'>=') value)?
   value       := NUMBER | STRING | function '(' args ')' | '(' expr ')'
                | path
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    AXES,
    BinaryExpr,
    Expr,
    FunctionCall,
    LocationPath,
    NodeTest,
    NumberLiteral,
    Step,
    StringLiteral,
)
from repro.xpath.lexer import Token, tokenize

__all__ = ["parse_xpath"]

_KIND_TESTS = ("node", "text", "comment", "processing-instruction")
_DESC_OR_SELF = Step("descendant-or-self", NodeTest("node"))
_KNOWN_FUNCTIONS = (
    "position",
    "last",
    "count",
    "not",
    "name",
    "local-name",
    "string",
    "number",
    "boolean",
    "true",
    "false",
    "string-length",
    "contains",
    "starts-with",
    "concat",
    "substring",
    "substring-before",
    "substring-after",
    "normalize-space",
    "sum",
    "floor",
    "ceiling",
    "round",
)


class _Parser:
    def __init__(self, expression: str):
        self.expression = expression
        self.tokens = tokenize(expression)
        self.index = 0

    # -- token helpers ---------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def accept(self, token_type: str) -> bool:
        if self.current.type == token_type:
            self.index += 1
            return True
        return False

    def expect(self, token_type: str) -> Token:
        if self.current.type != token_type:
            raise self.error(f"expected {token_type!r}, got {self.current.type!r}")
        return self.advance()

    def error(self, message: str) -> XPathSyntaxError:
        return XPathSyntaxError(message, self.current.position, self.expression)

    # -- entry points ------------------------------------------------------
    def parse(self):
        expression = self.parse_path()
        while self.current.type == "|":
            # Top-level union of paths: "//a | //b".
            self.advance()
            expression = BinaryExpr("|", expression, self.parse_path())
        if self.current.type != "EOF":
            raise self.error(f"unexpected trailing {self.current.value!r}")
        return expression

    def parse_path(self) -> LocationPath:
        steps: List[Step] = []
        if self.accept("//"):
            steps.append(_DESC_OR_SELF)
            steps.extend(self.parse_relative())
            return LocationPath(True, tuple(steps))
        if self.accept("/"):
            if self._at_step_start():
                steps.extend(self.parse_relative())
            return LocationPath(True, tuple(steps))
        steps.extend(self.parse_relative())
        return LocationPath(False, tuple(steps))

    def _at_step_start(self) -> bool:
        return self.current.type in ("NAME", "AXIS", "@", ".", "..", "*")

    def parse_relative(self) -> List[Step]:
        steps = [self.parse_step()]
        while True:
            if self.accept("//"):
                steps.append(_DESC_OR_SELF)
                steps.append(self.parse_step())
            elif self.accept("/"):
                steps.append(self.parse_step())
            else:
                return steps

    # -- steps -------------------------------------------------------------
    def parse_step(self) -> Step:
        if self.accept("."):
            return Step("self", NodeTest("node"), self.parse_predicates())
        if self.accept(".."):
            return Step("parent", NodeTest("node"), self.parse_predicates())
        if self.current.type == "AXIS":
            axis = self.advance().value
            if axis not in AXES:
                if axis == "namespace":
                    raise self.error(
                        "the namespace axis is not supported (no namespace "
                        "nodes in this data model)"
                    )
                raise self.error(f"unknown axis {axis!r}")
            test = self.parse_nodetest(axis)
            return Step(axis, test, self.parse_predicates())
        if self.accept("@"):
            test = self.parse_nodetest("attribute")
            return Step("attribute", test, self.parse_predicates())
        test = self.parse_nodetest("child")
        return Step("child", test, self.parse_predicates())

    def parse_nodetest(self, axis: str) -> NodeTest:
        if self.accept("*"):
            return NodeTest("*")
        token = self.expect("NAME")
        if token.value in _KIND_TESTS and self.current.type == "(":
            self.advance()
            target = None
            if self.current.type == "STRING":
                target = self.advance().value
            self.expect(")")
            if token.value == "processing-instruction":
                return NodeTest("processing-instruction", target)
            if target is not None:
                raise self.error(f"{token.value}() takes no argument")
            return NodeTest(token.value)
        return NodeTest("name", token.value)

    def parse_predicates(self) -> Tuple[Expr, ...]:
        predicates: List[Expr] = []
        while self.accept("["):
            predicates.append(self.parse_expr())
            self.expect("]")
        return tuple(predicates)

    # -- expressions ---------------------------------------------------------
    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.current.type == "NAME" and self.current.value == "or":
            self.advance()
            left = BinaryExpr("or", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_equality()
        while self.current.type == "NAME" and self.current.value == "and":
            self.advance()
            left = BinaryExpr("and", left, self.parse_equality())
        return left

    def parse_equality(self) -> Expr:
        left = self.parse_relational()
        while self.current.type in ("=", "!="):
            op = self.advance().type
            left = BinaryExpr(op, left, self.parse_relational())
        return left

    def parse_relational(self) -> Expr:
        left = self.parse_additive()
        while self.current.type in ("<", "<=", ">", ">="):
            op = self.advance().type
            left = BinaryExpr(op, left, self.parse_additive())
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while self.current.type in ("+", "-"):
            op = self.advance().type
            left = BinaryExpr(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while True:
            # '*' after an operand is multiplication (XPath 1.0's
            # operand-context disambiguation); 'div'/'mod' are operator
            # names in the same position.
            if self.current.type == "*":
                self.advance()
                left = BinaryExpr("*", left, self.parse_unary())
            elif self.current.type == "NAME" and self.current.value in ("div", "mod"):
                op = self.advance().value
                left = BinaryExpr(op, left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> Expr:
        if self.current.type == "-":
            self.advance()
            # XPath defines -x as 0 - x; reuse the binary node.
            return BinaryExpr("-", NumberLiteral(0.0), self.parse_unary())
        return self.parse_union()

    def parse_union(self) -> Expr:
        left = self.parse_value()
        while self.current.type == "|":
            self.advance()
            left = BinaryExpr("|", left, self.parse_value())
        return left

    def parse_value(self) -> Expr:
        token = self.current
        if token.type == "NUMBER":
            self.advance()
            return NumberLiteral(float(token.value))
        if token.type == "STRING":
            self.advance()
            return StringLiteral(token.value)
        if token.type == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if token.type == "NAME" and self.tokens[self.index + 1].type == "(":
            if token.value in _KIND_TESTS:
                return self._path_value()  # a kind test step, not a function
            if token.value not in _KNOWN_FUNCTIONS:
                raise self.error(f"unknown function {token.value!r}")
            self.advance()
            self.advance()  # '('
            args: List[Expr] = []
            if self.current.type != ")":
                args.append(self.parse_expr())
                while self.accept(","):
                    args.append(self.parse_expr())
            self.expect(")")
            return FunctionCall(token.value, tuple(args))
        if token.type in ("NAME", "AXIS", "@", ".", "..", "*", "/", "//"):
            return self._path_value()
        raise self.error(f"unexpected {token.value or token.type!r} in expression")

    def _path_value(self) -> LocationPath:
        return self.parse_path()


def parse_xpath(expression: str):
    """Parse an XPath expression.

    Returns a :class:`LocationPath`, or a ``BinaryExpr("|", ...)`` tree
    for top-level unions of paths.  Raises
    :class:`~repro.errors.XPathSyntaxError` with a position marker on
    malformed input.
    """
    if not expression or not expression.strip():
        raise XPathSyntaxError("empty XPath expression")
    return _Parser(expression).parse()
