"""Axis-step execution over the pre/post encoding.

The four partitioning axes (``descendant``, ``ancestor``, ``following``,
``preceding``) are the staircase join's territory; Section 2 of the paper
notes the remaining axes "determine easily characterizable super- or
subsets of these regions (e.g. ancestor-or-self) or are supported by
standard RDBMS join algorithms (e.g. child, parent)".  We implement them
accordingly:

* ``child``/``parent``/siblings/``attribute`` — via the ``parent`` column
  (a standard equi-join against context nodes);
* ``*-or-self`` — union of the partitioning region with the context;
* ``self`` — identity.

Each function takes and returns sorted, duplicate-free ``int64`` arrays of
preorder ranks, so chained steps compose without re-normalisation.

An *engine* selects the executor for every axis: ``"scalar"`` (the
per-node Python transcriptions — Algorithms 2–4 with a chosen
:class:`~repro.core.staircase.SkipMode` for the partitioning axes, loop
joins for the rest) or ``"vectorized"`` (the numpy bulk kernels of
:mod:`repro.core.vectorized` for *all* axes).  Both produce identical
node sets; ``strategy="staircase"`` is accepted as a backward-compatible
alias for the scalar engine.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.core.staircase import SkipMode, staircase_join
from repro.core.vectorized import (
    axis_step_vectorized,
    staircase_join_vectorized,
)
from repro.counters import JoinStatistics
from repro.encoding.doctable import DocTable
from repro.errors import XPathEvaluationError
from repro.xmltree.model import NodeKind

__all__ = ["AxisExecutor", "DOCUMENT_CONTEXT", "apply_node_test", "resolve_engine"]

_ATTR = int(NodeKind.ATTRIBUTE)

#: Sentinel context value for the (un-encoded) document node, used by the
#: evaluator for absolute paths.
DOCUMENT_CONTEXT = object()


def _empty() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


def resolve_engine(engine: Optional[str], strategy: Optional[str] = None) -> str:
    """Normalise engine/strategy spellings to ``"scalar"`` or ``"vectorized"``.

    ``engine`` wins when both are given; ``strategy="staircase"`` is the
    historical name for the scalar engine and stays accepted everywhere a
    caller could previously pass it.
    """
    chosen = engine if engine is not None else strategy
    if chosen is None:
        return "scalar"
    if chosen == "staircase":
        return "scalar"
    if chosen in ("scalar", "vectorized"):
        return chosen
    raise XPathEvaluationError(f"unknown engine {chosen!r}")


class AxisExecutor:
    """Evaluates single axis steps for a fixed document and engine.

    Parameters
    ----------
    doc:
        The encoded document.
    strategy:
        Backward-compatible alias for ``engine`` (``"staircase"`` names
        the scalar engine).
    mode:
        Skip mode for the scalar staircase join.
    stats:
        Shared counters; every staircase join invocation accumulates here.
    engine:
        ``"scalar"`` (per-node Python loops, instrumented) or
        ``"vectorized"`` (numpy bulk kernels for every axis).  Overrides
        ``strategy`` when both are given.
    """

    def __init__(
        self,
        doc: DocTable,
        strategy: Optional[str] = None,
        mode: SkipMode = SkipMode.ESTIMATE,
        stats: Optional[JoinStatistics] = None,
        engine: Optional[str] = None,
    ):
        self.engine = resolve_engine(engine, strategy)
        self.doc = doc
        self.strategy = "staircase" if self.engine == "scalar" else "vectorized"
        self.mode = mode
        self.stats = stats if stats is not None else JoinStatistics()
        self._axes: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
            "descendant": lambda ctx: self._partitioning("descendant", ctx),
            "ancestor": lambda ctx: self._partitioning("ancestor", ctx),
            "following": lambda ctx: self._partitioning("following", ctx),
            "preceding": lambda ctx: self._partitioning("preceding", ctx),
            "descendant-or-self": self._descendant_or_self,
            "ancestor-or-self": self._ancestor_or_self,
            "child": self._child,
            "parent": self._parent,
            "attribute": self._attribute,
            "self": lambda ctx: ctx,
            "following-sibling": lambda ctx: self._siblings(ctx, following=True),
            "preceding-sibling": lambda ctx: self._siblings(ctx, following=False),
        }

    # ------------------------------------------------------------------
    def step(self, context, axis: str) -> np.ndarray:
        """Evaluate one axis step; ``context`` may be the document sentinel."""
        if context is DOCUMENT_CONTEXT:
            return self._from_document(axis)
        context = np.asarray(context, dtype=np.int64)
        if len(context) == 0:
            return _empty()
        if self.engine == "vectorized":
            if axis not in self._axes:
                raise XPathEvaluationError(f"unsupported axis {axis!r}")
            return axis_step_vectorized(self.doc, context, axis, self.stats)
        try:
            executor = self._axes[axis]
        except KeyError:
            raise XPathEvaluationError(f"unsupported axis {axis!r}") from None
        return executor(context)

    # ------------------------------------------------------------------
    # Partitioning axes → staircase join
    # ------------------------------------------------------------------
    def _partitioning(self, axis: str, context: np.ndarray) -> np.ndarray:
        if self.engine == "vectorized":
            return staircase_join_vectorized(self.doc, context, axis, self.stats)
        return staircase_join(self.doc, context, axis, self.mode, self.stats)

    def _descendant_or_self(self, context: np.ndarray) -> np.ndarray:
        descendants = self._partitioning("descendant", context)
        return np.union1d(context, descendants)

    def _ancestor_or_self(self, context: np.ndarray) -> np.ndarray:
        ancestors = self._partitioning("ancestor", context)
        return np.union1d(context, ancestors)

    # ------------------------------------------------------------------
    # Structural axes → parent-column joins
    # ------------------------------------------------------------------
    #: Context size below which child/attribute steps enumerate children
    #: positionally (subtree hops) instead of scanning the parent column.
    #: Predicate evaluation hits this path constantly (one-node contexts),
    #: where an O(n) column scan per candidate would dominate the query.
    SMALL_CONTEXT = 64

    def _child(self, context: np.ndarray) -> np.ndarray:
        doc = self.doc
        if len(context) <= self.SMALL_CONTEXT:
            out = []
            for c in context:
                out.extend(
                    child
                    for child in doc.children_of(int(c))
                    if doc.kind[child] != _ATTR
                )
            return np.asarray(sorted(out), dtype=np.int64)
        mask = np.isin(doc.parent, context) & (doc.kind != _ATTR)
        return np.nonzero(mask)[0].astype(np.int64)

    def _attribute(self, context: np.ndarray) -> np.ndarray:
        doc = self.doc
        if len(context) <= self.SMALL_CONTEXT:
            out = []
            for c in context:
                out.extend(
                    child
                    for child in doc.children_of(int(c))
                    if doc.kind[child] == _ATTR
                )
            return np.asarray(sorted(out), dtype=np.int64)
        mask = np.isin(doc.parent, context) & (doc.kind == _ATTR)
        return np.nonzero(mask)[0].astype(np.int64)

    def _parent(self, context: np.ndarray) -> np.ndarray:
        parents = self.doc.parent[context]
        return np.unique(parents[parents >= 0])

    def _siblings(self, context: np.ndarray, following: bool) -> np.ndarray:
        """Siblings on one side, per context node, via the parent column.

        A node's siblings share its parent; the following ones have larger
        preorder ranks.  Attribute context nodes have no siblings in the
        XPath sense (attributes are not children), and attribute nodes are
        never produced.
        """
        doc = self.doc
        result = set()
        for c in context:
            c = int(c)
            p = int(doc.parent[c])
            if p < 0 or doc.kind[c] == _ATTR:
                continue
            for sibling in doc.children_of(p):
                if doc.kind[sibling] == _ATTR or sibling == c:
                    continue
                if (sibling > c) == following and sibling != c:
                    result.add(sibling)
        if not result:
            return _empty()
        return np.asarray(sorted(result), dtype=np.int64)

    # ------------------------------------------------------------------
    # Virtual document node (absolute paths)
    # ------------------------------------------------------------------
    def _from_document(self, axis: str) -> np.ndarray:
        """Axis step whose context is the (un-encoded) document node.

        The document node's only child is the root element; its descendant
        region is the entire plane.  Axes that would *return* the document
        node (``self``, ``ancestor-or-self``) yield the empty set because
        the document node has no rank — a documented deviation that is
        invisible to name-tested queries.
        """
        doc = self.doc
        if axis == "child":
            return np.asarray([doc.root], dtype=np.int64)
        if axis in ("descendant", "descendant-or-self"):
            return np.nonzero(doc.kind != _ATTR)[0].astype(np.int64)
        if axis in (
            "ancestor",
            "ancestor-or-self",
            "parent",
            "self",
            "following",
            "preceding",
            "following-sibling",
            "preceding-sibling",
            "attribute",
        ):
            return _empty()
        raise XPathEvaluationError(f"unsupported axis {axis!r}")


# ----------------------------------------------------------------------
# Node tests
# ----------------------------------------------------------------------
def apply_node_test(
    doc: DocTable, pres: np.ndarray, axis: str, kind: str, name: Optional[str]
) -> np.ndarray:
    """Filter step output ``pres`` by a node test.

    ``kind``/``name`` come from :class:`repro.xpath.ast.NodeTest`.  The
    *principal node kind* rule: a name test (or ``*``) selects elements on
    every axis except ``attribute``, where it selects attribute nodes.
    """
    if len(pres) == 0:
        return pres
    principal = NodeKind.ATTRIBUTE if axis == "attribute" else NodeKind.ELEMENT
    if kind == "node":
        return pres
    if kind == "*":
        return pres[doc.kind[pres] == int(principal)]
    if kind == "name":
        code = doc.tag.code_of(name or "")
        if code < 0:
            return _empty()
        mask = (doc.kind[pres] == int(principal)) & (doc.tag.codes[pres] == code)
        return pres[mask]
    if kind == "text":
        return pres[doc.kind[pres] == int(NodeKind.TEXT)]
    if kind == "comment":
        return pres[doc.kind[pres] == int(NodeKind.COMMENT)]
    if kind == "processing-instruction":
        mask = doc.kind[pres] == int(NodeKind.PROCESSING_INSTRUCTION)
        selected = pres[mask]
        if name:
            keep = [p for p in selected if doc.tag_of(int(p)) == name]
            return np.asarray(keep, dtype=np.int64)
        return selected
    raise XPathEvaluationError(f"unknown node test kind {kind!r}")
