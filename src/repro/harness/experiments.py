"""Experiment runners — one per table/figure of the paper.

Every function returns plain data (lists of dicts) so benchmarks can both
assert on the numbers and print them with
:func:`repro.harness.reporting.format_table`.  Node-access counts are
exact and deterministic; wall-clock times are measured here only where a
figure plots times.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.baselines.naive import naive_step_with_duplicates
from repro.core.staircase import SkipMode, staircase_join
from repro.counters import JoinStatistics
from repro.encoding.doctable import DocTable
from repro.engine.db2 import DocIndex, db2_path
from repro.harness.workloads import Q1, Q2, get_document
from repro.simulator.cache import PAPER_MACHINE, Machine
from repro.simulator.cost import (
    COPY_CYCLES_PER_NODE,
    SCAN_CYCLES_PER_NODE,
    cycles_per_cache_line,
    effective_bandwidth_mb_s,
    phase_bound,
    sequential_bandwidth_mb_s,
)
from repro.xpath.evaluator import Evaluator

__all__ = [
    "table1_intermediary_sizes",
    "experiment1_duplicates",
    "experiment2_skipping",
    "experiment3_comparison",
    "fragmentation_experiment",
    "cache_model_report",
]


def _documents(sizes: Iterable[float]) -> List[DocTable]:
    return [get_document(size) for size in sizes]


# ----------------------------------------------------------------------
# Table 1 — intermediary result sizes for Q1 and Q2
# ----------------------------------------------------------------------
def table1_intermediary_sizes(size_mb: float) -> List[Dict]:
    """Reproduce Table 1's four counts per query for one document.

    Rows: per query, the size of each intermediary —
    ``/descendant::node()`` (no attributes), the first name test, the
    second axis step (no name test), the second name test.
    """
    doc = get_document(size_mb)
    evaluator = Evaluator(doc)
    rows = []

    all_nodes = evaluator.evaluate("/descendant::node()")
    profiles = evaluator.evaluate("/descendant::profile")
    q1_step2 = evaluator.evaluate("descendant::node()", context=profiles)
    education = evaluator.evaluate("descendant::education", context=profiles)
    rows.append(
        {
            "query": "Q1",
            "path": Q1,
            "descendant_from_root": len(all_nodes),
            "after_first_nametest": len(profiles),
            "second_axis_step": len(q1_step2),
            "after_second_nametest": len(education),
        }
    )

    increases = evaluator.evaluate("/descendant::increase")
    q2_step2 = evaluator.evaluate("ancestor::node()", context=increases)
    bidders = evaluator.evaluate("ancestor::bidder", context=increases)
    rows.append(
        {
            "query": "Q2",
            "path": Q2,
            "descendant_from_root": len(all_nodes),
            "after_first_nametest": len(increases),
            "second_axis_step": len(q2_step2),
            "after_second_nametest": len(bidders),
        }
    )
    return rows


# ----------------------------------------------------------------------
# Experiment 1 — Figure 11 (a): duplicates avoided, (b): linear scaling
# ----------------------------------------------------------------------
def experiment1_duplicates(sizes: Iterable[float]) -> List[Dict]:
    """Naive vs staircase join for Q2's ancestor step (Figure 11 (a)).

    Per size: nodes the naive approach *produces* (duplicates included),
    the staircase join's duplicate-free result size, and the measured
    duplicate ratio (the paper reports ≈ 75 %).
    """
    rows = []
    for size in sizes:
        doc = get_document(size)
        context = doc.pres_with_tag("increase")
        naive_stats = JoinStatistics()
        produced = naive_step_with_duplicates(doc, context, "ancestor", naive_stats)
        stats = JoinStatistics()
        start = time.perf_counter()
        result = staircase_join(doc, context, "ancestor", SkipMode.ESTIMATE, stats)
        elapsed = time.perf_counter() - start
        duplicates = len(produced) - len(np.unique(produced))
        rows.append(
            {
                "size_mb": size,
                "nodes": len(doc),
                "context": len(context),
                "naive_produced": len(produced),
                "staircase_result": len(result),
                "duplicates_avoided": duplicates,
                "duplicate_ratio": duplicates / max(1, len(produced)),
                "staircase_seconds": elapsed,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Experiment 2 — Figure 11 (c)/(d): effectiveness of skipping
# ----------------------------------------------------------------------
def experiment2_skipping(sizes: Iterable[float]) -> List[Dict]:
    """Nodes accessed and time for Q1's second step, per skip mode.

    The context is the Q1 first-step result (``profile`` nodes); the
    measured join is ``descendant`` with no name test, exactly the
    configuration of Figures 11 (c) and (d).
    """
    rows = []
    for size in sizes:
        doc = get_document(size)
        context = doc.pres_with_tag("profile")
        row: Dict = {"size_mb": size, "nodes": len(doc), "context": len(context)}
        for label, mode in (
            ("no_skipping", SkipMode.NONE),
            ("skipping", SkipMode.SKIP),
            ("skipping_estimated", SkipMode.ESTIMATE),
        ):
            stats = JoinStatistics()
            start = time.perf_counter()
            result = staircase_join(doc, context, "descendant", mode, stats)
            elapsed = time.perf_counter() - start
            row[f"{label}_accessed"] = stats.nodes_touched
            row[f"{label}_seconds"] = elapsed
            row["result_size"] = len(result)
        # Footnote 7: skipping's touch count is bounded by the result
        # *including* attribute nodes (they are touched, then filtered).
        raw_stats = JoinStatistics()
        raw = staircase_join(
            doc, context, "descendant", SkipMode.SKIP, raw_stats, keep_attributes=True
        )
        row["result_size_with_attributes"] = len(raw)
        row["skipped_fraction"] = 1.0 - (
            row["skipping_accessed"] / max(1, row["no_skipping_accessed"])
        )
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Experiment 3 — Figure 11 (e)/(f): staircase vs pushdown vs DB2
# ----------------------------------------------------------------------
def experiment3_comparison(
    sizes: Iterable[float],
    query: str = Q1,
    include_db2: bool = True,
    repeats: int = 1,
) -> List[Dict]:
    """Execution-time comparison for one of the paper's queries.

    Three systems, as in Figures 11 (e)/(f):

    * ``staircase``    — staircase join, name test *after* the join;
    * ``scj_pushdown`` — staircase join with the name test pushed down
      (the "scj (early nametest)" series);
    * ``db2``          — the tree-unaware plan over the B+-tree (with the
      Equation (1) delimiter and early name test, i.e. DB2's concatenated
      key; Q2 runs through the symmetry rewrite, as in the paper).
    """
    rows = []
    for size in sizes:
        doc = get_document(size)
        row: Dict = {"size_mb": size, "nodes": len(doc), "query": query}

        def timed(fn) -> float:
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        plain = Evaluator(doc, pushdown=False)
        pushdown = Evaluator(doc, pushdown=True)
        pushdown.fragments  # fragmenting is load-time work, not query time
        row["staircase_seconds"] = timed(lambda: plain.evaluate(query))
        row["scj_pushdown_seconds"] = timed(lambda: pushdown.evaluate(query))
        row["result_size"] = len(pushdown.evaluate(query))
        if include_db2:
            index = DocIndex(doc)
            row["db2_seconds"] = timed(
                lambda: db2_path(index, query, rewrite_ancestor=True)
            )
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Future-work fragmentation experiment (Q1: 345 ms → 39 ms)
# ----------------------------------------------------------------------
def fragmentation_experiment(size_mb: float, repeats: int = 3) -> Dict:
    """Q1 with the monolithic table vs per-tag fragments.

    The paper reports 345 ms → 39 ms (×8.8) on the 1 GB document; the
    reproduction reports the measured ratio on the scaled document.
    """
    doc = get_document(size_mb)
    plain = Evaluator(doc, pushdown=False)
    fragmented = Evaluator(doc, pushdown=True)
    fragmented.fragments  # build fragments outside the timed region

    def timed(fn) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    monolithic = timed(lambda: plain.evaluate(Q1))
    per_tag = timed(lambda: fragmented.evaluate(Q1))
    return {
        "size_mb": size_mb,
        "nodes": len(doc),
        "monolithic_seconds": monolithic,
        "fragmented_seconds": per_tag,
        "speedup": monolithic / max(per_tag, 1e-12),
        "paper_speedup": 345.0 / 39.0,
    }


# ----------------------------------------------------------------------
# Section 4.2/4.3 — the cache/CPU arithmetic
# ----------------------------------------------------------------------
def cache_model_report(machine: Optional[Machine] = None) -> Dict:
    """Reproduce the published cost-model numbers for a machine.

    For :data:`PAPER_MACHINE` this yields the quoted 544 cy vs 387 cy
    scan-loop comparison, the 160 cy copy loop, 551 MB/s sequential
    bandwidth, and the prefetch-boosted 719/805 MB/s figures.
    """
    machine = machine if machine is not None else PAPER_MACHINE
    return {
        "clock_ghz": machine.clock_ghz,
        "scan_cycles_per_node": SCAN_CYCLES_PER_NODE,
        "copy_cycles_per_node": COPY_CYCLES_PER_NODE,
        "scan_cycles_per_line": cycles_per_cache_line(SCAN_CYCLES_PER_NODE, machine),
        "copy_cycles_per_line": cycles_per_cache_line(COPY_CYCLES_PER_NODE, machine),
        "l2_miss_latency_cycles": machine.l2.miss_latency_cycles,
        "scan_phase_bound": phase_bound(SCAN_CYCLES_PER_NODE, machine),
        "copy_phase_bound": phase_bound(COPY_CYCLES_PER_NODE, machine),
        "sequential_bandwidth_mb_s": sequential_bandwidth_mb_s(machine),
        "hw_prefetch_bandwidth_mb_s": effective_bandwidth_mb_s(machine, "hardware"),
        "sw_prefetch_bandwidth_mb_s": effective_bandwidth_mb_s(machine, "software"),
    }
