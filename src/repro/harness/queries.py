"""An XMark-inspired XPath query suite.

XMark ships twenty XQuery benchmark queries; the XPath-expressible core
of that workload, adapted to this generator's document shape, gives the
reproduction a realistic query mix beyond the paper's Q1/Q2 — axis
chains, predicates, positions, value joins, functions.  The suite is
used by ``benchmarks/bench_query_suite.py`` (per-query timings across
execution strategies) and by tests that pin each query's cardinality
characteristics.

Each entry records which XPath features it exercises so coverage is
auditable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["SuiteQuery", "QUERY_SUITE"]


@dataclass(frozen=True)
class SuiteQuery:
    """One workload query with its documentation."""

    key: str
    xpath: str
    description: str
    features: Tuple[str, ...]


QUERY_SUITE: Tuple[SuiteQuery, ...] = (
    SuiteQuery(
        "S01-paper-q1",
        "/descendant::profile/descendant::education",
        "the paper's Q1",
        ("descendant", "name test"),
    ),
    SuiteQuery(
        "S02-paper-q2",
        "/descendant::increase/ancestor::bidder",
        "the paper's Q2",
        ("descendant", "ancestor"),
    ),
    SuiteQuery(
        "S03-child-chain",
        "/site/open_auctions/open_auction/bidder/increase",
        "fully-specified root-to-leaf path",
        ("child",),
    ),
    SuiteQuery(
        "S04-existential",
        "//open_auction[bidder]/seller",
        "auctions that have bids, projected to their seller",
        ("descendant-or-self", "predicate path", "child"),
    ),
    SuiteQuery(
        "S05-negation",
        "//open_auction[not(bidder)]",
        "auctions nobody bid on",
        ("not()",),
    ),
    SuiteQuery(
        "S06-position",
        "//open_auction/bidder[1]/increase",
        "each auction's opening increase",
        ("positional predicate",),
    ),
    SuiteQuery(
        "S07-last",
        "//open_auction/bidder[last()]",
        "each auction's most recent bidder",
        ("last()",),
    ),
    SuiteQuery(
        "S08-count-compare",
        "//open_auction[count(bidder) >= 3]",
        "bidding wars",
        ("count()", "relational"),
    ),
    SuiteQuery(
        "S09-value-filter",
        '//person[profile/education = "Graduate School"]',
        "by education string value",
        ("value comparison", "nested path"),
    ),
    SuiteQuery(
        "S10-attribute",
        '//person[@id = "person0"]/name',
        "point lookup via attribute",
        ("attribute axis", "value comparison"),
    ),
    SuiteQuery(
        "S11-union",
        "//seller | //buyer",
        "everyone on either side of a sale",
        ("union",),
    ),
    SuiteQuery(
        "S12-arithmetic",
        "//open_auction[initial + 20 < current]",
        "auctions whose price rose by more than 20",
        ("arithmetic", "relational"),
    ),
    SuiteQuery(
        "S13-string-function",
        '//item[starts-with(location, "A")]',
        "items from locations starting with A",
        ("starts-with()",),
    ),
    SuiteQuery(
        "S14-following-sibling",
        "//bidder[1]/following-sibling::bidder",
        "all non-opening bidders",
        ("following-sibling",),
    ),
    SuiteQuery(
        "S15-text-nodes",
        "//profile/education/text()",
        "raw education text",
        ("text()",),
    ),
    SuiteQuery(
        "S16-deep-or-self",
        "//description//keyword",
        "keywords at any description depth",
        ("descendant-or-self", "nested //"),
    ),
)
