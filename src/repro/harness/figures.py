"""ASCII rendering of the paper's log-scale figures.

The experiment benches print series tables; this module additionally
renders them as terminal charts so the *shape* of Figure 11 — straight
lines on log axes, flat skipping curves, the factor gaps between
systems — is visible at a glance without plotting dependencies.

Charts use a log-10 y-axis (the paper's figures all do) and place one
letter per series at the grid cell nearest each (x, y) sample.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

__all__ = ["ascii_chart"]


def _log(value: float) -> float:
    return math.log10(max(value, 1e-12))


def ascii_chart(
    rows: Sequence[Dict],
    x: str,
    series: Sequence[str],
    width: int = 60,
    height: int = 16,
    title: str = "",
) -> str:
    """Render ``series`` columns of ``rows`` over ``x`` as a log-y chart.

    Returns a multi-line string: a title, the grid with a 10-power
    y-axis scale, and a legend mapping letters to series names.  Rows
    with non-positive values are clamped to the bottom of the scale.
    """
    rows = list(rows)
    if not rows or not series:
        return "(no data)"
    markers = "ABCDEFGHIJ"
    xs = [float(row[x]) for row in rows]
    x_low, x_high = _log(min(xs)), _log(max(xs))
    if x_high == x_low:
        x_high = x_low + 1.0

    values: List[float] = []
    for name in series:
        values.extend(float(row[name]) for row in rows if row.get(name) is not None)
    positive = [v for v in values if v > 0]
    if not positive:
        return "(no positive data)"
    y_low = math.floor(_log(min(positive)))
    y_high = math.ceil(_log(max(positive)))
    if y_high == y_low:
        y_high = y_low + 1

    grid = [[" "] * width for _ in range(height)]
    for index, name in enumerate(series):
        marker = markers[index % len(markers)]
        for row in rows:
            value = row.get(name)
            if value is None:
                continue
            gx = int(round((_log(float(row[x])) - x_low) / (x_high - x_low) * (width - 1)))
            gy = int(
                round((_log(float(value)) - y_low) / (y_high - y_low) * (height - 1))
            )
            gy = min(max(gy, 0), height - 1)
            line = height - 1 - gy
            grid[line][gx] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    for line_index, line in enumerate(grid):
        # Scale label at the rows that land on integer powers of ten.
        fraction = (height - 1 - line_index) / (height - 1)
        level = y_low + fraction * (y_high - y_low)
        if abs(level - round(level)) < 0.5 / (height - 1) * (y_high - y_low):
            label = f"1e{int(round(level)):+03d}"
        else:
            label = ""
        lines.append(f"{label:>6s} |{''.join(line)}")
    axis = f"{'':>6s} +{'-' * width}"
    lines.append(axis)
    x_labels = f"{rows[0][x]}".ljust(width // 2) + f"{rows[-1][x]}".rjust(width // 2)
    lines.append(f"{'':>6s}  {x_labels}   (x: {x}, log-log)")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"{'':>6s}  {legend}")
    return "\n".join(lines)
