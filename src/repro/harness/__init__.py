"""Experiment harness: workloads, runners and reporting.

One function per paper artefact (see DESIGN.md's experiment index); the
``benchmarks/`` suite and the examples call into this package so that
"regenerate Figure 11(c)" is a single call that prints the same series
the paper plots.
"""

from repro.harness.experiments import (
    cache_model_report,
    experiment1_duplicates,
    experiment2_skipping,
    experiment3_comparison,
    fragmentation_experiment,
    table1_intermediary_sizes,
)
from repro.harness.figures import ascii_chart
from repro.harness.reporting import format_series, format_table
from repro.harness.workloads import (
    DEFAULT_SIZES,
    Q1,
    Q2,
    figure1_document,
    figure1_table,
    get_document,
)

__all__ = [
    "Q1",
    "Q2",
    "DEFAULT_SIZES",
    "figure1_document",
    "figure1_table",
    "get_document",
    "table1_intermediary_sizes",
    "experiment1_duplicates",
    "experiment2_skipping",
    "experiment3_comparison",
    "fragmentation_experiment",
    "cache_model_report",
    "format_table",
    "format_series",
    "ascii_chart",
]
