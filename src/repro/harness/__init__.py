"""Experiment harness: workloads, runners and reporting.

One function per paper artefact (see DESIGN.md's experiment index); the
``benchmarks/`` suite and the examples call into this package so that
"regenerate Figure 11(c)" is a single call that prints the same series
the paper plots.
"""

from repro.harness.workloads import (
    Q1,
    Q2,
    DEFAULT_SIZES,
    figure1_document,
    figure1_table,
    get_document,
)
from repro.harness.experiments import (
    table1_intermediary_sizes,
    experiment1_duplicates,
    experiment2_skipping,
    experiment3_comparison,
    fragmentation_experiment,
    cache_model_report,
)
from repro.harness.figures import ascii_chart
from repro.harness.reporting import format_table, format_series

__all__ = [
    "Q1",
    "Q2",
    "DEFAULT_SIZES",
    "figure1_document",
    "figure1_table",
    "get_document",
    "table1_intermediary_sizes",
    "experiment1_duplicates",
    "experiment2_skipping",
    "experiment3_comparison",
    "fragmentation_experiment",
    "cache_model_report",
    "format_table",
    "format_series",
    "ascii_chart",
]
