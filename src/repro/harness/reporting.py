"""Plain-text table/series rendering for experiment output.

The benchmarks print through these helpers so that running, say,
``pytest benchmarks/bench_fig11c_skipping_nodes.py --benchmark-only``
shows the same rows/series the paper's figure plots — no plotting
dependencies, just aligned columns.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

__all__ = ["format_table", "format_series"]


def _render(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or (0 < abs(value) < 0.001):
            return f"{value:.3e}"
        if abs(value) < 1:
            return f"{value:.4f}"
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[Dict], columns: Iterable[str] = ()) -> str:
    """Render dict-rows as an aligned text table.

    ``columns`` selects and orders the columns; when empty, the keys of
    the first row are used in insertion order.
    """
    rows = list(rows)
    if not rows:
        return "(no rows)"
    columns = list(columns) or list(rows[0].keys())
    table: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        table.append([_render(row.get(c, "")) for c in columns])
    widths = [max(len(line[i]) for line in table) for i in range(len(columns))]
    out = []
    for index, line in enumerate(table):
        out.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(line)))
        if index == 0:
            out.append("  ".join("-" * widths[i] for i in range(len(columns))))
    return "\n".join(out)


def format_series(rows: Sequence[Dict], x: str, series: Sequence[str]) -> str:
    """Render selected columns as named series over an x column.

    Matches the log-scale figure layout: one line per series, values
    aligned under their x positions.
    """
    rows = list(rows)
    if not rows:
        return "(no data)"
    header = [x] + [_render(row[x]) for row in rows]
    lines = ["  ".join(header)]
    for name in series:
        cells = [name] + [_render(row.get(name, "")) for row in rows]
        lines.append("  ".join(cells))
    width = max(len(line.split("  ")[0]) for line in lines)
    formatted = []
    for line in lines:
        head, *rest = line.split("  ")
        formatted.append("  ".join([head.ljust(width)] + rest))
    return "\n".join(formatted)
