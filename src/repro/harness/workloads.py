"""The paper's workloads: the Figure 1 document and queries Q1/Q2.

Also maintains a process-wide cache of generated XMark documents so the
test and benchmark suites do not re-generate (and re-encode) the same
instance per measurement.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.encoding.doctable import DocTable
from repro.encoding.prepost import encode
from repro.xmark.generator import XMarkConfig, generate
from repro.xmltree.model import Node, element

__all__ = [
    "Q1",
    "Q2",
    "Q2_REWRITTEN",
    "DEFAULT_SIZES",
    "figure1_document",
    "figure1_table",
    "get_document",
    "get_forest",
]

#: Q1: ``/descendant::profile/descendant::education`` (Table 1).
Q1 = "/descendant::profile/descendant::education"

#: Q2: ``/descendant::increase/ancestor::bidder`` (Table 1).
Q2 = "/descendant::increase/ancestor::bidder"

#: The Olteanu symmetry rewrite of Q2 the paper fed to DB2.
Q2_REWRITTEN = "/descendant::bidder[descendant::increase]"

#: Nominal document sizes (MB) for the size sweeps.  The paper sweeps
#: 1.1–1111 MB; a Python interpreter pays ~100 ns where the paper's C
#: loop paid ~8 ns, so the ladder is shifted down by one decade while
#: keeping the factor-10 spacing of the log-scale figures.
DEFAULT_SIZES = (0.11, 1.1, 11.0)

_document_cache: Dict[Tuple[float, int], DocTable] = {}


def figure1_document() -> Node:
    """The 10-node document of Figure 1: ``a(b(c), d, e(f(g,h), i(j)))``.

    Encoding it yields exactly the pre/post table of Figure 2
    (``a → (0,9)``, ``b → (1,1)``, ``c → (2,0)``, ``d → (3,2)``, ...,
    ``j → (9,6)``).
    """
    return element(
        "a",
        element("b", element("c")),
        element("d"),
        element(
            "e",
            element("f", element("g"), element("h")),
            element("i", element("j")),
        ),
    )


def figure1_table() -> DocTable:
    """The Figure 2 ``doc`` table."""
    return encode(figure1_document())


def get_document(size_mb: float, seed: int = 2003) -> DocTable:
    """A cached, encoded XMark instance of nominal size ``size_mb``."""
    key = (size_mb, seed)
    if key not in _document_cache:
        config = XMarkConfig(seed=seed)
        _document_cache[key] = encode(generate(size_mb, config))
    return _document_cache[key]


_forest_cache: Dict[Tuple[int, float, int], List[Tuple[str, Node]]] = {}


def get_forest(
    count: int, size_mb: float, seed: int = 2003
) -> List[Tuple[str, Node]]:
    """``count`` distinct XMark trees for collection / sharded-store tests.

    Each member gets its own generator seed (``seed + i``), so the trees
    differ in content while staying fully deterministic.  Returned as
    ``(name, tree)`` pairs ready for :class:`DocumentCollection` or
    :meth:`repro.service.ShardedStore.build`; cached process-wide like
    :func:`get_document`.
    """
    key = (count, size_mb, seed)
    if key not in _forest_cache:
        _forest_cache[key] = [
            (f"xmark-{i:02d}", generate(size_mb, XMarkConfig(seed=seed + i)))
            for i in range(count)
        ]
    return _forest_cache[key]
