"""In-memory XML document model.

A document is a tree of :class:`Node` objects.  The node kinds mirror the
ones the XPath data model (and therefore the pre/post encoding) must
distinguish: the document root, elements, attributes, text, comments and
processing instructions.  Attributes are ordinary child nodes flagged with
``NodeKind.ATTRIBUTE`` — the paper encodes attributes in the pre/post plane
too and filters them during axis steps ("We use a special encoding for
attribute nodes, which allow them to be filtered out if needed", Section 3).

The model is intentionally simple and explicit: plain attributes, no
namespace machinery (the paper's queries never use namespaces), and small
helper constructors (:func:`element`, :func:`text`, ...) so documents can be
built programmatically in tests and by the XMark generator.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Iterator, List, Optional

__all__ = [
    "NodeKind",
    "Node",
    "document",
    "element",
    "attribute",
    "text",
    "comment",
    "processing_instruction",
]


class NodeKind(IntEnum):
    """XPath node kinds recognised by the encoding.

    The integer values are stable: they are stored verbatim in the ``kind``
    column of the :class:`~repro.encoding.doctable.DocTable`.
    """

    DOCUMENT = 0
    ELEMENT = 1
    ATTRIBUTE = 2
    TEXT = 3
    COMMENT = 4
    PROCESSING_INSTRUCTION = 5


class Node:
    """One node of an XML document tree.

    Parameters
    ----------
    kind:
        The :class:`NodeKind` of this node.
    name:
        Tag name for elements, attribute name for attributes, target for
        processing instructions; empty for document/text/comment nodes.
    value:
        Text content for text/comment/attribute/PI nodes; empty otherwise.

    Notes
    -----
    * ``children`` holds attributes *first* (in definition order) followed by
      the other children in document order.  This matches the convention of
      the XPath accelerator: an element's attributes receive the preorder
      ranks immediately after the element itself.
    * Nodes know their ``parent``; the encoder uses this to derive the
      ``parent`` column used by the child/parent/sibling axes.
    """

    __slots__ = ("kind", "name", "value", "children", "parent")

    def __init__(self, kind: NodeKind, name: str = "", value: str = ""):
        self.kind = kind
        self.name = name
        self.value = value
        self.children: List[Node] = []
        self.parent: Optional[Node] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def append(self, child: "Node") -> "Node":
        """Attach ``child`` as the last child of this node and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def extend(self, children: List["Node"]) -> "Node":
        """Attach several children in order and return ``self``."""
        for child in children:
            self.append(child)
        return self

    def set_attribute(self, name: str, value: str) -> "Node":
        """Add an attribute node, keeping attributes ahead of other children."""
        attr = Node(NodeKind.ATTRIBUTE, name=name, value=value)
        attr.parent = self
        insert_at = sum(1 for c in self.children if c.kind == NodeKind.ATTRIBUTE)
        self.children.insert(insert_at, attr)
        return attr

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def is_element(self) -> bool:
        return self.kind == NodeKind.ELEMENT

    @property
    def is_attribute(self) -> bool:
        return self.kind == NodeKind.ATTRIBUTE

    @property
    def attributes(self) -> List["Node"]:
        """The attribute children, in definition order."""
        return [c for c in self.children if c.kind == NodeKind.ATTRIBUTE]

    @property
    def element_children(self) -> List["Node"]:
        """Child elements only (no attributes, text, comments, PIs)."""
        return [c for c in self.children if c.kind == NodeKind.ELEMENT]

    @property
    def non_attribute_children(self) -> List["Node"]:
        """Children as XPath's child axis sees them (attributes excluded)."""
        return [c for c in self.children if c.kind != NodeKind.ATTRIBUTE]

    def get_attribute(self, name: str) -> Optional[str]:
        """Return the value of attribute ``name``, or ``None``."""
        for child in self.children:
            if child.kind == NodeKind.ATTRIBUTE and child.name == name:
                return child.value
        return None

    def find(self, tag: str) -> Optional["Node"]:
        """Return the first descendant element with tag ``tag`` (or None)."""
        for node in self.iter_preorder():
            if node is not self and node.kind == NodeKind.ELEMENT and node.name == tag:
                return node
        return None

    def text_content(self) -> str:
        """Concatenation of all descendant text node values (string value)."""
        parts = []
        for node in self.iter_preorder():
            if node.kind == NodeKind.TEXT:
                parts.append(node.value)
        return "".join(parts)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def iter_preorder(self) -> Iterator["Node"]:
        """Yield this node and all descendants in document (preorder) order.

        Iterative, so arbitrarily deep documents do not hit the Python
        recursion limit (XMark documents are shallow, but parser tests
        exercise pathological depth).
        """
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_postorder(self) -> Iterator["Node"]:
        """Yield this node and all descendants in postorder."""
        # Two-stack iterative postorder.
        stack = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
            else:
                stack.append((node, True))
                stack.extend((c, False) for c in reversed(node.children))

    def ancestors(self) -> Iterator["Node"]:
        """Yield the proper ancestors of this node, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def level(self) -> int:
        """Path length from the root to this node (root has level 0)."""
        return sum(1 for _ in self.ancestors())

    def subtree_size(self) -> int:
        """Number of nodes in the subtree rooted here (including self)."""
        return sum(1 for _ in self.iter_preorder())

    def height(self) -> int:
        """Height of the subtree rooted here (single node has height 0)."""
        if not self.children:
            return 0
        return 1 + max(c.height() for c in self.children)

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind == NodeKind.ELEMENT:
            return f"<Node element {self.name!r} children={len(self.children)}>"
        if self.kind == NodeKind.ATTRIBUTE:
            return f"<Node attribute {self.name!r}={self.value!r}>"
        if self.kind == NodeKind.TEXT:
            preview = self.value if len(self.value) <= 20 else self.value[:17] + "..."
            return f"<Node text {preview!r}>"
        return f"<Node {self.kind.name.lower()}>"


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def document(root: Optional[Node] = None) -> Node:
    """Create a document node, optionally wrapping a root element."""
    doc = Node(NodeKind.DOCUMENT)
    if root is not None:
        doc.append(root)
    return doc


def element(tag: str, *children: Node, **attrs: str) -> Node:
    """Create an element; keyword arguments become attributes.

    Example
    -------
    >>> n = element("bidder", element("increase"), date="2003-05-12")
    >>> n.get_attribute("date")
    '2003-05-12'
    """
    node = Node(NodeKind.ELEMENT, name=tag)
    for name, value in attrs.items():
        node.set_attribute(name, value)
    node.extend(list(children))
    return node


def attribute(name: str, value: str) -> Node:
    """Create a detached attribute node."""
    return Node(NodeKind.ATTRIBUTE, name=name, value=value)


def text(value: str) -> Node:
    """Create a text node."""
    return Node(NodeKind.TEXT, value=value)


def comment(value: str) -> Node:
    """Create a comment node."""
    return Node(NodeKind.COMMENT, value=value)


def processing_instruction(target: str, data: str = "") -> Node:
    """Create a processing-instruction node."""
    return Node(NodeKind.PROCESSING_INSTRUCTION, name=target, value=data)
