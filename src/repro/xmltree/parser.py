"""A small, strict, from-scratch XML parser.

Supports the XML subset the experiments need (which is also the subset XMark
documents use): elements, attributes, character data, CDATA sections,
comments, processing instructions, the five predefined entities plus decimal
and hexadecimal character references, and an optional XML declaration and
DOCTYPE (both skipped).  Namespaces are treated as plain colonised names.

The parser is a straightforward single-pass recursive-descent scanner over
the input string.  It is strict about well-formedness (mismatched tags,
unterminated constructs and stray ``<`` are syntax errors with line/column
information) because the document encoder downstream assumes a well-formed
tree.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import XMLSyntaxError
from repro.xmltree.model import Node, NodeKind

__all__ = ["parse", "parse_file"]

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")
_WHITESPACE = set(" \t\r\n")


class _Scanner:
    """Cursor over the XML text with line/column tracking for errors."""

    __slots__ = ("text", "pos", "length")

    def __init__(self, xml_text: str):
        self.text = xml_text
        self.pos = 0
        self.length = len(xml_text)

    # -- error reporting ------------------------------------------------
    def error(self, message: str, at: Optional[int] = None) -> XMLSyntaxError:
        pos = self.pos if at is None else at
        line = self.text.count("\n", 0, pos) + 1
        last_nl = self.text.rfind("\n", 0, pos)
        column = pos - last_nl
        return XMLSyntaxError(message, line=line, column=column)

    # -- primitives -----------------------------------------------------
    def at_end(self) -> bool:
        return self.pos >= self.length

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < self.length else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos] in _WHITESPACE:
            self.pos += 1

    def read_until(self, token: str, construct: str) -> str:
        """Consume text up to ``token`` (token consumed too) and return it."""
        end = self.text.find(token, self.pos)
        if end < 0:
            raise self.error(f"unterminated {construct}")
        chunk = self.text[self.pos : end]
        self.pos = end + len(token)
        return chunk

    def read_name(self) -> str:
        start = self.pos
        if self.at_end() or self.text[self.pos] not in _NAME_START:
            raise self.error("expected a name")
        self.pos += 1
        while self.pos < self.length and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        return self.text[start : self.pos]


def _decode_references(raw: str, scanner: _Scanner, at: int) -> str:
    """Replace entity and character references in ``raw``."""
    if "&" not in raw:
        return raw
    out = []
    i = 0
    n = len(raw)
    while i < n:
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i + 1)
        if end < 0:
            raise scanner.error("unterminated entity reference", at=at + i)
        body = raw[i + 1 : end]
        if body.startswith("#x") or body.startswith("#X"):
            try:
                out.append(chr(int(body[2:], 16)))
            except ValueError:
                raise scanner.error(f"bad character reference &{body};", at=at + i)
        elif body.startswith("#"):
            try:
                out.append(chr(int(body[1:], 10)))
            except ValueError:
                raise scanner.error(f"bad character reference &{body};", at=at + i)
        elif body in _PREDEFINED_ENTITIES:
            out.append(_PREDEFINED_ENTITIES[body])
        else:
            raise scanner.error(f"unknown entity &{body};", at=at + i)
        i = end + 1
    return "".join(out)


def _parse_attributes(scanner: _Scanner, node: Node) -> None:
    """Parse ``name="value"`` pairs until ``>`` or ``/>``."""
    seen = set()
    while True:
        scanner.skip_whitespace()
        ch = scanner.peek()
        if ch in (">", "/") or ch == "":
            return
        at = scanner.pos
        name = scanner.read_name()
        if name in seen:
            raise scanner.error(f"duplicate attribute {name!r}", at=at)
        seen.add(name)
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise scanner.error("attribute value must be quoted")
        scanner.pos += 1
        value_at = scanner.pos
        raw = scanner.read_until(quote, "attribute value")
        if "<" in raw:
            raise scanner.error("'<' not allowed in attribute value", at=value_at)
        node.set_attribute(name, _decode_references(raw, scanner, value_at))


def _parse_misc(scanner: _Scanner, parent: Node) -> bool:
    """Parse one comment/PI/whitespace item at document level.

    Returns True if something was consumed.
    """
    scanner.skip_whitespace()
    if scanner.startswith("<!--"):
        scanner.pos += 4
        value = scanner.read_until("-->", "comment")
        if "--" in value:
            raise scanner.error("'--' not allowed inside a comment")
        parent.append(Node(NodeKind.COMMENT, value=value))
        return True
    if scanner.startswith("<?"):
        scanner.pos += 2
        target = scanner.read_name()
        scanner.skip_whitespace()
        data = scanner.read_until("?>", "processing instruction")
        if target.lower() == "xml":
            return True  # XML declaration: accepted, not materialised
        parent.append(Node(NodeKind.PROCESSING_INSTRUCTION, name=target, value=data))
        return True
    if scanner.startswith("<!DOCTYPE"):
        # Skip the doctype, honouring one level of [...] internal subset.
        depth = 0
        while not scanner.at_end():
            ch = scanner.text[scanner.pos]
            scanner.pos += 1
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == ">" and depth <= 0:
                return True
        raise scanner.error("unterminated DOCTYPE")
    return False


def _parse_start_tag(scanner: _Scanner) -> Tuple[Node, bool]:
    """Parse ``<tag attrs...`` up to ``>`` or ``/>``.

    Returns the element node and whether it self-closed.
    """
    scanner.expect("<")
    tag = scanner.read_name()
    node = Node(NodeKind.ELEMENT, name=tag)
    _parse_attributes(scanner, node)
    for attr in node.children:
        attr.parent = node
    scanner.skip_whitespace()
    if scanner.startswith("/>"):
        scanner.pos += 2
        return node, True
    scanner.expect(">")
    return node, False


def _parse_element(scanner: _Scanner) -> Node:
    """Parse one element subtree (the scanner is positioned on its ``<``).

    Iterative with an explicit open-element stack, so document depth is
    bounded by memory, not the Python recursion limit.
    """
    root, closed = _parse_start_tag(scanner)
    if closed:
        return root
    stack: List[Node] = [root]
    text_parts: List[str] = []

    def flush_text() -> None:
        if text_parts:
            stack[-1].append(Node(NodeKind.TEXT, value="".join(text_parts)))
            text_parts.clear()

    while stack:
        if scanner.at_end():
            raise scanner.error(f"unterminated element <{stack[-1].name}>")
        ch = scanner.peek()
        if ch != "<":
            start = scanner.pos
            next_lt = scanner.text.find("<", start)
            if next_lt < 0:
                next_lt = scanner.length
            raw = scanner.text[start:next_lt]
            scanner.pos = next_lt
            text_parts.append(_decode_references(raw, scanner, start))
            continue
        if scanner.startswith("</"):
            flush_text()
            scanner.pos += 2
            close_tag = scanner.read_name()
            open_node = stack.pop()
            if close_tag != open_node.name:
                raise scanner.error(
                    f"mismatched closing tag: expected </{open_node.name}>, "
                    f"got </{close_tag}>"
                )
            scanner.skip_whitespace()
            scanner.expect(">")
        elif scanner.startswith("<!--"):
            flush_text()
            scanner.pos += 4
            value = scanner.read_until("-->", "comment")
            if "--" in value:
                raise scanner.error("'--' not allowed inside a comment")
            stack[-1].append(Node(NodeKind.COMMENT, value=value))
        elif scanner.startswith("<![CDATA["):
            scanner.pos += 9
            text_parts.append(scanner.read_until("]]>", "CDATA section"))
        elif scanner.startswith("<?"):
            flush_text()
            scanner.pos += 2
            target = scanner.read_name()
            scanner.skip_whitespace()
            data = scanner.read_until("?>", "processing instruction")
            stack[-1].append(
                Node(NodeKind.PROCESSING_INSTRUCTION, name=target, value=data)
            )
        else:
            flush_text()
            child, child_closed = _parse_start_tag(scanner)
            stack[-1].append(child)
            if not child_closed:
                stack.append(child)
    return root


def parse(xml_text: str, keep_whitespace_text: bool = False) -> Node:
    """Parse ``xml_text`` and return the document node.

    Parameters
    ----------
    xml_text:
        The XML document as a string.
    keep_whitespace_text:
        When ``False`` (the default), text nodes consisting purely of
        whitespace are dropped.  Pretty-printed documents otherwise encode
        large numbers of meaningless text nodes, distorting node counts.

    Returns
    -------
    Node
        A ``NodeKind.DOCUMENT`` node whose children are the top-level
        comments/PIs and exactly one root element.
    """
    scanner = _Scanner(xml_text)
    doc = Node(NodeKind.DOCUMENT)

    while _parse_misc(scanner, doc):
        pass
    scanner.skip_whitespace()
    if scanner.at_end() or scanner.peek() != "<":
        raise scanner.error("expected a root element")
    doc.append(_parse_element(scanner))
    while _parse_misc(scanner, doc):
        pass
    scanner.skip_whitespace()
    if not scanner.at_end():
        raise scanner.error("content after the root element")

    if not keep_whitespace_text:
        _strip_whitespace_text(doc)
    return doc


def _strip_whitespace_text(doc: Node) -> None:
    """Remove whitespace-only text nodes from the whole tree, in place."""
    stack = [doc]
    while stack:
        node = stack.pop()
        kept = []
        for child in node.children:
            if child.kind == NodeKind.TEXT and not child.value.strip():
                continue
            kept.append(child)
        node.children = kept
        stack.extend(kept)


def parse_file(path: str, keep_whitespace_text: bool = False) -> Node:
    """Parse the XML document stored at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse(handle.read(), keep_whitespace_text=keep_whitespace_text)
