"""From-scratch XML substrate: document model, parser and serializer.

The paper's system stores *parsed* XML documents; the XPath accelerator
(:mod:`repro.encoding`) consumes the node trees built here.  We implement our
own small XML layer rather than relying on library machinery so that the node
model matches exactly the node kinds the pre/post encoding distinguishes
(elements, attributes, text, comments, processing instructions — Figure 1's
caption enumerates them).
"""

from repro.xmltree.model import (
    Node,
    NodeKind,
    comment,
    document,
    element,
    processing_instruction,
    text,
)
from repro.xmltree.parser import parse, parse_file
from repro.xmltree.serializer import serialize, write_file

__all__ = [
    "Node",
    "NodeKind",
    "document",
    "element",
    "text",
    "comment",
    "processing_instruction",
    "parse",
    "parse_file",
    "serialize",
    "write_file",
]
