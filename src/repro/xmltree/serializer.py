"""Serialize node trees back to XML text.

The serializer is the inverse of :mod:`repro.xmltree.parser` for the node
model we support; ``parse(serialize(doc))`` reproduces the tree (a property
the test suite checks with hypothesis-generated random documents).  The XMark
generator uses it to materialise documents to disk for the parser round-trip
experiments.
"""

from __future__ import annotations

from typing import List

from repro.xmltree.model import Node, NodeKind

__all__ = ["serialize", "write_file"]


def _escape_text(value: str) -> str:
    """Escape character data content."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def _escape_attribute(value: str) -> str:
    """Escape an attribute value for double-quoted output."""
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\n", "&#10;")
        .replace("\t", "&#9;")
    )


def _serialize_node(node: Node, out: List[str], indent: int, pretty: bool) -> None:
    pad = "  " * indent if pretty else ""
    newline = "\n" if pretty else ""
    if node.kind == NodeKind.TEXT:
        out.append(_escape_text(node.value))
        return
    if node.kind == NodeKind.COMMENT:
        out.append(f"{pad}<!--{node.value}-->{newline}")
        return
    if node.kind == NodeKind.PROCESSING_INSTRUCTION:
        data = f" {node.value}" if node.value else ""
        out.append(f"{pad}<?{node.name}{data}?>{newline}")
        return
    if node.kind == NodeKind.ATTRIBUTE:
        # Attributes are emitted by their owning element, never standalone.
        return

    # Element
    attrs = "".join(
        f' {a.name}="{_escape_attribute(a.value)}"' for a in node.attributes
    )
    content = node.non_attribute_children
    if not content:
        out.append(f"{pad}<{node.name}{attrs}/>{newline}")
        return
    has_text = any(c.kind == NodeKind.TEXT for c in content)
    if has_text or not pretty:
        # Mixed content: do not introduce whitespace.
        out.append(f"{pad}<{node.name}{attrs}>")
        for child in content:
            _serialize_node(child, out, 0, pretty=False)
        out.append(f"</{node.name}>{newline}")
    else:
        out.append(f"{pad}<{node.name}{attrs}>{newline}")
        for child in content:
            _serialize_node(child, out, indent + 1, pretty)
        out.append(f"{pad}</{node.name}>{newline}")


def serialize(node: Node, pretty: bool = False, declaration: bool = True) -> str:
    """Render ``node`` (a document or element) as XML text.

    Parameters
    ----------
    node:
        A document node or a standalone element.
    pretty:
        Indent element-only content for human inspection.  Mixed content is
        never re-indented (that would change the document's text nodes).
    declaration:
        Emit ``<?xml version="1.0" encoding="UTF-8"?>`` for document nodes.
    """
    out: List[str] = []
    if node.kind == NodeKind.DOCUMENT:
        if declaration:
            out.append('<?xml version="1.0" encoding="UTF-8"?>')
            out.append("\n" if pretty else "")
        for child in node.children:
            _serialize_node(child, out, 0, pretty)
    else:
        _serialize_node(node, out, 0, pretty)
    return "".join(out)


def write_file(node: Node, path: str, pretty: bool = False) -> None:
    """Serialize ``node`` and write it to ``path`` as UTF-8."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(serialize(node, pretty=pretty))
