"""The epoch-versioned feedback store: EWMA-aggregated observations.

A :class:`FeedbackStore` lives on a :class:`~repro.service.store.ShardedStore`
(``store.feedback``) and turns the :class:`~repro.feedback.records.DriveObservation`
stream the execution backends sample into three durable aggregates:

* per ``(shard, step-signature)`` **selectivity** — the EWMA of each
  operator's observed output/input ratio, the planner's correction term
  over its static histogram estimates;
* per-shard **skip efficacy** — the EWMA fraction of staircase nodes the
  scalar join skipped, from which :meth:`tuned_skip_mode` derives a
  per-shard :class:`~repro.core.staircase.SkipMode` override;
* per-shard **heat** — cumulative measured wall time, steering the
  bounded split/merge rebalancing of ``ShardedStore.apply_updates``.

The store carries a **generation** counter (the plan epoch): it bumps
only when an aggregate moves far enough to change planning, and every
plan-cache and planner key in the service includes it — a re-planned
query can never be served from a stale cached plan, exactly as the
store epoch fences result caches across commits.

Aggregates serialize into the sharded store's manifest
(:meth:`to_manifest` / :meth:`from_manifest`), so learned selectivities
survive a close/reopen and are dropped per shard when a commit removes
the shard they describe (:meth:`retain_shards`).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["FeedbackStore"]

#: Signature tuples are serialized into JSON manifests as one string;
#: the unit separator cannot appear in an XPath spelling.
_SIG_SEP = "\x1f"


class _Ewma:
    """One exponentially weighted aggregate with a sample count."""

    __slots__ = ("value", "n")

    def __init__(self, value: float = 0.0, n: int = 0):
        self.value = float(value)
        self.n = int(n)

    def update(self, sample: float, alpha: float) -> None:
        if self.n == 0:
            self.value = float(sample)
        else:
            self.value += alpha * (float(sample) - self.value)
        self.n += 1


class FeedbackStore:
    """Aggregate runtime observations; version them with a generation.

    Thread-safe: the service absorbs from its batch path while planners
    read concurrently, all under one internal lock.  Methods suffixed
    ``_locked`` follow the repo convention — the caller holds ``_lock``.
    """

    #: EWMA step for selectivity/skip aggregates: heavy enough that a
    #: workload shift re-learns within ~10 sampled drives, light enough
    #: that one outlier drive cannot flip a plan.
    ALPHA = 0.3
    #: An aggregate must move by this *relative* amount (against a small
    #: absolute floor) since the last published generation to bump it —
    #: jitter around a stable selectivity must not thrash plan caches.
    PUBLISH_DELTA = 0.25
    #: Minimum sampled drives before a shard's skip efficacy may
    #: override the planner's static skip mode.
    MIN_SKIP_SAMPLES = 4
    #: Skip fraction below which Algorithm 4's estimate bookkeeping is
    #: pure overhead (override to NONE) / above which it clearly pays
    #: (override to ESTIMATE even on planes the planner deems small).
    SKIP_LOW = 0.02
    SKIP_HIGH = 0.20

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: (shard_id, signature) → selectivity EWMA
        self._signatures: Dict[Tuple[int, Tuple[str, ...]], _Ewma] = {}  # guarded-by: _lock
        #: shard_id → [cumulative ns, sampled drives]
        self._heat: Dict[int, List[int]] = {}  # guarded-by: _lock
        #: shard_id → skip-fraction EWMA
        self._skip: Dict[int, _Ewma] = {}  # guarded-by: _lock
        #: ratio published at the last generation bump, per signature key
        self._published: Dict[Tuple[int, Tuple[str, ...]], float] = {}  # guarded-by: _lock
        self._generation = 0  # guarded-by: _lock
        self._dirty = False  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Absorbing observations
    # ------------------------------------------------------------------
    def absorb(self, observations: Iterable) -> bool:
        """Fold a batch of :class:`DriveObservation` in; returns whether
        the generation advanced (i.e. plans should be re-costed)."""
        bumped = False
        with self._lock:
            for drive in observations:
                shard = int(drive.shard_id)
                heat = self._heat.setdefault(shard, [0, 0])
                heat[0] += int(drive.elapsed_ns)
                heat[1] += 1
                touched = drive.scanned + drive.skipped
                if drive.engine == "scalar" and touched > 0:
                    skip = self._skip.setdefault(shard, _Ewma())
                    skip.update(drive.skipped / touched, self.ALPHA)
                for step in drive.steps:
                    key = (shard, tuple(step.signature))
                    cell = self._signatures.get(key)
                    if cell is None:
                        cell = self._signatures[key] = _Ewma()
                    cell.update(step.n_out / max(1, step.n_in), self.ALPHA)
                    if self._moved_locked(key, cell.value):
                        self._published[key] = cell.value
                        bumped = True
                self._dirty = True
            if bumped:
                self._generation += 1
        return bumped

    def _moved_locked(
        self, key: Tuple[int, Tuple[str, ...]], value: float
    ) -> bool:
        """Has ``key``'s aggregate moved enough to publish a new
        generation?  New signatures always publish."""
        published = self._published.get(key)
        if published is None:
            return True
        return abs(value - published) > self.PUBLISH_DELTA * max(
            published, 0.05
        )

    # ------------------------------------------------------------------
    # Readers
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """The plan epoch: bumped whenever feedback may change a plan."""
        with self._lock:
            return self._generation

    @property
    def dirty(self) -> bool:
        """Unsaved observations since the last :meth:`to_manifest`?"""
        with self._lock:
            return self._dirty

    def observed(self, signature: Tuple[str, ...]) -> Optional[Tuple[float, int]]:
        """Store-wide observed ratio for one signature.

        Returns ``(ratio, samples)`` — the sample-weighted mean of the
        per-shard EWMAs — or ``None`` when the signature was never
        observed.  The planner blends this over its static estimate.
        """
        with self._lock:
            total = 0.0
            samples = 0
            for (_, sig), cell in self._signatures.items():
                if sig == signature:
                    total += cell.value * cell.n
                    samples += cell.n
            if samples == 0:
                return None
            return total / samples, samples

    def tuned_skip_mode(self, shard_id: int) -> Optional[str]:
        """Per-shard scalar skip-mode override learned from skip efficacy.

        Returns a :class:`~repro.core.staircase.SkipMode` *value* string
        (kept primitive so it rides inside a pickled ShardTask), or
        ``None`` while the evidence is thin or unremarkable.
        """
        with self._lock:
            return self._tuned_skip_locked(int(shard_id))

    def _tuned_skip_locked(self, shard_id: int) -> Optional[str]:
        cell = self._skip.get(shard_id)
        if cell is None or cell.n < self.MIN_SKIP_SAMPLES:
            return None
        if cell.value < self.SKIP_LOW:
            return "none"
        if cell.value > self.SKIP_HIGH:
            return "estimate"
        return None

    def heat_snapshot(self) -> Dict[int, Tuple[int, int]]:
        """shard_id → (cumulative sampled ns, sampled drive count)."""
        with self._lock:
            return {
                shard: (heat[0], heat[1]) for shard, heat in self._heat.items()
            }

    def snapshot(self) -> dict:
        """JSON-friendly summary (the ``/stats`` feedback section)."""
        with self._lock:
            total_ns = sum(heat[0] for heat in self._heat.values()) or 1
            return {
                "generation": self._generation,
                "signatures": len(self._signatures),
                "sampled_drives": sum(h[1] for h in self._heat.values()),
                "shards": {
                    str(shard): {
                        "sampled_ns": heat[0],
                        "drives": heat[1],
                        "heat_share": heat[0] / total_ns,
                        "skip_efficacy": (
                            self._skip[shard].value
                            if shard in self._skip
                            else None
                        ),
                        "tuned_skip": self._tuned_skip_locked(shard),
                    }
                    for shard, heat in self._heat.items()
                },
            }

    # ------------------------------------------------------------------
    # Shard lifecycle (commits, rebalancing)
    # ------------------------------------------------------------------
    def retain_shards(self, shard_ids: Iterable[int]) -> None:
        """Drop aggregates of shards a commit removed — the feedback in
        the manifest always describes the epoch it is written with."""
        live = set(int(s) for s in shard_ids)
        with self._lock:
            for key in [k for k in self._signatures if k[0] not in live]:
                del self._signatures[key]
            for key in [k for k in self._published if k[0] not in live]:
                del self._published[key]
            for table in (self._heat, self._skip):
                for shard in [s for s in table if s not in live]:
                    del table[shard]
            self._dirty = True

    def reset_shard(self, shard_id: int) -> None:
        """Forget one shard's aggregates (its plane just changed shape —
        a rebalance moved documents in or out)."""
        shard = int(shard_id)
        with self._lock:
            for key in [k for k in self._signatures if k[0] == shard]:
                del self._signatures[key]
            for key in [k for k in self._published if k[0] == shard]:
                del self._published[key]
            self._heat.pop(shard, None)
            self._skip.pop(shard, None)
            self._dirty = True

    # ------------------------------------------------------------------
    # Manifest round-trip
    # ------------------------------------------------------------------
    def to_manifest(self) -> dict:
        """The JSON shape persisted inside the store manifest."""
        with self._lock:
            self._dirty = False
            return {
                "generation": self._generation,
                "signatures": [
                    [shard, _SIG_SEP.join(sig), cell.value, cell.n]
                    for (shard, sig), cell in sorted(
                        self._signatures.items(),
                        key=lambda item: (item[0][0], item[0][1]),
                    )
                ],
                "heat": {
                    str(shard): list(heat)
                    for shard, heat in sorted(self._heat.items())
                },
                "skip": {
                    str(shard): [cell.value, cell.n]
                    for shard, cell in sorted(self._skip.items())
                },
            }

    @classmethod
    def from_manifest(cls, data: Optional[dict]) -> "FeedbackStore":
        """Rebuild from :meth:`to_manifest` output (``None`` → empty).

        Loaded aggregates are *published* as-is: reopening a store must
        not spuriously bump the generation on the first absorb.
        """
        store = cls()
        if not data:
            return store
        with store._lock:
            store._generation = int(data.get("generation", 0))
            for shard, joined, value, n in data.get("signatures", ()):
                key = (int(shard), tuple(joined.split(_SIG_SEP)))
                store._signatures[key] = _Ewma(value, n)
                store._published[key] = float(value)
            for shard, heat in data.get("heat", {}).items():
                store._heat[int(shard)] = [int(heat[0]), int(heat[1])]
            for shard, (value, n) in data.get("skip", {}).items():
                store._skip[int(shard)] = _Ewma(value, n)
        return store
