"""Adaptive optimization loop: runtime feedback into the planner.

The paper's cost argument (Section 4.4) leaves the optimizer pricing
from static statistics; this package closes the loop the ROADMAP names
— observe real per-operator cardinalities and wall time on sampled
drives (:mod:`repro.feedback.records`), EWMA-aggregate them into an
epoch-versioned :class:`~repro.feedback.store.FeedbackStore` persisted
with the sharded store's manifest, and feed three consumers: the
cost-based planner's selectivity blend, the per-shard scalar
``SkipMode`` tuner, and heat-driven shard rebalancing at commit time.
"""

from repro.feedback.records import (
    DriveObservation,
    PipelineObserver,
    StepObservation,
    predicate_signature,
    step_signature,
)
from repro.feedback.store import FeedbackStore

__all__ = [
    "DriveObservation",
    "FeedbackStore",
    "PipelineObserver",
    "StepObservation",
    "predicate_signature",
    "step_signature",
]
