"""Observation records: what one sampled ``drive()`` learned.

These are the values that travel from shard workers back to the
service process, so they are deliberately flat — NamedTuples of
primitives (strings, ints, nested tuples) that pickle cheaply through
a pool pipe and inline through the fabric's result messages.  Both are
registered in :data:`repro.analysis.reprolint.PAYLOAD_REGISTRY`.

A **step signature** names one pipeline position independently of the
shard, the epoch, and the pushdown placement, so observations
aggregate across shards and commits and a re-plan can look its own
operators up again:

* ``("step", axis, test)`` — one :class:`StaircaseStep` (the test in
  its ``str`` spelling, e.g. ``("step", "descendant", "item")``);
* ``("pred", axis, predicate)`` — one predicate of a
  :class:`PredicateFilter`, keyed by the predicate's ``str`` form;
* ``("pos", axis, test)`` — one :class:`PositionalSelect`.

The signature helpers live here (not in the pipeline) because the
planner computes the same signatures from the AST side when it blends
observed selectivities into its estimates — one spelling, two readers.
"""

from __future__ import annotations

from typing import List, NamedTuple, Tuple

__all__ = [
    "DriveObservation",
    "PipelineObserver",
    "StepObservation",
    "predicate_signature",
    "step_signature",
]


def step_signature(axis: str, test) -> Tuple[str, str, str]:
    """Signature of one top-level location step (axis + node test)."""
    return ("step", axis, str(test))


def predicate_signature(axis: str, predicate) -> Tuple[str, str, str]:
    """Signature of one predicate, under its step's axis."""
    return ("pred", axis, str(predicate))


class StepObservation(NamedTuple):
    """One operator's measured cardinalities inside one drive.

    ``n_in``/``n_out`` are the context sizes entering and leaving the
    operator (for predicates: the candidate set before and after this
    one predicate), ``ns`` its wall time on the monotonic clock.
    """

    signature: Tuple[str, ...]
    n_in: int
    n_out: int
    ns: int

    @property
    def ratio(self) -> float:
        """Output per input node — the learned selectivity/fan-out."""
        return self.n_out / max(1, self.n_in)


class DriveObservation(NamedTuple):
    """One sampled shard drive: per-operator steps plus shard totals.

    ``scanned``/``skipped`` are the scalar staircase's node-access
    deltas for this drive (the skip-efficacy signal the per-shard
    :class:`~repro.core.staircase.SkipMode` tuner feeds on) and
    ``blocks`` the packed-plane page blocks decoded by it.
    """

    shard_id: int
    engine: str
    elapsed_ns: int
    steps: Tuple[StepObservation, ...] = ()
    scanned: int = 0
    skipped: int = 0
    blocks: int = 0


class PipelineObserver:
    """Collects :class:`StepObservation` values during one drive.

    Attached to an evaluator as ``evaluator.observer`` by the worker
    for *sampled* drives only; the unobserved hot path pays exactly one
    ``None`` check per branch and per predicate filter.
    """

    __slots__ = ("steps",)

    def __init__(self) -> None:
        self.steps: List[StepObservation] = []

    def record(
        self, signature: Tuple[str, ...], n_in: int, n_out: int, ns: int
    ) -> None:
        self.steps.append(
            StepObservation(signature, int(n_in), int(n_out), int(ns))
        )
