"""Per-column codecs for compressed, pageable planes (FORMAT_VERSION 3).

The paper's Section-4 cache-consciousness argument is a memory-hierarchy
argument, and it extends one level down: a plane laid out in fixed-size
page blocks streams through the staircase join from disk the same way
cache lines stream through it from DRAM.  This module provides the three
codecs that make a :class:`~repro.encoding.doctable.DocTable` column
pageable:

* **Frame-of-reference bit-packing** (``CODEC_FOR``) — each fixed-height
  page block stores one ``int64`` reference (the block minimum) plus the
  per-value deltas packed at the block's minimal bit width.  ``level``,
  ``kind``, and the dictionary code vectors compress this way.
* **Position-delta FOR** (``CODEC_DELTA``) — the same, applied to
  ``value − pre`` instead of the raw value.  ``post`` and ``parent``
  track the void ``pre`` column closely (``post − pre`` is the subtree
  size minus the level term of Equation (1); ``parent − pre`` is usually
  a small negative number), so the residuals need a handful of bits
  where the raw values need 20+.
* **Sorted dictionary blobs** — tag and text dictionaries persist as one
  UTF-8 byte blob plus an ``int64`` offset vector, sorted in code-point
  order.  UTF-8 byte order equals code-point order, so
  :func:`dictionary_find` binary-searches the *compressed* blob directly
  — a name test never materialises the dictionary.

:class:`PagedArray` is the query-facing face of a packed column: an
``int64`` vector that decodes one page block at a time, on first touch,
with an LRU over decoded blocks and per-column decode counters.  Scalar
reads, slices, and integer-array gathers touch only the blocks they
cover — ranges the staircase join skips are pages never decoded (and,
under ``mmap``, never faulted in from disk).

Everything here is pure numpy + stdlib; the module sits below
``repro.core`` and ``repro.service`` in the import graph.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import EncodingError

__all__ = [
    "CODEC_FOR",
    "CODEC_DELTA",
    "DEFAULT_PAGE_SIZE",
    "PageDirectory",
    "PlaneStats",
    "pack_int_column",
    "decode_page",
    "decode_column",
    "encode_dictionary",
    "dictionary_entry",
    "dictionary_find",
    "PagedArray",
    "PagedStrings",
]

#: Frame-of-reference: block minimum + bit-packed deltas.
CODEC_FOR = "for"

#: FOR over ``value − pre`` (position-delta); for columns tracking ``pre``.
CODEC_DELTA = "delta"

#: Values per page block.  Must be a power of two: scalar access resolves
#: ``pre → (block, offset)`` with a shift and a mask on the hot path.
DEFAULT_PAGE_SIZE = 1024


def _require_power_of_two(page_size: int) -> int:
    if page_size < 1 or page_size & (page_size - 1):
        raise EncodingError(f"page_size must be a power of two, got {page_size}")
    return int(page_size).bit_length() - 1


# ----------------------------------------------------------------------
# Bit packing (little-endian bit streams via packbits/unpackbits)
# ----------------------------------------------------------------------
def _pack_bits(deltas: np.ndarray, bits: int) -> np.ndarray:
    """Pack non-negative ``uint64`` deltas into a ``bits``-wide bit stream."""
    if bits == 0:
        return np.empty(0, dtype=np.uint8)
    count = deltas.shape[0]
    le_bytes = np.ascontiguousarray(deltas, dtype="<u8").view(np.uint8)
    bit_matrix = np.unpackbits(
        le_bytes.reshape(count, 8), axis=1, bitorder="little"
    )
    return np.packbits(bit_matrix[:, :bits].reshape(-1), bitorder="little")


def _unpack_bits(packed: np.ndarray, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`_pack_bits`; returns ``int64`` deltas."""
    if bits == 0:
        return np.zeros(count, dtype=np.int64)
    bit_stream = np.unpackbits(
        np.ascontiguousarray(packed, dtype=np.uint8),
        count=count * bits,
        bitorder="little",
    ).reshape(count, bits)
    widened = np.zeros((count, 64), dtype=np.uint8)
    widened[:, :bits] = bit_stream
    le_bytes = np.packbits(widened, axis=1, bitorder="little")
    return le_bytes.view("<u8").reshape(count).astype(np.int64)


# ----------------------------------------------------------------------
# Page directory + block codec
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class PageDirectory:
    """Descriptor of one packed column: where every page block lives.

    ``offsets`` has ``n_blocks + 1`` entries; block ``b`` occupies bytes
    ``offsets[b]:offsets[b+1]`` of the packed blob, decoded against
    reference ``refs[b]`` at width ``bits[b]``.  The directory is a
    cross-process payload (fabric tasks may describe shard columns by
    directory), so it is registered in ``PAYLOAD_REGISTRY`` and must
    stay pickle-clean.
    """

    column: str
    codec: str
    page_size: int
    length: int
    refs: np.ndarray  # int64, (n_blocks,)
    bits: np.ndarray  # uint8, (n_blocks,)
    offsets: np.ndarray  # int64, (n_blocks + 1,)

    @property
    def n_blocks(self) -> int:
        return int(self.refs.shape[0])

    @property
    def packed_bytes(self) -> int:
        return int(self.offsets[-1]) if self.offsets.shape[0] else 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PageDirectory):
            return NotImplemented
        return (
            self.column == other.column
            and self.codec == other.codec
            and self.page_size == other.page_size
            and self.length == other.length
            and np.array_equal(self.refs, other.refs)
            and np.array_equal(self.bits, other.bits)
            and np.array_equal(self.offsets, other.offsets)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return hash((self.column, self.codec, self.page_size, self.length))


def pack_int_column(
    column: str,
    values: np.ndarray,
    codec: str = CODEC_FOR,
    page_size: int = DEFAULT_PAGE_SIZE,
) -> Tuple[PageDirectory, np.ndarray]:
    """Bit-pack an integer vector into page blocks.

    Returns the directory plus one contiguous ``uint8`` blob holding all
    blocks back to back (mmap-friendly: a block decode reads exactly its
    byte range).
    """
    _require_power_of_two(page_size)
    if codec not in (CODEC_FOR, CODEC_DELTA):
        raise EncodingError(f"unknown codec {codec!r} for column {column!r}")
    work = np.ascontiguousarray(values, dtype=np.int64)
    if work.ndim != 1:
        raise EncodingError(f"column {column!r} must be one-dimensional")
    n = work.shape[0]
    if codec == CODEC_DELTA:
        work = work - np.arange(n, dtype=np.int64)
    n_blocks = -(-n // page_size) if n else 0
    refs = np.zeros(n_blocks, dtype=np.int64)
    bits = np.zeros(n_blocks, dtype=np.uint8)
    offsets = np.zeros(n_blocks + 1, dtype=np.int64)
    chunks: List[np.ndarray] = []
    for b in range(n_blocks):
        block = work[b * page_size : (b + 1) * page_size]
        reference = int(block.min())
        width = int(int(block.max()) - reference).bit_length()
        packed = _pack_bits((block - reference).astype(np.uint64), width)
        refs[b] = reference
        bits[b] = width
        offsets[b + 1] = offsets[b] + packed.shape[0]
        chunks.append(packed)
    blob = (
        np.concatenate(chunks, dtype=np.uint8)
        if chunks
        else np.empty(0, dtype=np.uint8)
    )
    directory = PageDirectory(
        column=column,
        codec=codec,
        page_size=int(page_size),
        length=int(n),
        refs=refs,
        bits=bits,
        offsets=offsets,
    )
    return directory, blob


def decode_page(
    directory: PageDirectory, blob: np.ndarray, block: int
) -> np.ndarray:
    """Decode page ``block`` of a packed column to a fresh ``int64`` array."""
    if not 0 <= block < directory.n_blocks:
        raise EncodingError(
            f"column {directory.column!r}: page {block} out of "
            f"range [0, {directory.n_blocks})"
        )
    start = block * directory.page_size
    count = min(directory.page_size, directory.length - start)
    packed = blob[int(directory.offsets[block]) : int(directory.offsets[block + 1])]
    decoded = _unpack_bits(packed, int(directory.bits[block]), count)
    decoded += int(directory.refs[block])
    if directory.codec == CODEC_DELTA:
        decoded += np.arange(start, start + count, dtype=np.int64)
    return decoded


def decode_column(directory: PageDirectory, blob: np.ndarray) -> np.ndarray:
    """Decode a whole packed column eagerly (the ``mmap=False`` load path)."""
    if directory.length == 0:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(
        [decode_page(directory, blob, b) for b in range(directory.n_blocks)],
        dtype=np.int64,
    )


# ----------------------------------------------------------------------
# Sorted dictionary blobs
# ----------------------------------------------------------------------
def encode_dictionary(strings: Sequence[str]) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate ``strings`` (must be sorted) into a UTF-8 blob + offsets.

    Sorting is the caller's job (and is asserted): binary search over the
    blob relies on UTF-8 byte order matching code-point order.
    """
    encoded = [s.encode("utf-8") for s in strings]
    for i in range(1, len(encoded)):
        if encoded[i - 1] >= encoded[i]:
            raise EncodingError(
                "dictionary must be strictly sorted for binary search"
            )
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    if encoded:
        offsets[1:] = np.cumsum(
            np.asarray([len(e) for e in encoded], dtype=np.int64)
        )
    blob = np.frombuffer(b"".join(encoded), dtype=np.uint8).copy()
    return blob, offsets


def dictionary_entry(blob: np.ndarray, offsets: np.ndarray, code: int) -> str:
    """Decode one dictionary entry."""
    return bytes(
        blob[int(offsets[code]) : int(offsets[code + 1])]
    ).decode("utf-8")


def dictionary_find(blob: np.ndarray, offsets: np.ndarray, needle: str) -> int:
    """Binary-search the sorted blob for ``needle``; ``-1`` if absent.

    Compares raw UTF-8 bytes — the blob is never decoded, matching the
    "binary-searchable without decompression" contract.
    """
    target = needle.encode("utf-8")
    lo, hi = 0, int(offsets.shape[0]) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        entry = bytes(blob[int(offsets[mid]) : int(offsets[mid + 1])])
        if entry < target:
            lo = mid + 1
        else:
            hi = mid
    if lo < int(offsets.shape[0]) - 1:
        if bytes(blob[int(offsets[lo]) : int(offsets[lo + 1])]) == target:
            return lo
    return -1


# ----------------------------------------------------------------------
# Paged columns
# ----------------------------------------------------------------------
@dataclass
class PlaneStats:
    """Decode counters for one paged column (``store info`` reads these)."""

    blocks_decoded: int = 0
    bytes_decoded: int = 0
    full_decodes: int = 0


#: Decoded-block LRU capacity per column (blocks, not bytes).  At the
#: default page size this caps resident decoded state per column at
#: ``128 × 1024 × 8B = 1 MiB`` — the out-of-core working set.
DEFAULT_CACHE_BLOCKS = 128


class PagedArray:
    """An ``int64`` vector that decodes one page block at a time.

    Supports the access patterns the join kernels actually use — scalar
    reads (block memo fast path), contiguous slices, and integer-array
    gathers — decoding only the blocks they cover.  Whole-column
    operations (boolean masks, ufuncs, ``np.asarray``) fall back to a
    full decode so correctness is universal; the decoded copy is cached
    unless ``cache_full=False`` (the out-of-core open mode).
    """

    __slots__ = (
        "directory",
        "stats",
        "_blob",
        "_shift",
        "_mask",
        "_cache",
        "_cache_blocks",
        "_cache_full",
        "_last_block",
        "_last_data",
        "_full",
    )

    def __init__(
        self,
        directory: PageDirectory,
        blob: np.ndarray,
        stats: Optional[PlaneStats] = None,
        cache_blocks: int = DEFAULT_CACHE_BLOCKS,
        cache_full: bool = True,
    ):
        self.directory = directory
        self.stats = stats if stats is not None else PlaneStats()
        self._blob = blob
        self._shift = _require_power_of_two(directory.page_size)
        self._mask = directory.page_size - 1
        self._cache: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._cache_blocks = max(1, int(cache_blocks))
        self._cache_full = bool(cache_full)
        self._last_block = -1
        self._last_data: Optional[np.ndarray] = None
        self._full: Optional[np.ndarray] = None

    # -- numpy-protocol surface ---------------------------------------
    @property
    def shape(self) -> Tuple[int]:
        return (self.directory.length,)

    @property
    def size(self) -> int:
        return self.directory.length

    @property
    def ndim(self) -> int:
        return 1

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.int64)

    @property
    def nbytes(self) -> int:
        """Logical (decoded) bytes — what the column would occupy eagerly."""
        return self.directory.length * 8

    @property
    def packed_bytes(self) -> int:
        return self.directory.packed_bytes

    def __len__(self) -> int:
        return self.directory.length

    # -- block machinery ----------------------------------------------
    def _decode_block(self, block: int) -> np.ndarray:
        data = self._cache.get(block)
        if data is None:
            if self._full is not None:
                start = block << self._shift
                data = self._full[start : start + self.directory.page_size]
            else:
                data = decode_page(self.directory, self._blob, block)
                self.stats.blocks_decoded += 1
                self.stats.bytes_decoded += data.nbytes
            self._cache[block] = data
            if len(self._cache) > self._cache_blocks:
                self._cache.popitem(last=False)
        else:
            self._cache.move_to_end(block)
        self._last_block = block
        self._last_data = data
        return data

    def blocks_touched(self) -> int:
        return self.stats.blocks_decoded

    # -- indexing ------------------------------------------------------
    def __getitem__(self, index):
        # Dense fast path: once a full decode is cached (the
        # ``decode_cache="full"`` open mode pre-populates it) every
        # access is plain ndarray indexing — warm reads cost one branch.
        full = self._full
        if full is not None:
            return full[index]
        if isinstance(index, (int, np.integer)):
            i = int(index)
            if i < 0:
                i += self.directory.length
            if not 0 <= i < self.directory.length:
                raise IndexError(
                    f"index {index} out of range [0, {self.directory.length})"
                )
            block = i >> self._shift
            if block == self._last_block:
                return self._last_data[i & self._mask]
            return self._decode_block(block)[i & self._mask]
        if isinstance(index, slice):
            start, stop, step = index.indices(self.directory.length)
            if step != 1:
                return self._dense()[index]
            return self._slice(start, stop)
        idx = np.asarray(index)  # repro: allow[REP005] - bool vs int dispatch below
        if idx.dtype == np.bool_:
            return self._dense()[idx]
        return self._gather(idx.astype(np.int64, copy=False))

    def _slice(self, start: int, stop: int) -> np.ndarray:
        if stop <= start:
            return np.empty(0, dtype=np.int64)
        first = start >> self._shift
        last = (stop - 1) >> self._shift
        if first == last:
            block = self._decode_block(first)
            base = first << self._shift
            return block[start - base : stop - base]
        parts = []
        for b in range(first, last + 1):
            block = self._decode_block(b)
            base = b << self._shift
            lo = max(start, base) - base
            hi = min(stop, base + self.directory.page_size) - base
            parts.append(block[lo:hi])
        return np.concatenate(parts, dtype=np.int64)

    def _gather(self, idx: np.ndarray) -> np.ndarray:
        if idx.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        if np.any(idx < 0) or np.any(idx >= self.directory.length):
            raise IndexError("gather index out of range")
        blocks = idx >> self._shift
        out = np.empty(idx.shape[0], dtype=np.int64)
        for b in np.unique(blocks):
            selected = blocks == b
            data = self._decode_block(int(b))
            out[selected] = data[idx[selected] & self._mask]
        return out

    # -- whole-column fallbacks ---------------------------------------
    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        full = self._full
        if full is None:
            full = decode_column(self.directory, self._blob)
            self.stats.full_decodes += 1
            self.stats.blocks_decoded += self.directory.n_blocks
            self.stats.bytes_decoded += full.nbytes
            if self._cache_full:
                self._full = full
        if dtype is not None and full.dtype != np.dtype(dtype):
            return full.astype(dtype)
        if copy:
            return full.copy()
        return full

    def _dense(self) -> np.ndarray:
        """The whole column, decoded (always ``int64`` by construction)."""
        return self.__array__()

    def copy(self) -> np.ndarray:
        return self._dense().copy()

    def astype(self, dtype, copy: bool = True) -> np.ndarray:
        return self._dense().astype(dtype, copy=copy)

    def max(self) -> int:
        return int(self._dense().max())

    def min(self) -> int:
        return int(self._dense().min())

    # Comparisons delegate to the decoded column so whole-column code
    # (np.isin, mask builds in scalar axes) stays correct unchanged.
    def __eq__(self, other):
        return self._dense() == other

    def __ne__(self, other):
        return self._dense() != other

    def __lt__(self, other):
        return self._dense() < other

    def __le__(self, other):
        return self._dense() <= other

    def __gt__(self, other):
        return self._dense() > other

    def __ge__(self, other):
        return self._dense() >= other

    __hash__ = None  # elementwise __eq__ makes hashing incoherent

    def __iter__(self) -> Iterator[int]:
        if self._full is not None:
            yield from self._full
            return
        for b in range(self.directory.n_blocks):
            yield from self._decode_block(b)

    def page(self, i: int) -> Tuple[int, np.ndarray]:
        """``(block_start, decoded_block)`` for the page containing ``i``.

        The scan driver for loops that hop (the ancestor join): the
        caller walks the returned block with plain ndarray indexing and
        re-fetches only when a hop crosses the block boundary.  Once the
        full decode is cached the whole column is one "block", so a
        hopping caller never re-fetches at all.
        """
        if self._full is not None:
            return 0, self._full
        block = i >> self._shift
        return block << self._shift, self._decode_block(block)

    def iter_pages(
        self, start: int = 0, stop: Optional[int] = None
    ) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(block_start, decoded_view)`` covering ``[start, stop)``.

        The paged scan driver: each yielded view is exactly one decoded
        page block clipped to the requested range, so a consumer that
        stops early leaves the remaining pages untouched.
        """
        n = self.directory.length
        stop = n if stop is None else min(stop, n)
        if start >= stop:
            return
        if self._full is not None:
            yield start, self._full[start:stop]
            return
        first = start >> self._shift
        last = (stop - 1) >> self._shift
        for b in range(first, last + 1):
            base = b << self._shift
            data = self._decode_block(b)
            lo = max(start, base) - base
            hi = min(stop, base + self.directory.page_size) - base
            yield base + lo, data[lo:hi]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PagedArray({self.directory.column!r}, n={self.directory.length}, "
            f"pages={self.directory.n_blocks}, "
            f"packed={self.directory.packed_bytes}B)"
        )


class PagedStrings:
    """Lazily decoded string column: packed codes + a sorted dictionary blob.

    ``code == -1`` is ``None`` (elements carry no value).  Scalar access
    decodes one string; iteration walks the code column page by page.
    """

    __slots__ = ("codes", "blob", "offsets")

    def __init__(
        self,
        codes: Union[PagedArray, np.ndarray],
        blob: np.ndarray,
        offsets: np.ndarray,
    ):
        self.codes = codes
        self.blob = blob
        self.offsets = offsets

    def __len__(self) -> int:
        return len(self.codes)

    def _decode(self, code: int) -> Optional[str]:
        if code < 0:
            return None
        return dictionary_entry(self.blob, self.offsets, code)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._decode(int(c)) for c in self.codes[index]]
        return self._decode(int(self.codes[index]))

    def __iter__(self) -> Iterator[Optional[str]]:
        for code in self.codes:
            yield self._decode(int(code))

    def __eq__(self, other):
        if isinstance(other, (list, tuple, PagedStrings)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    __hash__ = None

    def materialize(self) -> List[Optional[str]]:
        """Decode every value into a plain list (the eager load path)."""
        return list(self)

    @property
    def dictionary_bytes(self) -> int:
        return int(self.blob.shape[0])

    @property
    def dictionary_size(self) -> int:
        return int(self.offsets.shape[0]) - 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PagedStrings(len={len(self)}, dict={self.dictionary_size}, "
            f"blob={self.dictionary_bytes}B)"
        )
