"""Decode a :class:`DocTable` back into a node tree.

The pre/post encoding is lossless: preorder ranks give document order,
the ``parent`` column gives structure, and ``kind``/``tag``/``values``
restore node content.  ``decode(encode(tree))`` reproduces ``tree``
exactly (a property test in ``tests/test_encoding_decode.py``).

Decoding matters operationally: query results are preorder ranks, and
users eventually want XML back — the CLI's ``query --serialize`` path and
:func:`subtree` both go through this module.
"""

from __future__ import annotations

from typing import List

from repro.encoding.doctable import DocTable
from repro.errors import EncodingError
from repro.xmltree.model import Node, NodeKind

__all__ = ["decode", "subtree"]


def _make_node(doc: DocTable, pre: int) -> Node:
    kind = doc.kind_of(pre)
    if kind == NodeKind.ELEMENT:
        return Node(NodeKind.ELEMENT, name=doc.tag_of(pre))
    if kind in (NodeKind.ATTRIBUTE, NodeKind.PROCESSING_INSTRUCTION):
        return Node(kind, name=doc.tag_of(pre), value=doc.value_of(pre) or "")
    return Node(kind, value=doc.value_of(pre) or "")


def subtree(doc: DocTable, pre: int) -> Node:
    """Materialise the subtree rooted at preorder rank ``pre``.

    Walks the contiguous preorder interval of the subtree (Equation (1)
    gives its exact extent), rebuilding parent links from the ``parent``
    column.  O(subtree size).
    """
    if not 0 <= pre < len(doc):
        raise EncodingError(f"preorder rank {pre} out of range [0, {len(doc)})")
    end = pre + doc.subtree_size_exact(pre)
    nodes: List[Node] = []
    for i in range(pre, end + 1):
        node = _make_node(doc, i)
        nodes.append(node)
        if i > pre:
            parent = nodes[doc.parent_of(i) - pre]
            parent.append(node)
    return nodes[0]


def decode(doc: DocTable, as_document: bool = True) -> Node:
    """Rebuild the full tree; with ``as_document`` wrap it in a document
    node (the encoder's inverse for document inputs)."""
    root = subtree(doc, doc.root)
    if not as_document:
        return root
    document = Node(NodeKind.DOCUMENT)
    document.append(root)
    return document
