"""The ``doc`` table: the relational face of an encoded document.

A :class:`DocTable` is the family of BATs the paper's Monet implementation
stores (Section 4.1): a void ``pre`` column shared by dense ``post``,
``level``, ``parent``, ``kind`` and dictionary-encoded ``tag`` columns.
All join algorithms in this repository take a ``DocTable`` plus a context
(an array of preorder ranks) and return preorder ranks.

Beyond raw storage the class offers the O(1) "tree knowledge" primitives
the staircase join is built from: ancestor/descendant tests via rank
comparisons, Equation (1) subtree-size estimation, and conversions between
pre and post rank orders.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.encoding.codec import PagedArray
from repro.errors import EncodingError
from repro.storage.bat import BAT
from repro.storage.column import IntColumn, StringColumn, VoidColumn
from repro.xmltree.model import NodeKind

__all__ = ["DocTable"]


class DocTable:
    """Pre/post encoded document (the table of Figure 2, plus bookkeeping).

    Parameters
    ----------
    post, level, parent, kind:
        Dense ``int64`` vectors indexed by preorder rank.
    tag:
        Dictionary-encoded tag/attribute-name column.
    values:
        Optional per-node string content (``None`` for elements); kept as a
        plain Python list since it is never touched on the query hot path.
    validate:
        Check that ``post`` is a permutation of ``0..n-1`` (an O(n log n)
        sort).  Pass ``False`` only for columns known to round-trip from a
        validated table — e.g. the memory-mapped persistence load path,
        where the check would fault in every page of an otherwise lazily
        opened archive.
    height:
        The document height, when the caller already knows it (persisted
        archives do).  Without it the constructor computes
        ``level.max()`` — an O(n) pass a paged (compressed) column would
        have to fully decode, defeating the lazy open.
    """

    __slots__ = (
        "post",
        "level",
        "parent",
        "kind",
        "tag",
        "values",
        "height",
        "plane",
        "_pre_of_post",
        "_first_child_cache",
        "_tag_histogram",
    )

    def __init__(
        self,
        post: np.ndarray,
        level: np.ndarray,
        parent: np.ndarray,
        kind: np.ndarray,
        tag: StringColumn,
        values: Optional[List[Optional[str]]] = None,
        validate: bool = True,
        height: Optional[int] = None,
    ):
        n = post.shape[0]
        for name, column in (("level", level), ("parent", parent), ("kind", kind)):
            if column.shape[0] != n:
                raise EncodingError(f"column {name!r} length {column.shape[0]} != {n}")
        if len(tag) != n:
            raise EncodingError(f"tag column length {len(tag)} != {n}")
        if n == 0:
            raise EncodingError("cannot build an empty DocTable")
        if validate:
            sorted_post = np.sort(post)
            if not np.array_equal(sorted_post, np.arange(n, dtype=np.int64)):
                raise EncodingError("post column must be a permutation of 0..n-1")
        self.post = post
        self.level = level
        self.parent = parent
        self.kind = kind
        self.tag = tag
        self.values = values if values is not None else [None] * n
        # h — the document height; computed once at load time (footnote 3)
        # unless a persisted archive already carries it.
        self.height = int(level.max()) if height is None else int(height)
        #: Set by the persistence layer when the columns are paged
        #: (FORMAT_VERSION 3, ``mmap=True``); the join kernels use it to
        #: drive block-at-a-time scans.  ``None`` for eager tables.
        self.plane = None
        self._pre_of_post: Optional[np.ndarray] = None
        self._first_child_cache: Optional[np.ndarray] = None
        self._tag_histogram: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Size / iteration
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.post.shape[0])

    @property
    def size(self) -> int:
        """Number of encoded nodes (attributes included)."""
        return len(self)

    @property
    def root(self) -> int:
        """Preorder rank of the root element (always 0)."""
        return 0

    def pres(self) -> np.ndarray:
        """All preorder ranks, ``0..n-1``."""
        return np.arange(len(self), dtype=np.int64)

    def __iter__(self) -> Iterator[int]:
        return iter(range(len(self)))

    # ------------------------------------------------------------------
    # Per-node accessors (scalar, O(1))
    # ------------------------------------------------------------------
    def post_of(self, pre: int) -> int:
        return int(self.post[pre])

    def level_of(self, pre: int) -> int:
        return int(self.level[pre])

    def parent_of(self, pre: int) -> int:
        """Preorder rank of the parent, or −1 for the root."""
        return int(self.parent[pre])

    def kind_of(self, pre: int) -> NodeKind:
        return NodeKind(int(self.kind[pre]))

    def tag_of(self, pre: int) -> str:
        return self.tag[pre]

    def tag_code_of(self, pre: int) -> int:
        return self.tag.code_at(pre)

    def value_of(self, pre: int) -> Optional[str]:
        return self.values[pre]

    def is_element(self, pre: int) -> bool:
        return int(self.kind[pre]) == int(NodeKind.ELEMENT)

    def is_attribute(self, pre: int) -> bool:
        return int(self.kind[pre]) == int(NodeKind.ATTRIBUTE)

    # ------------------------------------------------------------------
    # Tree knowledge (Section 2 / Equation (1))
    # ------------------------------------------------------------------
    def is_ancestor(self, a: int, v: int) -> bool:
        """True iff ``a`` is a proper ancestor of ``v``.

        The defining property of the pre/post plane: ancestors are up-left
        of ``v`` (smaller pre, larger post).
        """
        return a < v and self.post[a] > self.post[v]

    def subtree_size_estimate(self, pre: int) -> int:
        """Lower bound on ``|v/descendant|`` from Equation (1).

        ``post(v) − pre(v) + level(v)`` is exact, but an algorithm that
        wants to avoid the ``level`` lookup can use
        ``post(v) − pre(v)`` which undershoots by at most ``h``.
        """
        return max(0, int(self.post[pre]) - pre)

    def subtree_size_exact(self, pre: int) -> int:
        """``|v/descendant|`` exactly, via Equation (1) with the level term."""
        return int(self.post[pre]) - pre + int(self.level[pre])

    def pre_of_post(self) -> np.ndarray:
        """Inverse permutation: map postorder rank → preorder rank.

        Needed by the ``following`` axis degeneration (the surviving
        context node is the one with *minimum postorder* rank).  Computed
        lazily once and cached.
        """
        if self._pre_of_post is None:
            inverse = np.empty(len(self), dtype=np.int64)
            inverse[self.post] = np.arange(len(self), dtype=np.int64)
            self._pre_of_post = inverse
        return self._pre_of_post

    # ------------------------------------------------------------------
    # Structure navigation (used by child/sibling axes and examples)
    # ------------------------------------------------------------------
    def children_of(self, pre: int) -> List[int]:
        """Preorder ranks of the node's children (attributes included)."""
        result = []
        # Children of v are exactly the nodes with parent == v; they lie in
        # v's subtree, which spans pre+1 .. pre+subtree_size_exact(v).
        end = pre + self.subtree_size_exact(pre)
        child = pre + 1
        while child <= end and child < len(self):
            if int(self.parent[child]) == pre:
                result.append(child)
                child += 1 + self.subtree_size_exact(child)
            else:  # pragma: no cover - defensive; parents are contiguous
                child += 1
        return result

    def attribute_count_of(self, pre: int) -> int:
        """Number of attribute children of ``pre``.

        The encoding keeps an element's attributes *first*, each occupying
        exactly one preorder rank, so they sit contiguously at
        ``pre+1 .. pre+count`` — a short scan, not a subtree walk.
        """
        end = pre + self.subtree_size_exact(pre)
        attribute_kind = int(NodeKind.ATTRIBUTE)
        count = 0
        i = pre + 1
        while i <= end and int(self.kind[i]) == attribute_kind:
            count += 1
            i += 1
        return count

    def first_non_attribute_child_of(self, pre: int) -> Optional[int]:
        """Preorder rank of the first non-attribute child, or ``None``.

        This is the boundary an inserted attribute must stay ahead of to
        preserve the attributes-first convention the attribute axis
        relies on.
        """
        first = pre + 1 + self.attribute_count_of(pre)
        if first <= pre + self.subtree_size_exact(pre):
            return first
        return None

    def ancestors_of(self, pre: int) -> List[int]:
        """Preorder ranks of all proper ancestors, nearest first."""
        result = []
        node = int(self.parent[pre])
        while node >= 0:
            result.append(node)
            node = int(self.parent[node])
        return result

    def string_value(self, pre: int) -> str:
        """XPath string value of the node at ``pre``.

        Elements concatenate the values of all text nodes in their subtree
        (found positionally: the subtree is the contiguous preorder span
        given by Equation (1)); other kinds carry their value directly.
        """
        if int(self.kind[pre]) != int(NodeKind.ELEMENT):
            return self.values[pre] or ""
        end = pre + self.subtree_size_exact(pre)
        parts = []
        text_kind = int(NodeKind.TEXT)
        for i in range(pre + 1, min(end, len(self) - 1) + 1):
            if int(self.kind[i]) == text_kind:
                parts.append(self.values[i] or "")
        return "".join(parts)

    # ------------------------------------------------------------------
    # BAT views (the Monet storage shape)
    # ------------------------------------------------------------------
    def post_bat(self) -> BAT:
        """``pre|post`` — the BAT the staircase join scans."""
        return BAT(VoidColumn(len(self)), IntColumn(self.post), name="doc_post")

    def level_bat(self) -> BAT:
        return BAT(VoidColumn(len(self)), IntColumn(self.level), name="doc_level")

    def parent_bat(self) -> BAT:
        return BAT(VoidColumn(len(self)), IntColumn(self.parent), name="doc_parent")

    def kind_bat(self) -> BAT:
        return BAT(VoidColumn(len(self)), IntColumn(self.kind), name="doc_kind")

    def memory_footprint(self) -> int:
        """Approximate bytes of column storage (void ``pre`` is free)."""
        total = self.post.nbytes + self.level.nbytes
        total += self.parent.nbytes + self.kind.nbytes
        total += self.tag.codes.nbytes
        total += sum(len(s.encode("utf-8")) for s in self.tag.dictionary)
        return total

    # ------------------------------------------------------------------
    # Selections (used for name-test pushdown and fragmentation)
    # ------------------------------------------------------------------
    def pres_with_tag(self, tag_name: str, kind: NodeKind = NodeKind.ELEMENT) -> np.ndarray:
        """Preorder ranks of all nodes with the given tag and kind.

        Name tests become one integer comparison per node thanks to the
        dictionary encoding; an absent tag short-circuits to empty.
        """
        code = self.tag.code_of(tag_name)
        if code < 0:
            return np.empty(0, dtype=np.int64)
        codes = self.tag.codes
        if isinstance(codes, PagedArray):
            # Page-at-a-time scan: decoded state stays one block deep,
            # so a shard bigger than RAM can still answer name tests.
            parts = []
            for start, chunk in codes.iter_pages():
                kinds = self.kind[start : start + chunk.shape[0]]
                hits = np.nonzero((chunk == code) & (kinds == int(kind)))[0]
                if hits.shape[0]:
                    parts.append(hits.astype(np.int64) + start)
            if not parts:
                return np.empty(0, dtype=np.int64)
            return np.concatenate(parts)
        mask = (codes == code) & (self.kind == int(kind))
        return np.nonzero(mask)[0].astype(np.int64)

    def pres_with_kind(self, kind: NodeKind) -> np.ndarray:
        """Preorder ranks of all nodes of the given kind."""
        if isinstance(self.kind, PagedArray):
            parts = []
            for start, chunk in self.kind.iter_pages():
                hits = np.nonzero(chunk == int(kind))[0]
                if hits.shape[0]:
                    parts.append(hits.astype(np.int64) + start)
            if not parts:
                return np.empty(0, dtype=np.int64)
            return np.concatenate(parts)
        return np.nonzero(self.kind == int(kind))[0].astype(np.int64)

    def non_attribute_pres(self) -> np.ndarray:
        """All nodes the non-attribute axes may ever return."""
        if isinstance(self.kind, PagedArray):
            parts = []
            for start, chunk in self.kind.iter_pages():
                hits = np.nonzero(chunk != int(NodeKind.ATTRIBUTE))[0]
                if hits.shape[0]:
                    parts.append(hits.astype(np.int64) + start)
            if not parts:
                return np.empty(0, dtype=np.int64)
            return np.concatenate(parts)
        return np.nonzero(self.kind != int(NodeKind.ATTRIBUTE))[0].astype(np.int64)

    # ------------------------------------------------------------------
    # Catalogue statistics (planner input)
    # ------------------------------------------------------------------
    def tag_histogram(self) -> np.ndarray:
        """Element count per tag *code* — ``histogram[code]`` elements.

        One ``np.bincount`` over the dictionary-encoded tag column,
        restricted to element nodes (the principal node kind of every
        non-attribute axis, i.e. what a name test can select).  Computed
        once per table and cached; O(n) on first use.
        """
        if self._tag_histogram is None:
            codes = self.tag.codes
            if isinstance(codes, PagedArray):
                histogram = np.zeros(len(self.tag.dictionary), dtype=np.int64)
                for start, chunk in codes.iter_pages():
                    kinds = self.kind[start : start + chunk.shape[0]]
                    histogram += np.bincount(
                        chunk[kinds == int(NodeKind.ELEMENT)],
                        minlength=len(self.tag.dictionary),
                    ).astype(np.int64)
                self._tag_histogram = histogram
            else:
                element_codes = codes[self.kind == int(NodeKind.ELEMENT)]
                self._tag_histogram = np.bincount(
                    element_codes, minlength=len(self.tag.dictionary)
                ).astype(np.int64)
        return self._tag_histogram

    def tag_statistics(self) -> dict:
        """Per-tag element cardinalities as a ``{tag: count}`` mapping.

        The JSON-friendly face of :meth:`tag_histogram` (zero-count tags
        omitted) — what the sharded store persists in its manifest and
        the planner's cost model consumes.
        """
        histogram = self.tag_histogram()
        dictionary = self.tag.dictionary
        return {
            dictionary[code]: int(histogram[code])
            for code in np.nonzero(histogram)[0]
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DocTable(nodes={len(self)}, height={self.height}, "
            f"tags={len(self.tag.dictionary)})"
        )
