"""Binary persistence for encoded documents.

Parsing and encoding a large document is the expensive part of loading
(Section 4.1 builds the index "at document loading time"); persisting the
``DocTable`` lets repeated experiment runs start from the columns
directly.  The format is a single ``.npz`` container: the four dense
``int64`` columns, the tag code vector, and the tag dictionary plus node
values as UTF-8 string arrays — everything needed to reconstruct the
table bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.doctable import DocTable
from repro.errors import EncodingError
from repro.storage.column import StringColumn

__all__ = ["save", "load", "FORMAT_VERSION"]

FORMAT_VERSION = 1

#: Sentinel distinguishing "no value" (elements) from an empty string in
#: the persisted value column.
_NONE_SENTINEL = "\x00<none>"


def save(doc: DocTable, path: str) -> None:
    """Write ``doc`` to ``path`` as a compressed ``.npz`` archive."""
    values = np.asarray(
        [_NONE_SENTINEL if v is None else v for v in doc.values], dtype=object
    )
    np.savez_compressed(
        path,
        format_version=np.asarray([FORMAT_VERSION]),
        post=doc.post,
        level=doc.level,
        parent=doc.parent,
        kind=doc.kind,
        tag_codes=doc.tag.codes,
        tag_dictionary=np.asarray(doc.tag.dictionary, dtype=object),
        values=values,
    )


def load(path: str) -> DocTable:
    """Read a table previously written by :func:`save`.

    Raises :class:`~repro.errors.EncodingError` on version or schema
    mismatch (a truncated or foreign ``.npz`` must not half-load).
    """
    with np.load(path, allow_pickle=True) as archive:
        names = set(archive.files)
        required = {
            "format_version",
            "post",
            "level",
            "parent",
            "kind",
            "tag_codes",
            "tag_dictionary",
            "values",
        }
        if not required <= names:
            raise EncodingError(
                f"{path}: not a DocTable archive (missing {sorted(required - names)})"
            )
        version = int(archive["format_version"][0])
        if version != FORMAT_VERSION:
            raise EncodingError(
                f"{path}: format version {version} != supported {FORMAT_VERSION}"
            )
        tag = StringColumn(
            archive["tag_codes"], [str(s) for s in archive["tag_dictionary"]]
        )
        values = [
            None if v == _NONE_SENTINEL else str(v) for v in archive["values"]
        ]
        return DocTable(
            post=archive["post"].astype(np.int64),
            level=archive["level"].astype(np.int64),
            parent=archive["parent"].astype(np.int64),
            kind=archive["kind"].astype(np.int64),
            tag=tag,
            values=values,
        )
