"""Binary persistence for encoded documents.

Parsing and encoding a large document is the expensive part of loading
(Section 4.1 builds the index "at document loading time"); persisting the
``DocTable`` lets repeated experiment runs start from the columns
directly.  The format is a single ``.npz`` container.

Three format versions are understood:

* **v1** — ``np.savez_compressed``; every member is deflated, so loading
  always decompresses into fresh arrays.
* **v2** — ``np.savez``: the same members *stored* rather than deflated.
  A stored ``.npy`` zip member is byte-identical to a standalone
  ``.npy`` file, so :func:`load` with ``mmap=True`` memory-maps the
  numeric columns in place at their archive offsets — worker processes
  that open the same shard share the OS page cache instead of each
  materialising its own copy.
* **v3** (current, written by ``save(..., compression="packed")``) —
  compressed, pageable planes: every numeric column is frame-of-
  reference/delta bit-packed into fixed-height page blocks behind a page
  directory (:mod:`repro.encoding.codec`), and the tag/text string
  columns are dictionary-encoded against *sorted* UTF-8 dictionary
  blobs that binary-search without decompression.  ``mmap=True`` maps
  the packed blobs and returns a table whose columns are
  :class:`~repro.encoding.codec.PagedArray` views decoding one page
  block at a time — a shard larger than RAM streams through the join
  kernels block by block.

``save`` still writes v2 by default (``compression="none"``): eager
numeric members remain the right trade for small documents, and the v2
round-trip contract (columns load as ``np.memmap``) is unchanged.

:func:`load` reads all three versions and raises
:class:`~repro.errors.EncodingError` — never a raw ``zipfile`` or
``OSError`` traceback — on truncated, foreign, or version-unknown
archives.
"""

from __future__ import annotations

import os
import pickle
import struct
import zipfile
import zlib
from typing import Dict, Tuple

import numpy as np

from repro.encoding.codec import (
    CODEC_DELTA,
    CODEC_FOR,
    DEFAULT_PAGE_SIZE,
    PageDirectory,
    PagedArray,
    PagedStrings,
    PlaneStats,
    decode_column,
    dictionary_entry,
    encode_dictionary,
    pack_int_column,
)
from repro.encoding.doctable import DocTable
from repro.errors import EncodingError
from repro.storage.column import StringColumn

__all__ = [
    "save",
    "load",
    "describe_archive",
    "FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
    "COMPRESSION_MODES",
]

FORMAT_VERSION = 3

#: Versions :func:`load` accepts (v1 = compressed legacy, v2 = stored
#: eager columns, v3 = packed page blocks).
SUPPORTED_VERSIONS = (1, 2, 3)

#: ``compression=`` values :func:`save` accepts.
COMPRESSION_MODES = ("none", "packed")

#: Sentinel distinguishing "no value" (elements) from an empty string in
#: the v1/v2 persisted value column.
_NONE_SENTINEL = "\x00<none>"

#: Members whose arrays are plain numeric vectors in v1/v2 archives.
_NUMERIC_MEMBERS = ("post", "level", "parent", "kind", "tag_codes")

_REQUIRED_MEMBERS = frozenset(
    ("format_version", "tag_dictionary", "values") + _NUMERIC_MEMBERS
)

#: v3 packed columns and their codecs.  ``post`` and ``parent`` track the
#: void ``pre`` column (position-delta residuals are a few bits); the
#: rest are plain frame-of-reference.
_PACKED_COLUMNS = (
    ("post", CODEC_DELTA),
    ("level", CODEC_FOR),
    ("parent", CODEC_DELTA),
    ("kind", CODEC_FOR),
    ("tag_codes", CODEC_FOR),
    ("value_codes", CODEC_FOR),
)

_PACKED_REQUIRED = frozenset(
    {"format_version", "page_size", "nodes", "height",
     "tag_dict_blob", "tag_dict_offsets",
     "value_dict_blob", "value_dict_offsets"}
    | {
        f"{column}_{part}"
        for column, _ in _PACKED_COLUMNS
        for part in ("refs", "bits", "offsets", "packed")
    }
)

#: Errors that mean "this file is not a healthy archive" — normalised to
#: :class:`EncodingError` so callers never see a raw zip traceback.
#: :class:`FileNotFoundError` is always re-raised bare first: a missing
#: file is not a corrupt one, and the executor's fall-forward retry
#: (commits unlink superseded shard files) keys on it.
_ARCHIVE_ERRORS = (
    zipfile.BadZipFile,
    zlib.error,
    OSError,
    ValueError,
    EOFError,
    struct.error,
    pickle.UnpicklingError,
)


def save(
    doc: DocTable,
    path: str,
    compression: str = "none",
    page_size: int = DEFAULT_PAGE_SIZE,
) -> None:
    """Write ``doc`` to ``path`` as an ``.npz`` archive.

    ``compression="none"`` writes the eager v2 layout;
    ``compression="packed"`` writes the v3 compressed pageable layout
    (dictionary-encoded strings, FOR/delta bit-packed columns behind a
    page directory of ``page_size``-value blocks).
    """
    if compression == "none":
        _save_eager(doc, path)
    elif compression == "packed":
        _save_packed(doc, path, page_size)
    else:
        raise EncodingError(
            f"unknown compression {compression!r}; expected one of "
            f"{COMPRESSION_MODES}"
        )


def _save_eager(doc: DocTable, path: str) -> None:
    """The v2 layout: stored (mmap-friendly) eager members."""
    values = np.asarray(
        [_NONE_SENTINEL if v is None else v for v in doc.values], dtype=object
    )
    np.savez(
        path,
        format_version=np.asarray([2], dtype=np.int64),
        post=np.ascontiguousarray(doc.post, dtype=np.int64),
        level=np.ascontiguousarray(doc.level, dtype=np.int64),
        parent=np.ascontiguousarray(doc.parent, dtype=np.int64),
        kind=np.ascontiguousarray(doc.kind, dtype=np.int64),
        tag_codes=np.ascontiguousarray(doc.tag.codes, dtype=np.int32),
        tag_dictionary=np.asarray(doc.tag.dictionary, dtype=object),
        values=values,
    )


def _save_packed(doc: DocTable, path: str, page_size: int) -> None:
    """The v3 layout: packed page blocks + sorted dictionary blobs."""
    n = len(doc)
    # Tag dictionary, re-sorted for binary search; codes remapped.
    old_dictionary = list(doc.tag.dictionary)
    sorted_tags = sorted(old_dictionary)
    new_code = {s: i for i, s in enumerate(sorted_tags)}
    remap = np.asarray(
        [new_code[s] for s in old_dictionary], dtype=np.int64
    )
    tag_codes = remap[np.ascontiguousarray(doc.tag.codes, dtype=np.int64)]
    tag_blob, tag_offsets = encode_dictionary(sorted_tags)

    # Text values: sorted dictionary, code -1 = None (element nodes).
    unique_values = sorted({v for v in doc.values if v is not None})
    value_code = {s: i for i, s in enumerate(unique_values)}
    value_codes = np.fromiter(
        (-1 if v is None else value_code[v] for v in doc.values),
        dtype=np.int64,
        count=n,
    )
    value_blob, value_offsets = encode_dictionary(unique_values)

    sources: Dict[str, np.ndarray] = {
        "post": np.ascontiguousarray(doc.post, dtype=np.int64),
        "level": np.ascontiguousarray(doc.level, dtype=np.int64),
        "parent": np.ascontiguousarray(doc.parent, dtype=np.int64),
        "kind": np.ascontiguousarray(doc.kind, dtype=np.int64),
        "tag_codes": tag_codes,
        "value_codes": value_codes,
    }
    members: Dict[str, np.ndarray] = {
        "format_version": np.asarray([3], dtype=np.int64),
        "page_size": np.asarray([page_size], dtype=np.int64),
        "nodes": np.asarray([n], dtype=np.int64),
        "height": np.asarray([doc.height], dtype=np.int64),
        "tag_dict_blob": tag_blob,
        "tag_dict_offsets": tag_offsets,
        "value_dict_blob": value_blob,
        "value_dict_offsets": value_offsets,
    }
    for column, codec in _PACKED_COLUMNS:
        directory, blob = pack_int_column(
            column, sources[column], codec, page_size
        )
        members[f"{column}_refs"] = directory.refs
        members[f"{column}_bits"] = directory.bits
        members[f"{column}_offsets"] = directory.offsets
        members[f"{column}_packed"] = blob
    np.savez(path, **members)


def _member_data_offset(path: str, info: zipfile.ZipInfo) -> int:
    """Byte offset of a stored member's data inside the archive file.

    The central directory's name/extra lengths can differ from the local
    file header's, so the local header must be re-read.
    """
    with open(path, "rb") as raw:
        raw.seek(info.header_offset)
        header = raw.read(30)
        if len(header) != 30 or header[:4] != b"PK\x03\x04":
            raise EncodingError(f"{path}: corrupt local header for {info.filename!r}")
        name_len, extra_len = struct.unpack("<HH", header[26:30])
        return info.header_offset + 30 + name_len + extra_len


def _mmap_member(path: str, info: zipfile.ZipInfo) -> np.ndarray:
    """Memory-map one stored ``.npy`` member (read-only, zero-copy)."""
    data_offset = _member_data_offset(path, info)
    with open(path, "rb") as raw:
        raw.seek(data_offset)
        version = np.lib.format.read_magic(raw)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(raw)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(raw)
        else:
            raise EncodingError(
                f"{path}: unsupported .npy version {version} in {info.filename!r}"
            )
        array_offset = raw.tell()
    try:
        return np.memmap(
            path,
            dtype=dtype,
            mode="r",
            offset=array_offset,
            shape=shape,
            order="F" if fortran else "C",
        )
    except FileNotFoundError:
        raise
    except _ARCHIVE_ERRORS as error:
        raise EncodingError(
            f"{path}: cannot map member {info.filename!r} "
            f"(truncated archive?): {error}"
        ) from error


def _stored_info(
    path: str, archive: zipfile.ZipFile, member: str
) -> zipfile.ZipInfo:
    try:
        info = archive.getinfo(member + ".npy")
    except KeyError as error:
        raise EncodingError(f"{path}: missing member {member!r}") from error
    if info.compress_type != zipfile.ZIP_STORED:
        raise EncodingError(
            f"{path}: member {member!r} is compressed; "
            "mmap requires stored (uncompressed) members"
        )
    return info


def _mmap_columns(path: str) -> Tuple[np.ndarray, ...]:
    """Map the numeric columns of a v2 archive in place."""
    with zipfile.ZipFile(path) as archive:
        columns = []
        for member in _NUMERIC_MEMBERS:
            columns.append(_mmap_member(path, _stored_info(path, archive, member)))
    return tuple(columns)


def _read_member(path: str, archive: "np.lib.npyio.NpzFile", name: str) -> np.ndarray:
    """Read one npz member, normalising corruption to :class:`EncodingError`."""
    try:
        return archive[name]
    except KeyError as error:
        raise EncodingError(f"{path}: missing member {name!r}") from error
    except FileNotFoundError:
        raise
    except _ARCHIVE_ERRORS as error:
        raise EncodingError(
            f"{path}: cannot read member {name!r} "
            f"(truncated or corrupt archive): {error}"
        ) from error


def load(path: str, mmap: bool = False, decode_cache: str = "full") -> DocTable:
    """Read a table previously written by :func:`save`.

    With ``mmap=True`` the columns are opened in place instead of being
    materialised: v2 archives map their eager members read-only
    (``np.load(..., mmap_mode="r")`` semantics), v3 archives map the
    *packed* blobs and return paged columns that decode one page block
    on first touch.  The archive must then stay in place for the table's
    lifetime.  v1 archives are compressed and fall back to an eager
    load.

    ``decode_cache`` governs v3 paged tables: ``"full"`` (default) lets
    whole-column fallbacks keep their decoded copy — right when the
    plane fits in RAM; ``"blocks"`` keeps only the bounded block LRU —
    the out-of-core mode for shards bigger than memory.

    Raises :class:`~repro.errors.EncodingError` on truncated, foreign,
    or version-unknown archives (never a raw ``zipfile``/``OSError``
    traceback; a broken ``.npz`` must not half-load).  A *missing* file
    raises plain :class:`FileNotFoundError` — the store's fall-forward
    retry relies on telling "replaced under me" apart from "corrupt".
    """
    if decode_cache not in ("full", "blocks"):
        raise EncodingError(
            f"unknown decode_cache {decode_cache!r}; expected 'full' or 'blocks'"
        )
    try:
        archive = np.load(path, allow_pickle=True)
    except FileNotFoundError:
        raise
    except _ARCHIVE_ERRORS as error:
        raise EncodingError(
            f"{path}: not a readable DocTable archive: {error}"
        ) from error
    with archive:
        names = set(archive.files)
        if "format_version" not in names:
            raise EncodingError(
                f"{path}: not a DocTable archive (no format_version member)"
            )
        version = int(_read_member(path, archive, "format_version")[0])
        if version not in SUPPORTED_VERSIONS:
            raise EncodingError(
                f"{path}: format version {version} not in "
                f"supported {SUPPORTED_VERSIONS}"
            )
        if version == 3:
            return _load_packed(path, archive, names, mmap, decode_cache)
        if not _REQUIRED_MEMBERS <= names:
            raise EncodingError(
                f"{path}: not a DocTable archive "
                f"(missing {sorted(_REQUIRED_MEMBERS - names)})"
            )
        dictionary = [str(s) for s in _read_member(path, archive, "tag_dictionary")]
        values = [
            None if v == _NONE_SENTINEL else str(v)
            for v in _read_member(path, archive, "values")
        ]
        if mmap and version >= 2:
            post = level = parent = kind = tag_codes = None
        else:
            post = _read_member(path, archive, "post").astype(np.int64)
            level = _read_member(path, archive, "level").astype(np.int64)
            parent = _read_member(path, archive, "parent").astype(np.int64)
            kind = _read_member(path, archive, "kind").astype(np.int64)
            tag_codes = _read_member(path, archive, "tag_codes")
    if mmap and version >= 2:
        post, level, parent, kind, tag_codes = _mmap_columns(path)
        # The archive was written from an already-validated table; skip
        # the permutation/range re-checks so opening touches as few
        # pages as possible.
        tag = StringColumn(tag_codes, dictionary, validate=False)
        return DocTable(
            post=post,
            level=level,
            parent=parent,
            kind=kind,
            tag=tag,
            values=values,
            validate=False,
        )
    return DocTable(
        post=post,
        level=level,
        parent=parent,
        kind=kind,
        tag=StringColumn(tag_codes, dictionary),
        values=values,
    )


def _load_packed(
    path: str,
    archive: "np.lib.npyio.NpzFile",
    names: set,
    mmap: bool,
    decode_cache: str,
) -> DocTable:
    """Materialise (or page-map) a v3 archive."""
    if not _PACKED_REQUIRED <= names:
        raise EncodingError(
            f"{path}: not a packed DocTable archive "
            f"(missing {sorted(_PACKED_REQUIRED - names)})"
        )
    page_size = int(_read_member(path, archive, "page_size")[0])
    n = int(_read_member(path, archive, "nodes")[0])
    height = int(_read_member(path, archive, "height")[0])
    directories: Dict[str, PageDirectory] = {}
    for column, codec in _PACKED_COLUMNS:
        directories[column] = PageDirectory(
            column=column,
            codec=codec,
            page_size=page_size,
            length=n,
            refs=np.ascontiguousarray(
                _read_member(path, archive, f"{column}_refs"), dtype=np.int64
            ),
            bits=np.ascontiguousarray(
                _read_member(path, archive, f"{column}_bits"), dtype=np.uint8
            ),
            offsets=np.ascontiguousarray(
                _read_member(path, archive, f"{column}_offsets"), dtype=np.int64
            ),
        )
    tag_blob = _read_member(path, archive, "tag_dict_blob")
    tag_offsets = _read_member(path, archive, "tag_dict_offsets")
    tag_dictionary = [
        dictionary_entry(tag_blob, tag_offsets, code)
        for code in range(int(tag_offsets.shape[0]) - 1)
    ]

    if not mmap:
        decoded = {
            column: decode_column(
                directories[column],
                _read_member(path, archive, f"{column}_packed"),
            )
            for column, _ in _PACKED_COLUMNS
        }
        value_blob = _read_member(path, archive, "value_dict_blob")
        value_offsets = _read_member(path, archive, "value_dict_offsets")
        value_dictionary = [
            dictionary_entry(value_blob, value_offsets, code)
            for code in range(int(value_offsets.shape[0]) - 1)
        ]
        values = [
            None if code < 0 else value_dictionary[code]
            for code in decoded["value_codes"]
        ]
        return DocTable(
            post=decoded["post"],
            level=decoded["level"],
            parent=decoded["parent"],
            kind=decoded["kind"],
            tag=StringColumn(
                decoded["tag_codes"].astype(np.int32), tag_dictionary
            ),
            values=values,
            height=height,
        )

    # Paged open: map every packed blob in place, decode nothing yet.
    from repro.core.paged import PagedPlane

    with zipfile.ZipFile(path) as container:
        blobs = {
            column: _mmap_member(
                path, _stored_info(path, container, f"{column}_packed")
            )
            for column, _ in _PACKED_COLUMNS
        }
        value_blob = _mmap_member(
            path, _stored_info(path, container, "value_dict_blob")
        )
        value_offsets = _mmap_member(
            path, _stored_info(path, container, "value_dict_offsets")
        )
    cache_full = decode_cache == "full"
    columns: Dict[str, PagedArray] = {}
    stats: Dict[str, PlaneStats] = {}
    for column, _ in _PACKED_COLUMNS:
        stats[column] = PlaneStats()
        columns[column] = PagedArray(
            directories[column],
            blobs[column],
            stats=stats[column],
            cache_full=cache_full,
        )
        if cache_full:
            # Decode up front: warm queries then run at eager-array
            # speed (every access takes the dense fast path).  The
            # out-of-core mode ("blocks") stays lazy and bounded.
            np.asarray(columns[column])
    values = PagedStrings(columns["value_codes"], value_blob, value_offsets)
    tag = StringColumn(columns["tag_codes"], tag_dictionary, validate=False)
    table = DocTable(
        post=columns["post"],
        level=columns["level"],
        parent=columns["parent"],
        kind=columns["kind"],
        tag=tag,
        values=values,
        validate=False,
        height=height,
    )
    table.plane = PagedPlane(
        path=path,
        page_size=page_size,
        nodes=n,
        columns=columns,
        stats=stats,
        value_dictionary_bytes=int(value_blob.shape[0]),
        value_dictionary_entries=int(value_offsets.shape[0]) - 1,
        tag_dictionary_bytes=int(tag_blob.shape[0]),
    )
    return table


def describe_archive(path: str) -> dict:
    """Metadata-only inspection of an archive (the ``store info`` verb).

    Reads headers and small members only — packed blobs are sized from
    the zip directory, never decoded.
    """
    bytes_on_disk = os.path.getsize(path)
    try:
        with zipfile.ZipFile(path) as container:
            member_sizes = {
                info.filename[:-4] if info.filename.endswith(".npy")
                else info.filename: info.file_size
                for info in container.infolist()
            }
    except FileNotFoundError:
        raise
    except _ARCHIVE_ERRORS as error:
        raise EncodingError(
            f"{path}: not a readable DocTable archive: {error}"
        ) from error
    try:
        archive = np.load(path, allow_pickle=True)
    except FileNotFoundError:
        raise
    except _ARCHIVE_ERRORS as error:
        raise EncodingError(
            f"{path}: not a readable DocTable archive: {error}"
        ) from error
    with archive:
        names = set(archive.files)
        if "format_version" not in names:
            raise EncodingError(
                f"{path}: not a DocTable archive (no format_version member)"
            )
        version = int(_read_member(path, archive, "format_version")[0])
        description: dict = {
            "format_version": version,
            "bytes_on_disk": bytes_on_disk,
        }
        if version == 3:
            n = int(_read_member(path, archive, "nodes")[0])
            page_size = int(_read_member(path, archive, "page_size")[0])
            columns = {}
            for column, codec in _PACKED_COLUMNS:
                offsets = _read_member(path, archive, f"{column}_offsets")
                columns[column] = {
                    "codec": codec,
                    "pages": int(offsets.shape[0]) - 1,
                    "packed_bytes": int(offsets[-1]) if offsets.shape[0] else 0,
                    "logical_bytes": n * 8,
                }
            tag_offsets = _read_member(path, archive, "tag_dict_offsets")
            value_offsets = _read_member(path, archive, "value_dict_offsets")
            description.update(
                {
                    "nodes": n,
                    "height": int(_read_member(path, archive, "height")[0]),
                    "page_size": page_size,
                    "columns": columns,
                    "tag_dictionary": {
                        "entries": int(tag_offsets.shape[0]) - 1,
                        "bytes": member_sizes.get("tag_dict_blob", 0),
                    },
                    "value_dictionary": {
                        "entries": int(value_offsets.shape[0]) - 1,
                        "bytes": member_sizes.get("value_dict_blob", 0),
                    },
                }
            )
        elif version in SUPPORTED_VERSIONS:
            post = _read_member(path, archive, "post")
            description.update(
                {
                    "nodes": int(post.shape[0]),
                    "members": member_sizes,
                }
            )
        else:
            raise EncodingError(
                f"{path}: format version {version} not in "
                f"supported {SUPPORTED_VERSIONS}"
            )
    return description
