"""Binary persistence for encoded documents.

Parsing and encoding a large document is the expensive part of loading
(Section 4.1 builds the index "at document loading time"); persisting the
``DocTable`` lets repeated experiment runs start from the columns
directly.  The format is a single ``.npz`` container: the four dense
``int64`` columns, the tag code vector, and the tag dictionary plus node
values as UTF-8 string arrays — everything needed to reconstruct the
table bit-for-bit.

Two format versions are understood:

* **v1** — ``np.savez_compressed``; every member is deflated, so loading
  always decompresses into fresh arrays.
* **v2** (current) — ``np.savez``: the same members *stored* rather than
  deflated.  A stored ``.npy`` zip member is byte-identical to a
  standalone ``.npy`` file (what ``np.load(member, mmap_mode="r")``
  maps), so :func:`load` with ``mmap=True`` memory-maps the numeric
  columns in place at their archive offsets — worker processes that open
  the same shard share the OS page cache instead of each materialising
  its own copy.

:func:`load` reads both versions; ``mmap=True`` silently degrades to an
eager load for v1 archives (deflated members cannot be mapped).
"""

from __future__ import annotations

import struct
import zipfile
from typing import Tuple

import numpy as np

from repro.encoding.doctable import DocTable
from repro.errors import EncodingError
from repro.storage.column import StringColumn

__all__ = ["save", "load", "FORMAT_VERSION", "SUPPORTED_VERSIONS"]

FORMAT_VERSION = 2

#: Versions :func:`load` accepts (v1 = compressed legacy archives).
SUPPORTED_VERSIONS = (1, 2)

#: Sentinel distinguishing "no value" (elements) from an empty string in
#: the persisted value column.
_NONE_SENTINEL = "\x00<none>"

#: Members whose arrays are plain numeric vectors (memory-mappable).
_NUMERIC_MEMBERS = ("post", "level", "parent", "kind", "tag_codes")

_REQUIRED_MEMBERS = frozenset(
    ("format_version", "tag_dictionary", "values") + _NUMERIC_MEMBERS
)


def save(doc: DocTable, path: str) -> None:
    """Write ``doc`` to ``path`` as a v2 (mmap-friendly) ``.npz`` archive."""
    values = np.asarray(
        [_NONE_SENTINEL if v is None else v for v in doc.values], dtype=object
    )
    np.savez(
        path,
        format_version=np.asarray([FORMAT_VERSION]),
        post=np.ascontiguousarray(doc.post, dtype=np.int64),
        level=np.ascontiguousarray(doc.level, dtype=np.int64),
        parent=np.ascontiguousarray(doc.parent, dtype=np.int64),
        kind=np.ascontiguousarray(doc.kind, dtype=np.int64),
        tag_codes=np.ascontiguousarray(doc.tag.codes, dtype=np.int32),
        tag_dictionary=np.asarray(doc.tag.dictionary, dtype=object),
        values=values,
    )


def _member_data_offset(path: str, info: zipfile.ZipInfo) -> int:
    """Byte offset of a stored member's data inside the archive file.

    The central directory's name/extra lengths can differ from the local
    file header's, so the local header must be re-read.
    """
    with open(path, "rb") as raw:
        raw.seek(info.header_offset)
        header = raw.read(30)
        if len(header) != 30 or header[:4] != b"PK\x03\x04":
            raise EncodingError(f"{path}: corrupt local header for {info.filename!r}")
        name_len, extra_len = struct.unpack("<HH", header[26:30])
        return info.header_offset + 30 + name_len + extra_len


def _mmap_member(path: str, info: zipfile.ZipInfo) -> np.ndarray:
    """Memory-map one stored ``.npy`` member (read-only, zero-copy)."""
    data_offset = _member_data_offset(path, info)
    with open(path, "rb") as raw:
        raw.seek(data_offset)
        version = np.lib.format.read_magic(raw)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(raw)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(raw)
        else:
            raise EncodingError(
                f"{path}: unsupported .npy version {version} in {info.filename!r}"
            )
        array_offset = raw.tell()
    return np.memmap(
        path,
        dtype=dtype,
        mode="r",
        offset=array_offset,
        shape=shape,
        order="F" if fortran else "C",
    )


def _mmap_columns(path: str) -> Tuple[np.ndarray, ...]:
    """Map the numeric columns of a v2 archive in place."""
    with zipfile.ZipFile(path) as archive:
        columns = []
        for member in _NUMERIC_MEMBERS:
            info = archive.getinfo(member + ".npy")
            if info.compress_type != zipfile.ZIP_STORED:
                raise EncodingError(
                    f"{path}: member {member!r} is compressed; "
                    "v2 archives store members uncompressed"
                )
            columns.append(_mmap_member(path, info))
    return tuple(columns)


def load(path: str, mmap: bool = False) -> DocTable:
    """Read a table previously written by :func:`save`.

    With ``mmap=True`` the numeric columns of a v2 archive are opened as
    read-only memory maps (``np.load(..., mmap_mode="r")`` semantics per
    member) instead of being materialised; the string members are always
    read eagerly.  The archive must then stay in place for the table's
    lifetime.  v1 archives are compressed and fall back to an eager load.

    Raises :class:`~repro.errors.EncodingError` on version or schema
    mismatch (a truncated or foreign ``.npz`` must not half-load).
    """
    with np.load(path, allow_pickle=True) as archive:
        names = set(archive.files)
        if not _REQUIRED_MEMBERS <= names:
            raise EncodingError(
                f"{path}: not a DocTable archive "
                f"(missing {sorted(_REQUIRED_MEMBERS - names)})"
            )
        version = int(archive["format_version"][0])
        if version not in SUPPORTED_VERSIONS:
            raise EncodingError(
                f"{path}: format version {version} not in "
                f"supported {SUPPORTED_VERSIONS}"
            )
        dictionary = [str(s) for s in archive["tag_dictionary"]]
        values = [
            None if v == _NONE_SENTINEL else str(v) for v in archive["values"]
        ]
        if mmap and version >= 2:
            post = level = parent = kind = tag_codes = None
        else:
            post = archive["post"].astype(np.int64)
            level = archive["level"].astype(np.int64)
            parent = archive["parent"].astype(np.int64)
            kind = archive["kind"].astype(np.int64)
            tag_codes = archive["tag_codes"]
    if mmap and version >= 2:
        post, level, parent, kind, tag_codes = _mmap_columns(path)
        # The archive was written from an already-validated table; skip
        # the permutation/range re-checks so opening touches as few
        # pages as possible.
        tag = StringColumn(tag_codes, dictionary, validate=False)
        return DocTable(
            post=post,
            level=level,
            parent=parent,
            kind=kind,
            tag=tag,
            values=values,
            validate=False,
        )
    return DocTable(
        post=post,
        level=level,
        parent=parent,
        kind=kind,
        tag=StringColumn(tag_codes, dictionary),
        values=values,
    )
