"""Encode a node tree into the pre/post ``doc`` table.

The traversal assigns each node its preorder rank (when first visited) and
postorder rank (when leaving it).  Attributes of an element are visited
immediately after the element itself, before its other children — the
"special encoding for attribute nodes" of Section 3 which lets axis steps
filter them with a single ``kind`` comparison while keeping the preorder
rank sequence contiguous (so the ``pre`` column stays void).

The document node itself is *not* encoded: Figure 2 of the paper assigns
``pre = 0`` to the root element ``a``, and we reproduce that table verbatim
in the test suite.  Absolute XPath locations are handled by the evaluator
through a virtual document context (see :mod:`repro.xpath.axes`).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.encoding.doctable import DocTable
from repro.errors import EncodingError
from repro.storage.column import StringColumn
from repro.xmltree.model import Node, NodeKind

__all__ = ["encode"]


def encode(tree: Node) -> DocTable:
    """Encode ``tree`` (a document or element node) as a :class:`DocTable`.

    The encoding is a single iterative depth-first traversal: O(n) time,
    no recursion (documents may be deep).  Per node we record

    ``post``   — postorder rank,
    ``level``  — path length from the root element (root has level 0),
    ``parent`` — preorder rank of the parent (−1 for the root),
    ``kind``   — :class:`~repro.xmltree.model.NodeKind` value,
    ``tag``    — element tag / attribute name / PI target ("" otherwise),
    ``value``  — text content for text/comment/attribute/PI nodes.
    """
    if tree.kind == NodeKind.DOCUMENT:
        roots = [c for c in tree.children if c.kind == NodeKind.ELEMENT]
        if len(roots) != 1:
            raise EncodingError(
                f"document must have exactly one root element, found {len(roots)}"
            )
        root = roots[0]
    elif tree.kind == NodeKind.ELEMENT:
        root = tree
    else:
        raise EncodingError(f"cannot encode a {tree.kind.name} node as a document")

    post: List[int] = []
    level: List[int] = []
    parent: List[int] = []
    kind: List[int] = []
    tags: List[str] = []
    values: List[Optional[str]] = []

    post_counter = 0
    # Stack frames: (node, parent_pre, depth, entered?).  A node is pushed
    # once to assign its preorder rank and children, then revisited to
    # assign its postorder rank.
    stack = [(root, -1, 0, False)]
    # Each node's pre rank is len(post-list-at-entry); we track it in the
    # frame for the exit visit.
    exit_pre: List[int] = []  # parallel stack of pre ranks for entered frames

    while stack:
        node, parent_pre, depth, entered = stack.pop()
        if entered:
            pre = exit_pre.pop()
            post[pre] = post_counter
            post_counter += 1
            continue
        pre = len(kind)
        post.append(-1)  # patched at exit
        level.append(depth)
        parent.append(parent_pre)
        kind.append(int(node.kind))
        if node.kind in (
            NodeKind.ELEMENT,
            NodeKind.ATTRIBUTE,
            NodeKind.PROCESSING_INSTRUCTION,
        ):
            tags.append(node.name)
        else:
            tags.append("")
        if node.kind == NodeKind.ELEMENT:
            values.append(None)
        else:
            values.append(node.value)
        # Schedule the exit visit *below* the children on the stack.
        stack.append((node, parent_pre, depth, True))
        exit_pre.append(pre)
        # Children in document order (attributes first — the model keeps
        # them at the front of ``children``); pushed reversed so the
        # leftmost child is processed first.
        for child in reversed(node.children):
            stack.append((child, pre, depth + 1, False))

    # The exit-visit bookkeeping above interleaves exits of different
    # nodes; `exit_pre` as a plain stack only works because each entered
    # frame's exit is pushed directly beneath its children, so exits pop
    # in the correct (postorder) nesting.  Sanity-check the result.
    post_array = np.asarray(post, dtype=np.int64)
    if post_array.min() < 0:
        raise EncodingError("internal error: unassigned postorder rank")

    return DocTable(
        post=post_array,
        level=np.asarray(level, dtype=np.int64),
        parent=np.asarray(parent, dtype=np.int64),
        kind=np.asarray(kind, dtype=np.int64),
        tag=StringColumn.from_strings(tags),
        values=values,
    )
