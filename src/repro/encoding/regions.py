"""Region algebra of the pre/post plane (Sections 2 and 3.1).

For a context node ``c``, each of the four partitioning XPath axes selects
an (open) rectangular region of the plane:

===========  =================  ==================
axis         pre condition      post condition
===========  =================  ==================
descendant   ``pre > pre(c)``   ``post < post(c)``
ancestor     ``pre < pre(c)``   ``post > post(c)``
preceding    ``pre < pre(c)``   ``post < post(c)``
following    ``pre > pre(c)``   ``post > post(c)``
===========  =================  ==================

Together with ``c`` itself these cover the whole document (Figure 1) — a
property the hypothesis tests verify on random documents.

This module also captures the *empty-region analysis* of Figure 7: for two
nodes ``a``, ``b`` (``pre(a) < pre(b)``) either ``b`` is a descendant of
``a`` (then nothing both precedes ``a`` and descends from ``b``, etc.) or
``b`` follows ``a`` (then ``a`` and ``b`` have no common descendants —
region ``Z`` is empty).  Pruning and skipping are both direct consequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.encoding.doctable import DocTable
from repro.errors import EncodingError

__all__ = [
    "Region",
    "axis_region",
    "is_descendant",
    "is_ancestor",
    "is_following",
    "is_preceding",
    "node_relationship",
    "subtree_size_estimate",
    "subtree_size_exact",
    "partitioning_axes",
    "region_select",
]

#: The four axes that partition the document around a context node.
partitioning_axes = ("preceding", "descendant", "ancestor", "following")


@dataclass(frozen=True)
class Region:
    """A rectangular region of the pre/post plane.

    Bounds are *exclusive* on both sides, matching the strict inequalities
    of the axis definitions; ``-1`` / ``n`` (outside the rank range) encode
    unbounded sides.
    """

    pre_low: int
    pre_high: int
    post_low: int
    post_high: int

    def contains(self, pre: int, post: int) -> bool:
        """Point-in-region test with the strict bounds."""
        return (
            self.pre_low < pre < self.pre_high
            and self.post_low < post < self.post_high
        )

    def is_empty_for(self, n: int) -> bool:
        """True when no rank pair inside ``0..n-1`` can satisfy the bounds."""
        return (
            self.pre_high - self.pre_low <= 1
            or self.post_high - self.post_low <= 1
            or self.pre_low >= n - 1
            or self.post_low >= n - 1
            or self.pre_high <= 0
            or self.post_high <= 0
        )


def axis_region(doc: DocTable, context_pre: int, axis: str) -> Region:
    """The plane region reachable from ``context_pre`` along ``axis``.

    Only the four partitioning axes have pure rectangular regions; the
    remaining axes are derived from them (with level/parent refinements) in
    :mod:`repro.xpath.axes`.
    """
    n = len(doc)
    pre = context_pre
    post = int(doc.post[context_pre])
    if axis == "descendant":
        return Region(pre, n, -1, post)
    if axis == "ancestor":
        return Region(-1, pre, post, n)
    if axis == "preceding":
        return Region(-1, pre, -1, post)
    if axis == "following":
        return Region(pre, n, post, n)
    raise EncodingError(f"axis {axis!r} does not induce a rectangular region")


def region_select(doc: DocTable, region: Region) -> np.ndarray:
    """All preorder ranks inside ``region`` (vectorised; attributes kept).

    This is the *tree-unaware* region query — what a plain SQL engine
    evaluates.  The staircase join computes the same sets while touching
    far fewer nodes.
    """
    pre = doc.pres()
    post = doc.post
    mask = (
        (pre > region.pre_low)
        & (pre < region.pre_high)
        & (post > region.post_low)
        & (post < region.post_high)
    )
    return pre[mask]


# ----------------------------------------------------------------------
# Pairwise node relationships (pure integer arithmetic — the "cost of
# simple integer operations" of the abstract)
# ----------------------------------------------------------------------
def is_descendant(doc: DocTable, v: int, c: int) -> bool:
    """True iff ``v`` is a proper descendant of ``c``."""
    return v > c and doc.post[v] < doc.post[c]


def is_ancestor(doc: DocTable, v: int, c: int) -> bool:
    """True iff ``v`` is a proper ancestor of ``c``."""
    return v < c and doc.post[v] > doc.post[c]


def is_preceding(doc: DocTable, v: int, c: int) -> bool:
    """True iff ``v`` precedes ``c`` (document order, not an ancestor)."""
    return v < c and doc.post[v] < doc.post[c]


def is_following(doc: DocTable, v: int, c: int) -> bool:
    """True iff ``v`` follows ``c`` (document order, not a descendant)."""
    return v > c and doc.post[v] > doc.post[c]


def node_relationship(doc: DocTable, a: int, b: int) -> str:
    """Classify the relationship of ``a`` to ``b``.

    Returns one of ``"self"``, ``"ancestor"``, ``"descendant"``,
    ``"preceding"``, ``"following"`` — the five-way partition of Figure 1.
    """
    if a == b:
        return "self"
    if is_ancestor(doc, a, b):
        return "ancestor"
    if is_descendant(doc, a, b):
        return "descendant"
    if is_preceding(doc, a, b):
        return "preceding"
    return "following"


# ----------------------------------------------------------------------
# Equation (1)
# ----------------------------------------------------------------------
def subtree_size_exact(doc: DocTable, pre: int) -> int:
    """``|v/descendant| = post(v) − pre(v) + level(v)`` (Equation (1))."""
    return int(doc.post[pre]) - pre + int(doc.level[pre])


def subtree_size_estimate(doc: DocTable, pre: int) -> Tuple[int, int]:
    """Lower and upper bounds on ``|v/descendant|`` without the level term.

    ``0 ≤ level(v) ≤ h`` turns Equation (1) into the two diagonals of
    Figure 10: at least ``post(v) − pre(v)`` descendants (the guaranteed
    copy-phase nodes) and at most ``post(v) − pre(v) + h``.
    """
    base = int(doc.post[pre]) - pre
    return max(0, base), max(0, base + doc.height)
