"""Multi-document databases (footnote 1 of the paper).

"Our discussion readily carries over to multi-document databases (e.g.,
by introduction of document identifiers or a new virtual root node under
which several documents may be gathered)."

:class:`DocumentCollection` implements the virtual-root flavour: the
member documents' trees are gathered, in insertion order, under a
synthetic root element, and the combined tree is pre/post encoded once.
Every staircase join property carries over verbatim because the result
*is* a single document — the collection merely remembers which preorder
interval belongs to which member, so results can be attributed and
queries can be scoped to one document without re-encoding.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.encoding.doctable import DocTable
from repro.encoding.prepost import encode
from repro.errors import EncodingError
from repro.xmltree.model import Node, NodeKind, element

__all__ = ["DocumentCollection"]


class DocumentCollection:
    """Several documents behind one pre/post plane.

    Parameters
    ----------
    documents:
        ``(name, tree)`` pairs; each tree is a document or element node.
    virtual_root_tag:
        Tag of the synthetic root (kept out of query results by scoping;
        it *is* visible to raw absolute paths, as it would have been in
        the paper's setup).
    """

    def __init__(
        self,
        documents: Sequence[Tuple[str, Node]],
        virtual_root_tag: str = "collection",
    ):
        if not documents:
            raise EncodingError("a collection needs at least one document")
        names = [name for name, _ in documents]
        if len(set(names)) != len(names):
            raise EncodingError("document names must be unique")
        gathered = element(virtual_root_tag)
        for name, tree in documents:
            if tree.kind == NodeKind.DOCUMENT:
                roots = [c for c in tree.children if c.kind == NodeKind.ELEMENT]
                if len(roots) != 1:
                    raise EncodingError(
                        f"document {name!r} must have exactly one root element"
                    )
                gathered.append(roots[0])
            elif tree.kind == NodeKind.ELEMENT:
                gathered.append(tree)
            else:
                raise EncodingError(f"document {name!r} is not element-rooted")
        self.virtual_root_tag = virtual_root_tag
        self.doc: DocTable = encode(gathered)
        # Member spans: the children of the virtual root, in order.
        self._spans: Dict[str, Tuple[int, int]] = {}
        self._names: List[str] = []
        for name, child in zip(names, self.doc.children_of(self.doc.root)):
            end = child + self.doc.subtree_size_exact(child)
            self._spans[name] = (child, end)
            self._names.append(name)

    # ------------------------------------------------------------------
    @property
    def names(self) -> List[str]:
        """Member document names, in insertion (document) order."""
        return list(self._names)

    def span(self, name: str) -> Tuple[int, int]:
        """Inclusive preorder interval ``[root, last]`` of a member."""
        try:
            return self._spans[name]
        except KeyError:
            raise EncodingError(f"no document named {name!r}") from None

    def root_of(self, name: str) -> int:
        """Preorder rank of a member's root element."""
        return self.span(name)[0]

    def document_of(self, pre: int) -> Optional[str]:
        """Which member a preorder rank belongs to (None = virtual root)."""
        for name in self._names:
            start, end = self._spans[name]
            if start <= pre <= end:
                return name
        return None

    # ------------------------------------------------------------------
    def evaluate(
        self,
        path: str,
        document: Optional[str] = None,
        **evaluator_options,
    ) -> np.ndarray:
        """Evaluate an XPath expression over the collection.

        With ``document`` given, absolute paths are anchored at that
        member's root (the per-document view); otherwise they run over
        the whole gathered plane and results from the virtual root
        itself are filtered out.
        """
        from repro.xpath.ast import LocationPath, Step
        from repro.xpath.evaluator import Evaluator
        from repro.xpath.parser import parse_xpath

        evaluator = Evaluator(self.doc, **evaluator_options)
        parsed = parse_xpath(path)
        if document is None:
            result = evaluator.evaluate(parsed)
            return result[result != self.doc.root]

        start, end = self.span(document)
        if parsed.absolute:
            if not parsed.steps:
                return np.empty(0, dtype=np.int64)
            # Treat the member root as the document node: a document's
            # descendants are the root element or-self; its only child
            # is the root element itself.
            axis_from_document = {
                "descendant": "descendant-or-self",
                "descendant-or-self": "descendant-or-self",
                "child": "self",
            }
            first = parsed.steps[0]
            mapped_axis = axis_from_document.get(first.axis)
            if mapped_axis is None:
                raise EncodingError(
                    f"axis {first.axis!r} cannot start a document-scoped "
                    "absolute path"
                )
            steps = (Step(mapped_axis, first.test, first.predicates),) + parsed.steps[1:]
            result = evaluator.evaluate(LocationPath(False, steps), context=start)
        else:
            result = evaluator.evaluate(parsed, context=start)
        return result[(result >= start) & (result <= end)]

    def partition_by_document(self, pres: np.ndarray) -> Dict[str, np.ndarray]:
        """Split a result array by owning member document."""
        out: Dict[str, np.ndarray] = {}
        for name in self._names:
            start, end = self._spans[name]
            out[name] = pres[(pres >= start) & (pres <= end)]
        return out

    def __len__(self) -> int:
        return len(self._names)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DocumentCollection(documents={len(self)}, "
            f"nodes={len(self.doc)})"
        )
