"""Multi-document databases (footnote 1 of the paper).

"Our discussion readily carries over to multi-document databases (e.g.,
by introduction of document identifiers or a new virtual root node under
which several documents may be gathered)."

:class:`DocumentCollection` implements the virtual-root flavour: the
member documents' trees are gathered, in insertion order, under a
synthetic root element, and the combined tree is pre/post encoded once.
Every staircase join property carries over verbatim because the result
*is* a single document — the collection merely remembers which preorder
interval belongs to which member, so results can be attributed and
queries can be scoped to one document without re-encoding.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.encoding.doctable import DocTable
from repro.encoding.prepost import encode
from repro.errors import EncodingError
from repro.xmltree.model import Node, NodeKind, element

__all__ = ["DocumentCollection"]


class DocumentCollection:
    """Several documents behind one pre/post plane.

    Parameters
    ----------
    documents:
        ``(name, tree)`` pairs; each tree is a document or element node.
    virtual_root_tag:
        Tag of the synthetic root (kept out of query results by scoping;
        it *is* visible to raw absolute paths, as it would have been in
        the paper's setup).
    """

    def __init__(
        self,
        documents: Sequence[Tuple[str, Node]],
        virtual_root_tag: str = "collection",
    ):
        if not documents:
            raise EncodingError("a collection needs at least one document")
        names = [name for name, _ in documents]
        if len(set(names)) != len(names):
            raise EncodingError("document names must be unique")
        gathered = element(virtual_root_tag)
        for name, tree in documents:
            gathered.append(_member_root(name, tree))
        self.virtual_root_tag = virtual_root_tag
        self.doc: DocTable = encode(gathered)
        self._index_members(names)

    def _index_members(self, names: Sequence[str]) -> None:
        """Record each member's preorder span (children of the virtual root)."""
        self._spans: Dict[str, Tuple[int, int]] = {}
        self._names: List[str] = []
        roots = self.doc.children_of(self.doc.root)
        if len(roots) != len(names):
            raise EncodingError(
                f"{len(names)} document names for {len(roots)} member roots"
            )
        for name, child in zip(names, roots):
            end = child + self.doc.subtree_size_exact(child)
            self._spans[name] = (child, end)
            self._names.append(name)

    @classmethod
    def from_table(
        cls,
        doc: DocTable,
        names: Sequence[str],
        virtual_root_tag: str = "collection",
    ) -> "DocumentCollection":
        """Rehydrate a collection around an already-encoded gathered plane.

        ``doc`` must be the table of a collection previously built by the
        constructor (e.g. persisted via :mod:`repro.encoding.persist` and
        loaded back, possibly memory-mapped); ``names`` are the member
        names in document order.  No re-encoding happens — the virtual
        root's children are re-matched to ``names`` positionally.
        """
        if len(set(names)) != len(names):
            raise EncodingError("document names must be unique")
        self = cls.__new__(cls)
        self.virtual_root_tag = virtual_root_tag
        self.doc = doc
        self._index_members(names)
        return self

    # ------------------------------------------------------------------
    @property
    def names(self) -> List[str]:
        """Member document names, in insertion (document) order."""
        return list(self._names)

    def span(self, name: str) -> Tuple[int, int]:
        """Inclusive preorder interval ``[root, last]`` of a member."""
        try:
            return self._spans[name]
        except KeyError:
            raise EncodingError(f"no document named {name!r}") from None

    def root_of(self, name: str) -> int:
        """Preorder rank of a member's root element."""
        return self.span(name)[0]

    def tag_statistics(self) -> Dict[str, int]:
        """Per-tag element counts of the gathered plane (virtual root
        included — it is one more element of its tag, exactly as a query
        over the plane would see it)."""
        return self.doc.tag_statistics()

    def document_of(self, pre: int) -> Optional[str]:
        """Which member a preorder rank belongs to (None = virtual root)."""
        for name in self._names:
            start, end = self._spans[name]
            if start <= pre <= end:
                return name
        return None

    # ------------------------------------------------------------------
    def evaluate(
        self,
        path,
        document: Optional[str] = None,
        evaluator=None,
        **evaluator_options,
    ) -> np.ndarray:
        """Evaluate an XPath expression over the collection.

        With ``document`` given, absolute paths are anchored at that
        member's root (the per-document view); otherwise they run over
        the whole gathered plane and results from the virtual root
        itself are filtered out.

        ``path`` may be a string or an already-parsed expression (the
        service layer caches parsed plans).  ``evaluator`` reuses a
        caller-held :class:`~repro.xpath.evaluator.Evaluator` bound to
        ``self.doc`` instead of constructing one per query.
        """
        from repro.xpath.ast import LocationPath, Step
        from repro.xpath.evaluator import Evaluator, parse_with_cache

        if evaluator is None:
            evaluator = Evaluator(self.doc, **evaluator_options)
        elif evaluator_options:
            raise EncodingError(
                "pass evaluator options either as keywords or baked into "
                "the caller-held evaluator, not both"
            )
        elif evaluator.doc is not self.doc:
            raise EncodingError("evaluator is bound to a different table")
        parsed = (
            parse_with_cache(path, evaluator.plan_cache)
            if isinstance(path, str)
            else path
        )
        if document is None:
            result = evaluator.evaluate(parsed)
            return result[result != self.doc.root]

        start, end = self.span(document)
        if not isinstance(parsed, LocationPath):
            raise EncodingError(
                "document-scoped evaluation requires a plain location path"
            )
        if parsed.absolute:
            if not parsed.steps:
                return np.empty(0, dtype=np.int64)
            # Treat the member root as the document node: a document's
            # descendants are the root element or-self; its only child
            # is the root element itself.
            axis_from_document = {
                "descendant": "descendant-or-self",
                "descendant-or-self": "descendant-or-self",
                "child": "self",
            }
            first = parsed.steps[0]
            mapped_axis = axis_from_document.get(first.axis)
            if mapped_axis is None:
                raise EncodingError(
                    f"axis {first.axis!r} cannot start a document-scoped "
                    "absolute path"
                )
            steps = (Step(mapped_axis, first.test, first.predicates),) + parsed.steps[1:]
            result = evaluator.evaluate(LocationPath(False, steps), context=start)
        else:
            result = evaluator.evaluate(parsed, context=start)
        return result[(result >= start) & (result <= end)]

    # ------------------------------------------------------------------
    # Updates (rank splicing on the gathered plane)
    # ------------------------------------------------------------------
    def apply_update(
        self, table: DocTable, names: Sequence[str]
    ) -> "DocumentCollection":
        """Rebind the collection around an updated gathered plane.

        ``table`` is a spliced successor of ``self.doc`` (same virtual
        root, member roots matching ``names`` positionally).  Partition
        boundaries are re-derived by walking the virtual root's children
        with Equation (1) subtree skips — O(#documents), no re-encoding
        of untouched documents.  Every mutation below funnels through
        here; the original collection stays valid (tables are immutable).
        """
        return DocumentCollection.from_table(table, names, self.virtual_root_tag)

    def insert_document(
        self, name: str, tree: Node, before: Optional[str] = None
    ) -> "DocumentCollection":
        """Add a member document (appended, or ahead of member ``before``)."""
        from repro.encoding.updates import insert_subtree

        if name in self._spans:
            raise EncodingError(f"document {name!r} already in the collection")
        root = _member_root(name, tree)
        if before is None:
            before_pre: Optional[int] = None
            position = len(self._names)
        else:
            before_pre = self.root_of(before)
            position = self._names.index(before)
        table = insert_subtree(self.doc, self.doc.root, root, before_pre=before_pre)
        names = list(self._names)
        names.insert(position, name)
        return self.apply_update(table, names)

    def remove_document(self, name: str) -> "DocumentCollection":
        """Drop a member document (a collection keeps at least one)."""
        from repro.encoding.updates import delete_subtree

        start, _ = self.span(name)
        if len(self._names) == 1:
            raise EncodingError(
                "cannot remove the last document of a collection"
            )
        table = delete_subtree(self.doc, start)
        return self.apply_update(table, [n for n in self._names if n != name])

    def update_document(self, name: str, tree: Node) -> "DocumentCollection":
        """Replace a member document's entire tree in place."""
        from repro.encoding.updates import replace_subtree

        start, _ = self.span(name)
        table = replace_subtree(self.doc, start, _member_root(name, tree))
        return self.apply_update(table, self._names)

    def splice(
        self,
        name: str,
        op: str,
        pre: int,
        tree: Optional[Node] = None,
        before: Optional[int] = None,
    ) -> "DocumentCollection":
        """Subtree-granular edit inside member ``name``.

        ``pre`` (and ``before``) are *document-relative* preorder ranks —
        rank 0 is the member's root element, the same shape the service
        layer reports results in.  ``op`` is ``"insert"`` (``pre`` names
        the parent, ``before`` the optional child to insert ahead of),
        ``"delete"`` or ``"replace"`` (``pre`` names the subtree root).
        """
        from repro.encoding.updates import (
            delete_subtree,
            insert_subtree,
            replace_subtree,
        )

        start, end = self.span(name)
        span_size = end - start
        if not 0 <= pre <= span_size:
            raise EncodingError(
                f"rank {pre} out of range [0, {span_size}] for document {name!r}"
            )
        if op == "insert":
            if tree is None:
                raise EncodingError("insert needs a subtree payload")
            before_pre: Optional[int] = None
            if before is not None:
                if not 0 < before <= span_size:
                    raise EncodingError(
                        f"before-rank {before} out of range (0, {span_size}] "
                        f"for document {name!r}"
                    )
                before_pre = start + before
            table = insert_subtree(self.doc, start + pre, tree, before_pre=before_pre)
        elif op == "delete":
            if pre == 0:
                raise EncodingError(
                    "cannot delete a member's root subtree; remove the "
                    "document instead"
                )
            table = delete_subtree(self.doc, start + pre)
        elif op == "replace":
            if tree is None:
                raise EncodingError("replace needs a subtree payload")
            table = replace_subtree(self.doc, start + pre, tree)
        else:
            raise EncodingError(
                f"unknown splice op {op!r} (expected insert/delete/replace)"
            )
        return self.apply_update(table, self._names)

    def partition_by_document(self, pres: np.ndarray) -> Dict[str, np.ndarray]:
        """Split a result array by owning member document."""
        out: Dict[str, np.ndarray] = {}
        for name in self._names:
            start, end = self._spans[name]
            out[name] = pres[(pres >= start) & (pres <= end)]
        return out

    def partition_relative(self, pres: np.ndarray) -> Dict[str, np.ndarray]:
        """Split a result array by member, shifted to document-relative ranks.

        Rank 0 is each member's root element, so results from differently
        sharded stores (where global preorder ranks differ) compare
        byte-for-byte — the canonical result shape of the service layer.
        """
        out: Dict[str, np.ndarray] = {}
        for name in self._names:
            start, end = self._spans[name]
            selected = pres[(pres >= start) & (pres <= end)]
            out[name] = (selected - start).astype(np.int64, copy=False)
        return out

    def partition_counts(self, pres: np.ndarray) -> Dict[str, int]:
        """Per-member result cardinalities, without materializing the
        document-relative rank arrays.

        The ``mode="count"`` service path: ``pres`` is sorted (every
        operator pipeline's output is), so one ``searchsorted`` per
        member span replaces :meth:`partition_relative`'s per-member
        select-shift-copy.
        """
        out: Dict[str, int] = {}
        for name in self._names:
            start, end = self._spans[name]
            low = int(np.searchsorted(pres, start, side="left"))
            high = int(np.searchsorted(pres, end, side="right"))
            out[name] = high - low
        return out

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._spans

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DocumentCollection(documents={len(self)}, "
            f"nodes={len(self.doc)})"
        )


def _member_root(name: str, tree: Node) -> Node:
    """The root element a member contributes to the gathered plane."""
    if tree.kind == NodeKind.DOCUMENT:
        roots = [c for c in tree.children if c.kind == NodeKind.ELEMENT]
        if len(roots) != 1:
            raise EncodingError(
                f"document {name!r} must have exactly one root element"
            )
        return roots[0]
    if tree.kind == NodeKind.ELEMENT:
        return tree
    raise EncodingError(f"document {name!r} is not element-rooted")
