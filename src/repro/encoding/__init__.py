"""The XPath accelerator: pre/post document encoding [Grust 2002].

Every document node ``v`` is mapped to ``(pre(v), post(v))`` — its preorder
and postorder traversal ranks.  The staircase join (and every baseline)
operates on the resulting :class:`~repro.encoding.doctable.DocTable`, whose
``pre`` column is void (contiguous), making ``doc[i]`` a positional lookup.

:mod:`repro.encoding.regions` captures the paper's "tree knowledge" as
plain functions: the region predicates of all XPath axes in the pre/post
plane, Equation (1) subtree-size estimation, and the empty-region analysis
of Figure 7 that pruning and skipping exploit.
"""

from repro.encoding.collection import DocumentCollection
from repro.encoding.decode import decode, subtree
from repro.encoding.doctable import DocTable
from repro.encoding.persist import load, save
from repro.encoding.prepost import encode
from repro.encoding.regions import (
    Region,
    axis_region,
    is_ancestor,
    is_descendant,
    is_following,
    is_preceding,
    partitioning_axes,
    subtree_size_estimate,
    subtree_size_exact,
)
from repro.encoding.updates import (
    delete_subtree,
    insert_subtree,
    replace_subtree,
)

__all__ = [
    "DocTable",
    "DocumentCollection",
    "encode",
    "decode",
    "subtree",
    "save",
    "load",
    "delete_subtree",
    "insert_subtree",
    "replace_subtree",
    "Region",
    "axis_region",
    "is_ancestor",
    "is_descendant",
    "is_following",
    "is_preceding",
    "subtree_size_estimate",
    "subtree_size_exact",
    "partitioning_axes",
]
