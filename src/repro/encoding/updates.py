"""Document updates on the pre/post encoding.

Updates are the classic weakness of rank-based encodings: inserting or
deleting a subtree renumbers every later preorder rank and every higher
postorder rank.  The paper sidesteps updates (its documents are loaded
once); a library users adopt cannot.  This module implements subtree
insertion and deletion *by rank splicing* — O(n) array surgery instead of
a full re-parse/re-encode — relying on the same tree property the
staircase join exploits: a subtree occupies a contiguous preorder
interval **and** a contiguous postorder interval (both of size
``|desc(v)| + 1`` ending at ``post(v)``; Equation (1)).

The returned tables are fresh (``DocTable`` is immutable by design —
query results referencing old ranks stay valid against the old table).
Property tests verify splice-equals-reencode on random documents.
"""

from __future__ import annotations

from itertools import compress
from typing import List, Optional

import numpy as np

from repro.encoding.doctable import DocTable
from repro.encoding.prepost import encode
from repro.errors import EncodingError
from repro.storage.column import StringColumn
from repro.xmltree.model import Node, NodeKind

__all__ = ["delete_subtree", "insert_subtree", "replace_subtree"]


def _encode_tags(tag: StringColumn, fragment_tags: List[str]):
    """Fragment tag codes under ``tag``'s dictionary (extended as needed).

    Returns ``(codes, dictionary)``.  The splice never materialises the
    surviving rows as strings — the existing code vector is reused
    verbatim and only the (small) fragment pays a per-string lookup; the
    dictionary is copied only when the fragment introduces new tags.
    Codes orphaned by a deletion stay in the dictionary; they are
    harmless (name tests go through ``code_of``) and keep the splice
    O(fragment), not O(document).
    """
    codes = np.empty(len(fragment_tags), dtype=np.int32)
    dictionary = tag.dictionary
    fresh: dict = {}
    for i, name in enumerate(fragment_tags):
        code = tag.code_of(name)
        if code < 0:
            code = fresh.get(name)
            if code is None:
                code = len(dictionary) + len(fresh)
                fresh[name] = code
        codes[i] = code
    if fresh:
        dictionary = dictionary + list(fresh)
    return codes, dictionary


def delete_subtree(doc: DocTable, pre: int) -> DocTable:
    """Remove the subtree rooted at ``pre`` (the root itself included).

    Deleting the document root is rejected (a ``DocTable`` cannot be
    empty).  O(n).
    """
    if not 0 <= pre < len(doc):
        raise EncodingError(f"preorder rank {pre} out of range [0, {len(doc)})")
    if pre == doc.root:
        raise EncodingError("cannot delete the root element")
    size = doc.subtree_size_exact(pre)
    pre_stop = pre + size + 1  # exclusive end of the preorder interval
    post_hi = int(doc.post[pre])  # subtree posts are [post_hi - size, post_hi]
    removed = size + 1

    keep = np.ones(len(doc), dtype=bool)
    keep[pre:pre_stop] = False

    post = doc.post[keep].copy()
    post[post > post_hi] -= removed

    parent = doc.parent[keep].copy()
    parent[parent >= pre_stop] -= removed
    # Parents inside the removed interval are impossible for survivors:
    # a surviving node whose parent was in the subtree would itself be in
    # the subtree (contiguity), so no further fixup is needed.

    return DocTable(
        post=post,
        level=doc.level[keep].copy(),
        parent=parent,
        kind=doc.kind[keep].copy(),
        # Surviving codes are sliced, never re-encoded (the dictionary
        # may keep entries the deletion orphaned — see _encode_tags).
        tag=StringColumn(doc.tag.codes[keep], doc.tag.dictionary),
        values=list(compress(doc.values, keep)),
    )


def insert_subtree(
    doc: DocTable,
    parent_pre: int,
    tree: Node,
    before_pre: Optional[int] = None,
) -> DocTable:
    """Insert ``tree`` as a child of ``parent_pre``.

    ``before_pre`` positions the new subtree immediately before an
    existing child (given by its preorder rank); ``None`` appends as the
    last child.  The paper's convention keeps attributes first, and the
    attribute axis relies on it, so the splice enforces it from both
    sides: a non-attribute cannot land before an attribute, and an
    appended attribute is auto-positioned ahead of the first
    non-attribute child (an explicit ``before_pre`` that would strand an
    attribute after element/text children is rejected).
    """
    if not 0 <= parent_pre < len(doc):
        raise EncodingError(
            f"parent rank {parent_pre} out of range [0, {len(doc)})"
        )
    if doc.kind_of(parent_pre) != NodeKind.ELEMENT:
        raise EncodingError("can only insert under an element node")
    if tree.kind == NodeKind.DOCUMENT:
        raise EncodingError("insert an element/leaf subtree, not a document")
    if tree.kind == NodeKind.ATTRIBUTE and before_pre is None:
        # Appending would strand the attribute after element/text
        # children; slot it at the end of the attribute block instead.
        before_pre = doc.first_non_attribute_child_of(parent_pre)

    # Encode the incoming subtree standalone to obtain its local ranks.
    if tree.kind == NodeKind.ELEMENT:
        fragment = encode(tree)
        frag_post = fragment.post
        frag_level = fragment.level
        frag_parent = fragment.parent
        frag_kind = fragment.kind
        frag_tags = list(fragment.tag)
        frag_values = list(fragment.values)
        frag_size = len(fragment)
    else:
        # Leaf (text/comment/PI/attribute) nodes: a one-row fragment.
        frag_post = np.zeros(1, dtype=np.int64)
        frag_level = np.zeros(1, dtype=np.int64)
        frag_parent = np.asarray([-1], dtype=np.int64)
        frag_kind = np.asarray([int(tree.kind)], dtype=np.int64)
        frag_tags = [
            tree.name
            if tree.kind
            in (NodeKind.ATTRIBUTE, NodeKind.PROCESSING_INSTRUCTION)
            else ""
        ]
        frag_values = [tree.value]
        frag_size = 1

    parent_subtree_end = parent_pre + doc.subtree_size_exact(parent_pre)
    if before_pre is None:
        insert_at = parent_subtree_end + 1
        # Post rank just after the last current descendant's exit, i.e.
        # the parent's own postorder rank (the parent exits after the new
        # child once it is inserted).
        post_base = int(doc.post[parent_pre])
    else:
        if doc.parent_of(before_pre) != parent_pre:
            raise EncodingError(
                f"{before_pre} is not a child of {parent_pre}"
            )
        if doc.kind_of(before_pre) == NodeKind.ATTRIBUTE and tree.kind != NodeKind.ATTRIBUTE:
            raise EncodingError(
                "cannot insert a non-attribute before an attribute child"
            )
        if (
            tree.kind == NodeKind.ATTRIBUTE
            and doc.kind_of(before_pre) != NodeKind.ATTRIBUTE
            and before_pre != doc.first_non_attribute_child_of(parent_pre)
        ):
            raise EncodingError(
                "an attribute must stay ahead of element/text children "
                f"(rank {before_pre} is past the attribute block)"
            )
        insert_at = before_pre
        # New subtree's posts sit just below the sibling subtree's posts.
        post_base = int(doc.post[before_pre]) - doc.subtree_size_exact(before_pre)

    n = len(doc)
    # --- preorder splice -------------------------------------------------
    post = np.empty(n + frag_size, dtype=np.int64)
    level = np.empty_like(post)
    parent = np.empty_like(post)
    kind = np.empty_like(post)

    old_post = doc.post.copy()
    old_post[old_post >= post_base] += frag_size
    new_post = frag_post + post_base

    old_parent = doc.parent.copy()
    old_parent[old_parent >= insert_at] += frag_size
    new_parent = frag_parent + insert_at
    new_parent[frag_parent < 0] = parent_pre if parent_pre < insert_at else parent_pre + frag_size

    post[:insert_at] = old_post[:insert_at]
    post[insert_at : insert_at + frag_size] = new_post
    post[insert_at + frag_size :] = old_post[insert_at:]

    level[:insert_at] = doc.level[:insert_at]
    level[insert_at : insert_at + frag_size] = frag_level + doc.level[parent_pre] + 1
    level[insert_at + frag_size :] = doc.level[insert_at:]

    parent[:insert_at] = old_parent[:insert_at]
    parent[insert_at : insert_at + frag_size] = new_parent
    parent[insert_at + frag_size :] = old_parent[insert_at:]

    kind[:insert_at] = doc.kind[:insert_at]
    kind[insert_at : insert_at + frag_size] = frag_kind
    kind[insert_at + frag_size :] = doc.kind[insert_at:]

    frag_codes, dictionary = _encode_tags(doc.tag, frag_tags)
    codes = np.empty(n + frag_size, dtype=np.int32)
    codes[:insert_at] = doc.tag.codes[:insert_at]
    codes[insert_at : insert_at + frag_size] = frag_codes
    codes[insert_at + frag_size :] = doc.tag.codes[insert_at:]

    values = list(doc.values)
    values[insert_at:insert_at] = frag_values

    return DocTable(
        post=post,
        level=level,
        parent=parent,
        kind=kind,
        tag=StringColumn(codes, dictionary),
        values=values,
    )


def replace_subtree(doc: DocTable, pre: int, tree: Node) -> DocTable:
    """Replace the subtree at ``pre`` with ``tree`` (delete + insert)."""
    parent_pre = doc.parent_of(pre)
    if parent_pre < 0:
        raise EncodingError("cannot replace the root element; re-encode instead")
    # Find the following sibling (if any) to preserve the position.
    end = pre + doc.subtree_size_exact(pre)
    following_sibling: Optional[int] = None
    candidate = end + 1
    if candidate < len(doc) and doc.parent_of(candidate) == parent_pre:
        following_sibling = candidate
    without = delete_subtree(doc, pre)
    size = end - pre + 1
    if following_sibling is not None:
        anchor: Optional[int] = following_sibling - size
    else:
        anchor = None
    return insert_subtree(without, parent_pre if parent_pre < pre else parent_pre - size, tree, before_pre=anchor)
