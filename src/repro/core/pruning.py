"""Context pruning (Section 3.1, Algorithm 1).

Evaluating an axis step over a whole context *sequence* duplicates work
wherever the per-node regions overlap (Figure 5).  Pruning shrinks the
context to the nodes at the cover's boundary without changing the step
result:

* ``descendant`` — drop every context node contained in the subtree of an
  earlier context node (Algorithm 1 verbatim).  The survivors relate
  pairwise as preceding/following: a *proper staircase* (Figure 6).
* ``ancestor`` — symmetric: drop every context node that is a proper
  ancestor of another context node (its ancestors are a subset of the
  descendant's ancestors plus itself, which the descendant's ancestors
  already contain).  Survivors again form a staircase.
* ``following`` — only the context node with the *minimum postorder* rank
  survives; its following region contains every other node's (Section 3.1,
  consequence of empty region ``S`` in Figure 7 (a)).
* ``preceding`` — only the node with the *maximum preorder* rank survives.

All functions take and return sorted, duplicate-free ``int64`` arrays of
preorder ranks and count removed nodes in ``stats.context_pruned``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.counters import JoinStatistics
from repro.encoding.doctable import DocTable
from repro.errors import XPathEvaluationError

__all__ = [
    "prune",
    "prune_vectorized",
    "prune_descendant",
    "prune_ancestor",
    "prune_following",
    "prune_preceding",
    "is_proper_staircase",
    "normalize_context",
    "validate_context",
]


def normalize_context(context: np.ndarray) -> np.ndarray:
    """Sort and de-duplicate a context array (document order, unique).

    XPath step semantics demand duplicate-free, document-ordered sequences
    [2]; accepting arbitrary arrays here keeps the public API forgiving.
    Chained axis steps always hand over already-normalised arrays, so an
    O(n) sortedness check guards the O(n log n) sort.
    """
    context = np.asarray(context, dtype=np.int64)
    if len(context) > 1 and not np.all(np.diff(context) > 0):
        context = np.unique(context)
    return context


def prune_descendant(
    doc: DocTable,
    context: np.ndarray,
    stats: Optional[JoinStatistics] = None,
) -> np.ndarray:
    """Algorithm 1: drop context nodes covered by an earlier subtree.

    A context node ``c`` survives iff ``post(c)`` exceeds the postorder
    rank of the last survivor — i.e. iff ``c`` is *not* a descendant of
    any earlier context node.  One pass, pre-sorted input.
    """
    context = normalize_context(context)
    post = doc.post
    result = []
    prev = -1  # paper initialises to 0; ranks start at 0 here, so use −1
    for c in context:
        if post[c] > prev:
            result.append(c)
            prev = int(post[c])
    if stats is not None:
        stats.context_pruned += len(context) - len(result)
    return np.asarray(result, dtype=np.int64)


def prune_ancestor(
    doc: DocTable,
    context: np.ndarray,
    stats: Optional[JoinStatistics] = None,
) -> np.ndarray:
    """Drop context nodes that are proper ancestors of later context nodes.

    If ``a`` is an ancestor of ``b`` then ``ancestor(a) ∪ ancestor(b) =
    ancestor(b)`` (``b``'s ancestors include ``a`` and everything above
    it), so ``a`` can go.  A stack pass keeps exactly the nodes whose
    postorder ranks increase left-to-right — the ancestor staircase.
    """
    context = normalize_context(context)
    post = doc.post
    stack = []
    for c in context:
        # pre(stack[-1]) < pre(c) always; ancestor iff its post is larger.
        while stack and post[stack[-1]] > post[c]:
            stack.pop()
        stack.append(int(c))
    if stats is not None:
        stats.context_pruned += len(context) - len(stack)
    return np.asarray(stack, dtype=np.int64)


def prune_following(
    doc: DocTable,
    context: np.ndarray,
    stats: Optional[JoinStatistics] = None,
) -> np.ndarray:
    """Keep only the context node with the minimum postorder rank.

    For any two context nodes the one with smaller post has the larger
    following region (region ``S`` of Figure 7 (a) is empty), so the
    context degenerates to a singleton and the staircase join becomes a
    single region query.
    """
    context = normalize_context(context)
    if len(context) == 0:
        return context
    posts = doc.post[context]
    keeper = context[int(np.argmin(posts))]
    if stats is not None:
        stats.context_pruned += len(context) - 1
    return np.asarray([keeper], dtype=np.int64)


def prune_preceding(
    doc: DocTable,
    context: np.ndarray,
    stats: Optional[JoinStatistics] = None,
) -> np.ndarray:
    """Keep only the context node with the maximum preorder rank."""
    context = normalize_context(context)
    if len(context) == 0:
        return context
    keeper = context[-1]  # pre-sorted: maximum pre is the last entry
    if stats is not None:
        stats.context_pruned += len(context) - 1
    return np.asarray([keeper], dtype=np.int64)


_PRUNERS = {
    "descendant": prune_descendant,
    "ancestor": prune_ancestor,
    "following": prune_following,
    "preceding": prune_preceding,
}


def validate_context(doc: DocTable, context: np.ndarray) -> np.ndarray:
    """Reject preorder ranks outside the document.

    A context rank beyond ``len(doc)`` would make the partition scans
    read garbage silently; all public join entry points funnel through
    this check.  ``context`` must already be normalised (sorted).
    """
    if len(context) and (int(context[0]) < 0 or int(context[-1]) >= len(doc)):
        raise XPathEvaluationError(
            f"context rank out of range: document holds preorder ranks "
            f"0..{len(doc) - 1}, context spans "
            f"{int(context[0])}..{int(context[-1])}"
        )
    return context


def prune(
    doc: DocTable,
    context: np.ndarray,
    axis: str,
    stats: Optional[JoinStatistics] = None,
) -> np.ndarray:
    """Prune ``context`` for an axis step along ``axis``."""
    try:
        pruner = _PRUNERS[axis]
    except KeyError:
        raise XPathEvaluationError(
            f"pruning is defined for the partitioning axes "
            f"{sorted(_PRUNERS)}, not {axis!r}"
        ) from None
    validate_context(doc, normalize_context(context))
    return pruner(doc, context, stats)


def prune_vectorized(
    doc: DocTable,
    context: np.ndarray,
    axis: str,
    stats: Optional[JoinStatistics] = None,
) -> np.ndarray:
    """Branch-free pruning for the vectorised engine (same result as
    :func:`prune`, no per-node Python loop).

    ``context`` must already be sorted and duplicate-free (the engine's
    step invariant).  The scalar passes become closed forms:

    * ``descendant`` — a survivor's postorder rank exceeds every earlier
      one, i.e. its post equals the running maximum *and* strictly exceeds
      the previous running maximum (Algorithm 1 as a ``cummax``).
    * ``ancestor`` — a survivor is no later node's ancestor, i.e. its post
      equals the suffix minimum of the postorder ranks.
    * ``following``/``preceding`` — the min-post / max-pre singleton.
    """
    if len(context) <= 1:
        if axis not in _PRUNERS:
            raise XPathEvaluationError(
                f"pruning is defined for the partitioning axes "
                f"{sorted(_PRUNERS)}, not {axis!r}"
            )
        return context
    posts = doc.post[context]
    if axis == "descendant":
        running = np.maximum.accumulate(posts)
        keep = np.empty(len(context), dtype=bool)
        keep[0] = True
        keep[1:] = posts[1:] > running[:-1]
        result = context[keep]
    elif axis == "ancestor":
        suffix_min = np.minimum.accumulate(posts[::-1])[::-1]
        result = context[posts == suffix_min]
    elif axis == "following":
        result = context[[int(np.argmin(posts))]]
    elif axis == "preceding":
        result = context[[-1]]  # sorted: maximum pre is last
    else:
        raise XPathEvaluationError(
            f"pruning is defined for the partitioning axes "
            f"{sorted(_PRUNERS)}, not {axis!r}"
        )
    if stats is not None:
        stats.context_pruned += len(context) - len(result)
    return result


def is_proper_staircase(doc: DocTable, context: np.ndarray, axis: str) -> bool:
    """Check the staircase property pruning must establish.

    For ``descendant`` and ``ancestor``: successive context nodes relate
    pairwise on the preceding/following axis, i.e. both pre *and* post
    ranks are strictly increasing.  For the degenerate axes: at most one
    node remains.  Used by tests and by :func:`staircase_join`'s optional
    validation mode.
    """
    context = np.asarray(context, dtype=np.int64)
    if axis in ("following", "preceding"):
        return len(context) <= 1
    if axis not in ("descendant", "ancestor"):
        raise XPathEvaluationError(f"no staircase property for axis {axis!r}")
    if len(context) <= 1:
        return True
    pres_increasing = bool(np.all(np.diff(context) > 0))
    posts_increasing = bool(np.all(np.diff(doc.post[context]) > 0))
    return pres_increasing and posts_increasing
