"""Partitioned (parallelisable) staircase join (Section 3.2, Figure 8).

The pruned context induces a partitioning ``[p0, p1), [p1, p2), ...`` of
the preorder axis in which each partition contains *all* nodes needed to
compute the axis step for its context node — the partitions separate the
ancestor-or-self paths in the document tree.  "The partitioned pre/post
plane naturally leads to a parallel XPath execution strategy": partitions
can be evaluated independently and their results concatenated (document
order is preserved because partitions are ordered by preorder rank).

This module makes the partition plan explicit (:func:`plan_partitions`)
and provides :func:`partitioned_staircase_join`, which evaluates each
partition separately — serially or on a thread pool.  CPython threads do
not speed up pure-Python loops, but the strategy, its correctness, and its
per-partition statistics are what the reproduction demonstrates; the
structure is exactly what a C kernel would parallelise.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.pruning import normalize_context, prune
from repro.core.staircase import (
    SkipMode,
    _scanpartition_anc,
    _scanpartition_desc,
)
from repro.counters import JoinStatistics
from repro.encoding.doctable import DocTable
from repro.errors import XPathEvaluationError

__all__ = ["Partition", "plan_partitions", "partitioned_staircase_join"]


@dataclass(frozen=True)
class Partition:
    """One partition of the plane: scan ``[pre1, pre2]`` against a boundary.

    ``owner`` is the context node whose axis-step result this partition
    contributes; ``post_bound`` is the postorder boundary the scan tests
    against (the owner's for ``descendant``; the *right* neighbour's for
    ``ancestor`` — see Algorithm 2).
    """

    owner: int
    pre1: int
    pre2: int
    post_bound: int


def plan_partitions(
    doc: DocTable, context: np.ndarray, axis: str
) -> List[Partition]:
    """Compute the partition plan for a *pruned* context along ``axis``.

    Mirrors the partition boundaries ``p0, p1, ..., pk`` of Figure 8: for
    ``descendant`` each context node owns the interval from itself
    (exclusive) up to its successor; for ``ancestor`` each context node
    owns the interval from its predecessor (exclusive) down from the
    document start.
    """
    context = np.asarray(context, dtype=np.int64)
    n = len(doc)
    partitions: List[Partition] = []
    if len(context) == 0:
        return partitions
    if axis == "descendant":
        for index, c in enumerate(context):
            c = int(c)
            pre2 = int(context[index + 1]) - 1 if index + 1 < len(context) else n - 1
            partitions.append(Partition(c, c + 1, pre2, int(doc.post[c])))
        return partitions
    if axis == "ancestor":
        first = int(context[0])
        partitions.append(Partition(first, 0, first - 1, int(doc.post[first])))
        for index in range(len(context) - 1):
            c1 = int(context[index])
            c2 = int(context[index + 1])
            partitions.append(Partition(c2, c1 + 1, c2 - 1, int(doc.post[c2])))
        return partitions
    raise XPathEvaluationError(
        f"partition plans exist for descendant/ancestor, not {axis!r}"
    )


def partitioned_staircase_join(
    doc: DocTable,
    context: np.ndarray,
    axis: str,
    mode: SkipMode = SkipMode.ESTIMATE,
    workers: int = 0,
    stats: Optional[JoinStatistics] = None,
    keep_attributes: bool = False,
) -> np.ndarray:
    """Evaluate an axis step partition-by-partition.

    Parameters
    ----------
    workers:
        ``0`` evaluates partitions serially in plan order; ``k > 0`` uses a
        thread pool of ``k`` workers, merging per-partition results (and
        statistics) afterwards.  The result is identical either way.
    """
    stats = stats if stats is not None else JoinStatistics()
    context = prune(doc, normalize_context(context), axis, stats)
    partitions = plan_partitions(doc, context, axis)
    scan = _scanpartition_desc if axis == "descendant" else _scanpartition_anc

    def run(partition: Partition):
        local_result: List[int] = []
        local_stats = JoinStatistics()
        scan(
            doc,
            partition.pre1,
            partition.pre2,
            partition.post_bound,
            mode,
            local_result,
            local_stats,
            keep_attributes,
        )
        return local_result, local_stats

    if workers <= 0:
        outputs = [run(p) for p in partitions]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            outputs = list(pool.map(run, partitions))

    merged: List[int] = []
    for local_result, local_stats in outputs:
        merged.extend(local_result)  # plan order == document order
        stats.merge(local_stats)
    return np.asarray(merged, dtype=np.int64)
