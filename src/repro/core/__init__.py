"""The staircase join — the paper's contribution.

Public surface:

* :func:`~repro.core.pruning.prune` — context pruning for all four
  partitioning axes (Algorithm 1 and its ancestor/following/preceding
  analogues, Section 3.1).
* :func:`~repro.core.staircase.staircase_join` — the join itself, with the
  three skipping modes of the paper (``SkipMode.NONE`` = Algorithm 2,
  ``SkipMode.SKIP`` = Algorithm 3, ``SkipMode.ESTIMATE`` = Algorithm 4) and
  optional on-the-fly pruning.
* :func:`~repro.core.vectorized.staircase_join_vectorized` — a numpy bulk
  formulation exploiting the same tree knowledge (used where Python loop
  overhead would drown the measurement).
* :func:`~repro.core.vectorized.axis_step_vectorized` — the bulk kernels
  extended to every XPath axis: the vectorised execution engine behind
  ``Evaluator(engine="vectorized")``.
* :func:`~repro.core.partition.partitioned_staircase_join` — the
  partition-parallel execution strategy sketched in Section 3.2.
* :mod:`repro.core.fragments` — tag-name fragmentation (the future-work
  experiment: Q1 345 ms → 39 ms).
"""

from repro.core.fragments import FragmentedDocument
from repro.core.partition import partitioned_staircase_join, plan_partitions
from repro.core.pruning import (
    is_proper_staircase,
    prune,
    prune_ancestor,
    prune_descendant,
    prune_following,
    prune_preceding,
    prune_vectorized,
)
from repro.core.staircase import (
    SkipMode,
    staircase_join,
    staircase_join_anc,
    staircase_join_desc,
    staircase_join_following,
    staircase_join_preceding,
)
from repro.core.vectorized import (
    axis_step_vectorized,
    staircase_join_vectorized,
)

__all__ = [
    "prune",
    "prune_vectorized",
    "prune_ancestor",
    "prune_descendant",
    "prune_following",
    "prune_preceding",
    "is_proper_staircase",
    "SkipMode",
    "staircase_join",
    "staircase_join_anc",
    "staircase_join_desc",
    "staircase_join_following",
    "staircase_join_preceding",
    "staircase_join_vectorized",
    "axis_step_vectorized",
    "partitioned_staircase_join",
    "plan_partitions",
    "FragmentedDocument",
]
