"""The staircase join (Sections 3.2–3.3 and 4.2).

This module is the faithful, scalar transcription of the paper's
Algorithms 2–4.  Every variant

1. scans ``doc`` and ``context`` sequentially and only once,
2. never produces duplicate nodes, and
3. emits result nodes in document order

(the four characteristics listed at the end of Section 3.2; the test suite
asserts all of them).  The variants differ only in how much of the plane
they avoid touching:

* :attr:`SkipMode.NONE` — Algorithm 2: scan each partition fully.
* :attr:`SkipMode.SKIP` — Algorithm 3: terminate the partition scan at the
  first node outside the boundary (``descendant``), or hop over whole
  subtrees (``ancestor``); at most ``|result| + |context|`` nodes touched.
* :attr:`SkipMode.ESTIMATE` — Algorithm 4: use Equation (1) to *copy* the
  guaranteed ``post(c) − pre(c)`` descendants without any postorder
  comparison, then scan at most ``h`` more nodes.  Restricts comparisons
  to ``h × |context|`` overall.
* :attr:`SkipMode.EXACT` — our ablation: like ESTIMATE but paying one
  ``level`` lookup per context node to make Equation (1) exact, removing
  the scan phase entirely (footnote 5 mentions such an encoding variant).

Attribute nodes live in the plane but no axis except ``attribute`` may
return them (Section 3); a ``kind`` comparison filters them as they are
appended, without affecting scan/skip logic.

When ``doc`` is backed by a :class:`~repro.core.paged.PagedPlane`
(a compressed FORMAT_VERSION 3 archive opened with ``mmap=True``), every
scan below drives the plane one decoded page block at a time: the block
containing the scan head is decoded, walked with plain ndarray indexing,
and the next block is fetched only if the scan survives past the
boundary.  The paper's skipping therefore composes with paging — an
early ``break`` or a subtree hop over a block boundary means the blocks
in between are never decoded, and (cold) never faulted in from disk.
The counters are identical in both drive modes; the tests assert it.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional

import numpy as np

from repro.core.pruning import normalize_context, prune
from repro.counters import JoinStatistics
from repro.encoding.doctable import DocTable
from repro.errors import XPathEvaluationError
from repro.xmltree.model import NodeKind

__all__ = [
    "SkipMode",
    "staircase_join",
    "staircase_join_desc",
    "staircase_join_anc",
    "staircase_join_following",
    "staircase_join_preceding",
]

_ATTR = int(NodeKind.ATTRIBUTE)


class SkipMode(Enum):
    """How aggressively a partition scan avoids touching nodes."""

    NONE = "none"          # Algorithm 2 — full partition scans
    SKIP = "skip"          # Algorithm 3 — early termination / subtree hops
    ESTIMATE = "estimate"  # Algorithm 4 — Eq. (1) copy phase + short scan
    EXACT = "exact"        # ablation — Eq. (1) with the level term, no scan


def _result_array(result: List[int]) -> np.ndarray:
    return np.asarray(result, dtype=np.int64)


# ----------------------------------------------------------------------
# descendant axis
# ----------------------------------------------------------------------
def _scanpartition_desc(
    doc: DocTable,
    pre1: int,
    pre2: int,
    post_bound: int,
    mode: SkipMode,
    result: List[int],
    stats: JoinStatistics,
    keep_attributes: bool,
) -> None:
    """Scan doc positions ``[pre1, pre2]`` for nodes with ``post < bound``.

    This is ``scanpartition`` of Algorithm 2 with the `(?)` comparison,
    the early ``break`` of Algorithm 3, or the copy/scan split of
    Algorithm 4, selected by ``mode``.
    """
    post = doc.post
    kind = doc.kind
    paged = getattr(doc, "plane", None) is not None
    stats.partitions += 1

    if mode in (SkipMode.ESTIMATE, SkipMode.EXACT):
        # Copy phase: nodes pre(c)+1 .. post(c) are guaranteed descendants
        # (Equation (1) lower bound: at least post(c) − pre(c) of them).
        if mode is SkipMode.EXACT:
            # level(c) — one extra lookup makes the bound exact; pre1-1 is
            # the context node c itself.
            c = pre1 - 1
            estimate = min(pre2, c + (int(post[c]) - c + int(doc.level[c])))
        else:
            estimate = min(pre2, post_bound)  # Eq. (1) lower bound diagonal
        if paged:
            # Comparison-free copy: only the kind pages are decoded; the
            # post pages of guaranteed descendants stay packed.
            for base, kinds in kind.iter_pages(pre1, estimate + 1):
                for j in range(kinds.shape[0]):
                    stats.nodes_copied += 1
                    if keep_attributes or kinds[j] != _ATTR:
                        result.append(base + j)
                        stats.result_size += 1
        else:
            for i in range(pre1, estimate + 1):
                stats.nodes_copied += 1
                if keep_attributes or kind[i] != _ATTR:
                    result.append(i)
                    stats.result_size += 1
        if mode is SkipMode.EXACT:
            # Equation (1) with the level term is exact: no scan phase.
            stats.nodes_skipped += max(0, pre2 - max(estimate, pre1 - 1))
            return
        # A context node without descendants has post(c) < pre(c)+1, which
        # makes the copy interval empty; the scan must still start at the
        # partition head, never before it.
        scan_from = max(pre1, estimate + 1)
    else:
        scan_from = pre1

    if paged:
        # Drive block-at-a-time; an early skip abandons the remaining
        # pages of the partition without decoding them.
        for base, posts in post.iter_pages(scan_from, pre2 + 1):
            kinds = None
            for j in range(posts.shape[0]):
                stats.nodes_scanned += 1
                stats.post_comparisons += 1
                if posts[j] < post_bound:  # (?) — Algorithm 3's comparison
                    if keep_attributes:
                        result.append(base + j)
                        stats.result_size += 1
                    else:
                        if kinds is None:
                            kinds = kind[base : base + posts.shape[0]]
                        if kinds[j] != _ATTR:
                            result.append(base + j)
                            stats.result_size += 1
                elif mode is not SkipMode.NONE:
                    stats.nodes_skipped += pre2 - (base + j)
                    return
        return

    for i in range(scan_from, pre2 + 1):
        stats.nodes_scanned += 1
        stats.post_comparisons += 1
        if post[i] < post_bound:  # (?) — the comparison of Algorithm 3
            if keep_attributes or kind[i] != _ATTR:
                result.append(i)
                stats.result_size += 1
        elif mode is not SkipMode.NONE:
            stats.nodes_skipped += pre2 - i
            break  # skip — node i follows c, nothing beyond contributes


def staircase_join_desc(
    doc: DocTable,
    context: np.ndarray,
    mode: SkipMode = SkipMode.ESTIMATE,
    stats: Optional[JoinStatistics] = None,
    assume_pruned: bool = False,
    keep_attributes: bool = False,
) -> np.ndarray:
    """``context/descendant::node()`` via staircase join.

    Parameters
    ----------
    doc:
        The encoded document.
    context:
        Preorder ranks of the context sequence (any order; normalised).
    mode:
        Skipping aggressiveness; see :class:`SkipMode`.
    stats:
        Optional counters (nodes scanned / copied / skipped, ...).
    assume_pruned:
        Skip the pruning pass when the caller guarantees a proper
        staircase (the algorithms are only correct on pruned contexts).
    keep_attributes:
        Retain attribute nodes in the result (raw region semantics).
    """
    stats = stats if stats is not None else JoinStatistics()
    context = (
        np.asarray(context, dtype=np.int64)
        if assume_pruned
        else prune(doc, normalize_context(context), "descendant", stats)
    )
    result: List[int] = []
    n = len(doc)
    for index, c in enumerate(context):
        c = int(c)
        # Partition: up to (exclusive) the next context node, or doc end.
        pre2 = int(context[index + 1]) - 1 if index + 1 < len(context) else n - 1
        _scanpartition_desc(
            doc, c + 1, pre2, int(doc.post[c]), mode, result, stats, keep_attributes
        )
    return _result_array(result)


# ----------------------------------------------------------------------
# ancestor axis
# ----------------------------------------------------------------------
def _scanpartition_anc(
    doc: DocTable,
    pre1: int,
    pre2: int,
    post_bound: int,
    mode: SkipMode,
    result: List[int],
    stats: JoinStatistics,
    keep_attributes: bool,
) -> None:
    """Scan ``[pre1, pre2]`` for nodes with ``post > bound`` (ancestors).

    Skipping (Section 3.3, last paragraph): a node ``v`` inside the
    partition with ``post(v) < bound`` is — together with its whole
    subtree — in the *preceding* region of the partition's context node,
    so the scan may hop ``post(v) − pre(v)`` nodes ahead (Equation (1)
    lower bound; the estimate is off by at most ``h``).  With
    ``SkipMode.EXACT`` the hop uses the level term and lands exactly on
    the next candidate.
    """
    post = doc.post
    kind = doc.kind
    level = doc.level
    stats.partitions += 1
    if getattr(doc, "plane", None) is not None:
        # Paged drive: walk the decoded block under the scan head with
        # plain ndarray indexing; a subtree hop that crosses the block
        # boundary re-enters the outer loop, so hopped-over pages are
        # never decoded.
        i = pre1
        while i <= pre2:
            base, posts = post.page(i)
            limit = min(pre2, base + posts.shape[0] - 1)
            j = i - base
            while i <= limit:
                stats.nodes_scanned += 1
                stats.post_comparisons += 1
                if posts[j] > post_bound:
                    if keep_attributes or kind[i] != _ATTR:
                        result.append(i)
                        stats.result_size += 1
                    i += 1
                    j += 1
                elif mode is SkipMode.NONE:
                    i += 1
                    j += 1
                else:
                    if mode is SkipMode.EXACT:
                        hop = int(posts[j]) - i + int(level[i])
                    else:
                        hop = max(0, int(posts[j]) - i)
                    stats.nodes_skipped += min(hop, pre2 - i)
                    i += 1 + hop
                    j = i - base
                    if j >= posts.shape[0]:
                        break
        return
    i = pre1
    while i <= pre2:
        stats.nodes_scanned += 1
        stats.post_comparisons += 1
        if post[i] > post_bound:
            if keep_attributes or kind[i] != _ATTR:
                result.append(i)
                stats.result_size += 1
            i += 1
        elif mode is SkipMode.NONE:
            i += 1
        else:
            # v = doc[i] is not an ancestor: hop over its subtree.
            if mode is SkipMode.EXACT:
                hop = int(post[i]) - i + int(level[i])  # exact |desc(v)|
            else:
                hop = max(0, int(post[i]) - i)  # guaranteed descendants
            stats.nodes_skipped += min(hop, pre2 - i)
            i += 1 + hop


def staircase_join_anc(
    doc: DocTable,
    context: np.ndarray,
    mode: SkipMode = SkipMode.ESTIMATE,
    stats: Optional[JoinStatistics] = None,
    assume_pruned: bool = False,
    keep_attributes: bool = False,
) -> np.ndarray:
    """``context/ancestor::node()`` via staircase join.

    Mirrors Algorithm 2's ``staircasejoin_anc``: the first partition runs
    from the document start to the first context node with that node's
    postorder rank as the boundary; each following partition is delimited
    by a successive context pair and owned by the *right* node.
    """
    stats = stats if stats is not None else JoinStatistics()
    context = (
        np.asarray(context, dtype=np.int64)
        if assume_pruned
        else prune(doc, normalize_context(context), "ancestor", stats)
    )
    result: List[int] = []
    if len(context) == 0:
        return _result_array(result)
    first = int(context[0])
    _scanpartition_anc(
        doc, 0, first - 1, int(doc.post[first]), mode, result, stats, keep_attributes
    )
    for index in range(len(context) - 1):
        c1 = int(context[index])
        c2 = int(context[index + 1])
        _scanpartition_anc(
            doc, c1 + 1, c2 - 1, int(doc.post[c2]), mode, result, stats, keep_attributes
        )
    return _result_array(result)


# ----------------------------------------------------------------------
# following / preceding axes (degenerate staircases, Section 3.1)
# ----------------------------------------------------------------------
def staircase_join_following(
    doc: DocTable,
    context: np.ndarray,
    mode: SkipMode = SkipMode.ESTIMATE,
    stats: Optional[JoinStatistics] = None,
    keep_attributes: bool = False,
) -> np.ndarray:
    """``context/following::node()`` — a single region query after pruning.

    Pruning leaves the context node ``c`` with minimum postorder rank.
    Every node after ``c``'s subtree follows ``c`` (nothing after ``c`` in
    preorder can be its ancestor), so with skipping the join *hops over
    the subtree* and copies the rest of the table.
    """
    stats = stats if stats is not None else JoinStatistics()
    context = prune(doc, normalize_context(context), "following", stats)
    result: List[int] = []
    if len(context) == 0:
        return _result_array(result)
    c = int(context[0])
    post_c = int(doc.post[c])
    post = doc.post
    kind = doc.kind
    n = len(doc)
    paged = getattr(doc, "plane", None) is not None
    stats.partitions += 1
    if mode is SkipMode.NONE:
        if paged:
            for base, posts in post.iter_pages(c + 1, n):
                kinds = None
                for j in range(posts.shape[0]):
                    stats.nodes_scanned += 1
                    stats.post_comparisons += 1
                    if posts[j] > post_c:
                        if keep_attributes:
                            result.append(base + j)
                            stats.result_size += 1
                        else:
                            if kinds is None:
                                kinds = kind[base : base + posts.shape[0]]
                            if kinds[j] != _ATTR:
                                result.append(base + j)
                                stats.result_size += 1
            return _result_array(result)
        for i in range(c + 1, n):
            stats.nodes_scanned += 1
            stats.post_comparisons += 1
            if post[i] > post_c:
                if keep_attributes or kind[i] != _ATTR:
                    result.append(i)
                    stats.result_size += 1
        return _result_array(result)
    # Skip c's subtree (guaranteed descendants), scan the ≤ h stragglers,
    # then copy everything else comparison-free.  Under a paged plane the
    # hop means the subtree's pages are simply never decoded.
    i = c + 1
    hop = max(0, post_c - c)
    stats.nodes_skipped += min(hop, n - i)
    i += hop
    while i < n:
        stats.nodes_scanned += 1
        stats.post_comparisons += 1
        if post[i] > post_c:
            break
        i += 1
    else:
        return _result_array(result)
    if paged:
        # Comparison-free copy over the kind pages only.
        for base, kinds in kind.iter_pages(i, n):
            for j in range(kinds.shape[0]):
                stats.nodes_copied += 1
                if keep_attributes or kinds[j] != _ATTR:
                    result.append(base + j)
                    stats.result_size += 1
        return _result_array(result)
    for j in range(i, n):
        stats.nodes_copied += 1
        if keep_attributes or kind[j] != _ATTR:
            result.append(j)
            stats.result_size += 1
    return _result_array(result)


def staircase_join_preceding(
    doc: DocTable,
    context: np.ndarray,
    mode: SkipMode = SkipMode.ESTIMATE,
    stats: Optional[JoinStatistics] = None,
    keep_attributes: bool = False,
) -> np.ndarray:
    """``context/preceding::node()`` — a single region query after pruning.

    Pruning leaves the node ``c`` with maximum preorder rank; the scan
    walks ``0 .. pre(c)−1`` keeping nodes with ``post < post(c)``.  The
    only non-qualifying nodes in that range are ``c``'s ≤ ``h`` ancestors,
    so there is nothing to skip — the scan already touches
    ``|result| + level(c)`` nodes.
    """
    stats = stats if stats is not None else JoinStatistics()
    context = prune(doc, normalize_context(context), "preceding", stats)
    result: List[int] = []
    if len(context) == 0:
        return _result_array(result)
    c = int(context[0])
    post_c = int(doc.post[c])
    post = doc.post
    kind = doc.kind
    stats.partitions += 1
    if getattr(doc, "plane", None) is not None:
        for base, posts in post.iter_pages(0, c):
            kinds = None
            for j in range(posts.shape[0]):
                stats.nodes_scanned += 1
                stats.post_comparisons += 1
                if posts[j] < post_c:
                    if keep_attributes:
                        result.append(base + j)
                        stats.result_size += 1
                    else:
                        if kinds is None:
                            kinds = kind[base : base + posts.shape[0]]
                        if kinds[j] != _ATTR:
                            result.append(base + j)
                            stats.result_size += 1
        return _result_array(result)
    for i in range(0, c):
        stats.nodes_scanned += 1
        stats.post_comparisons += 1
        if post[i] < post_c:
            if keep_attributes or kind[i] != _ATTR:
                result.append(i)
                stats.result_size += 1
    return _result_array(result)


# ----------------------------------------------------------------------
# Dispatcher
# ----------------------------------------------------------------------
_JOINS = {
    "descendant": staircase_join_desc,
    "ancestor": staircase_join_anc,
}


def staircase_join(
    doc: DocTable,
    context: np.ndarray,
    axis: str,
    mode: SkipMode = SkipMode.ESTIMATE,
    stats: Optional[JoinStatistics] = None,
    keep_attributes: bool = False,
) -> np.ndarray:
    """Evaluate an axis step along any of the four partitioning axes.

    Pruning is always applied (it is part of the operator: "staircase join
    is easily adapted to do pruning on-the-fly").  Returns preorder ranks
    in document order without duplicates.
    """
    if axis == "following":
        return staircase_join_following(
            doc, context, mode, stats, keep_attributes=keep_attributes
        )
    if axis == "preceding":
        return staircase_join_preceding(
            doc, context, mode, stats, keep_attributes=keep_attributes
        )
    try:
        join = _JOINS[axis]
    except KeyError:
        raise XPathEvaluationError(
            f"staircase join handles the partitioning axes, not {axis!r}"
        ) from None
    return join(doc, context, mode, stats, keep_attributes=keep_attributes)
