"""The paged plane: a compressed shard the join kernels stream over.

A :class:`PagedPlane` is what :func:`repro.encoding.persist.load` hands
back for a FORMAT_VERSION 3 archive opened with ``mmap=True``: every
column is a :class:`~repro.encoding.codec.PagedArray` over the mmap'd
packed blobs, decoding one fixed-height page block on first touch.

The staircase join's skipping (Algorithms 3/4) composes with paging for
free: a skipped ``(pre, post)`` range is a range of page blocks whose
decode never runs — and, cold, whose backing bytes are never faulted in
from disk.  The scalar join drives the plane through
:meth:`~repro.encoding.codec.PagedArray.iter_pages` /
:meth:`~repro.encoding.codec.PagedArray.page` (see
``repro.core.staircase``); the vectorized kernels need no changes at
all, because they touch columns only through gathers, windowed slices,
and scalar reads — exactly the access shapes ``PagedArray`` serves block
by block.

The plane also carries the decode accounting ``store info`` reports:
blocks/bytes decoded per column, packed bytes, dictionary sizes.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.encoding.codec import PagedArray, PlaneStats

__all__ = ["PagedPlane"]


class PagedPlane:
    """Bookkeeping face of a paged (compressed, mmap'd) document table.

    Attributes
    ----------
    path:
        The backing v3 archive (must outlive the plane).
    page_size:
        Values per page block (power of two).
    nodes:
        Logical column length.
    columns:
        ``column name → PagedArray`` for every packed column.
    stats:
        ``column name → PlaneStats`` decode counters, shared with the
        arrays in ``columns``.
    """

    __slots__ = (
        "path",
        "page_size",
        "nodes",
        "columns",
        "stats",
        "tag_dictionary_bytes",
        "value_dictionary_bytes",
        "value_dictionary_entries",
    )

    def __init__(
        self,
        path: str,
        page_size: int,
        nodes: int,
        columns: Dict[str, PagedArray],
        stats: Dict[str, PlaneStats],
        tag_dictionary_bytes: int = 0,
        value_dictionary_bytes: int = 0,
        value_dictionary_entries: int = 0,
    ):
        self.path = path
        self.page_size = page_size
        self.nodes = nodes
        self.columns = columns
        self.stats = stats
        self.tag_dictionary_bytes = tag_dictionary_bytes
        self.value_dictionary_bytes = value_dictionary_bytes
        self.value_dictionary_entries = value_dictionary_entries

    def iter_chunks(
        self, names: Tuple[str, ...], start: int, stop: int
    ) -> Iterator[Tuple[int, Tuple]]:
        """Lockstep page iteration over several columns of one plane."""
        primary = self.columns[names[0]]
        rest = [self.columns[name] for name in names[1:]]
        for base, chunk in primary.iter_pages(start, stop):
            yield base, (chunk,) + tuple(
                column[base : base + chunk.shape[0]] for column in rest
            )

    # -- accounting ----------------------------------------------------
    def column_stats(self) -> Dict[str, dict]:
        """Per-column decode/packing counters (``store info``)."""
        report: Dict[str, dict] = {}
        for name, array in self.columns.items():
            stat = self.stats[name]
            report[name] = {
                "pages": array.directory.n_blocks,
                "packed_bytes": array.packed_bytes,
                "logical_bytes": array.nbytes,
                "blocks_decoded": stat.blocks_decoded,
                "bytes_decoded": stat.bytes_decoded,
                "full_decodes": stat.full_decodes,
            }
        return report

    def totals(self) -> dict:
        """Plane-wide decode/packing totals."""
        per_column = self.column_stats()
        return {
            "pages": sum(c["pages"] for c in per_column.values()),
            "packed_bytes": sum(c["packed_bytes"] for c in per_column.values()),
            "logical_bytes": sum(c["logical_bytes"] for c in per_column.values()),
            "blocks_decoded": sum(
                c["blocks_decoded"] for c in per_column.values()
            ),
            "bytes_decoded": sum(
                c["bytes_decoded"] for c in per_column.values()
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PagedPlane(nodes={self.nodes}, page_size={self.page_size}, "
            f"columns={sorted(self.columns)})"
        )
