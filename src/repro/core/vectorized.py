"""Vectorised (bulk) staircase join kernels.

The scalar loops in :mod:`repro.core.staircase` transcribe the paper's
algorithms one comparison at a time, which is what the node-access counters
need — but a Python interpreter pays ~100 ns per iteration where the
paper's C loop paid 5–17 cycles.  For the wall-clock experiments we
therefore also provide bulk kernels that exploit *exactly the same tree
knowledge*, expressed as numpy array operations:

* ``descendant`` — after pruning, each surviving context node's subtree is
  a *contiguous* preorder interval ``pre(c)+1 .. pre(c)+|desc(c)|``
  (Equation (1) with the level term makes the interval exact), and the
  intervals of a proper staircase are pairwise disjoint.  The join is a
  concatenation of ``arange`` spans — the moral equivalent of the paper's
  comparison-free copy phase.
* ``ancestor`` — climb the ``parent`` column from each pruned context
  node, stopping at the first already-visited ancestor (paths that meet
  share their remaining prefix, so each document node is visited at most
  once across the whole context: the same "no node touched twice"
  guarantee as the scalar join).
* ``following``/``preceding`` — single ``arange`` / boolean-mask region
  query for the degenerate context.

Results are identical to the scalar kernels (asserted property-based in
the test suite).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.counters import JoinStatistics
from repro.core.pruning import normalize_context, prune
from repro.encoding.doctable import DocTable
from repro.errors import XPathEvaluationError
from repro.xmltree.model import NodeKind

__all__ = ["staircase_join_vectorized"]

_ATTR = int(NodeKind.ATTRIBUTE)


def _strip_attributes(doc: DocTable, pres: np.ndarray) -> np.ndarray:
    if len(pres) == 0:
        return pres
    return pres[doc.kind[pres] != _ATTR]


def _desc_vectorized(doc: DocTable, context: np.ndarray) -> np.ndarray:
    """Concatenate the (disjoint) subtree intervals of the staircase."""
    if len(context) == 0:
        return np.empty(0, dtype=np.int64)
    sizes = doc.post[context] - context + doc.level[context]  # Equation (1)
    spans = [
        np.arange(int(c) + 1, int(c) + 1 + int(size), dtype=np.int64)
        for c, size in zip(context, sizes)
        if size > 0
    ]
    if not spans:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(spans)


def _anc_vectorized(doc: DocTable, context: np.ndarray) -> np.ndarray:
    """Union of ancestor paths via the parent column, each node once."""
    parent = doc.parent
    seen = set()
    for c in context:
        node = int(parent[c])
        while node >= 0 and node not in seen:
            seen.add(node)
            node = int(parent[node])
    if not seen:
        return np.empty(0, dtype=np.int64)
    return np.asarray(sorted(seen), dtype=np.int64)


def _following_vectorized(doc: DocTable, context: np.ndarray) -> np.ndarray:
    c = int(context[0])
    end_of_subtree = c + int(doc.post[c]) - c + int(doc.level[c])  # Equation (1)
    return np.arange(end_of_subtree + 1, len(doc), dtype=np.int64)


def _preceding_vectorized(doc: DocTable, context: np.ndarray) -> np.ndarray:
    c = int(context[0])
    candidates = np.arange(0, c, dtype=np.int64)
    return candidates[doc.post[candidates] < int(doc.post[c])]


def staircase_join_vectorized(
    doc: DocTable,
    context: np.ndarray,
    axis: str,
    stats: Optional[JoinStatistics] = None,
    keep_attributes: bool = False,
) -> np.ndarray:
    """Bulk staircase join along any partitioning axis.

    Same contract as :func:`repro.core.staircase.staircase_join`: context
    is normalised and pruned, the result is duplicate-free and in document
    order.  ``stats`` receives pruning and result counters only (bulk
    kernels have no per-node scan counts by construction).
    """
    stats = stats if stats is not None else JoinStatistics()
    context = prune(doc, normalize_context(context), axis, stats)
    if len(context) == 0:
        return np.empty(0, dtype=np.int64)
    if axis == "descendant":
        result = _desc_vectorized(doc, context)
    elif axis == "ancestor":
        result = _anc_vectorized(doc, context)
    elif axis == "following":
        result = _following_vectorized(doc, context)
    elif axis == "preceding":
        result = _preceding_vectorized(doc, context)
    else:
        raise XPathEvaluationError(
            f"vectorised staircase join handles the partitioning axes, not {axis!r}"
        )
    if not keep_attributes:
        result = _strip_attributes(doc, result)
    stats.result_size += int(len(result))
    return result
