"""Vectorised (bulk) execution kernels for every XPath axis.

The scalar loops in :mod:`repro.core.staircase` transcribe the paper's
algorithms one comparison at a time, which is what the node-access counters
need — but a Python interpreter pays ~100 ns per iteration where the
paper's C loop paid 5–17 cycles.  This module provides bulk kernels that
exploit *exactly the same tree knowledge*, expressed as numpy array
operations, for **all** axes the evaluator implements — the four
partitioning axes the staircase join owns *and* the structural axes the
scalar :class:`~repro.xpath.axes.AxisExecutor` serves with Python loops:

* ``descendant`` — after pruning, each surviving context node's subtree is
  a *contiguous* preorder interval ``pre(c)+1 .. pre(c)+|desc(c)|``
  (Equation (1) with the level term makes the interval exact), and the
  intervals of a proper staircase are pairwise disjoint.  The join is a
  single ``arange`` plus a ``repeat``-broadcast of per-span offsets — no
  Python-level per-context loop, the moral equivalent of the paper's
  comparison-free copy phase.
* ``ancestor`` — level-synchronised batched parent hops: the whole context
  frontier climbs the ``parent`` column at once, a boolean visited mask
  merges paths that meet, and the loop runs at most ``height`` iterations
  (each a bulk gather).  Every document node is marked at most once: the
  same "no node touched twice" guarantee as the scalar join.
* ``following``/``preceding`` — one region query against the plane.  The
  kernels accept arbitrary (multi-node) contexts: the union of following
  regions is the region of the context node with minimum postorder rank,
  the union of preceding regions that of the node with maximum preorder
  rank (the same degeneration :func:`~repro.core.pruning.prune` applies).
* ``child``/``attribute`` — an equi-join of the ``parent`` column against
  the context, restricted to the window of preorder ranks that can contain
  children of the context (``min(c)+1 .. max(c + |subtree(c)|)``).
* ``following-sibling``/``preceding-sibling`` — the same windowed
  parent-column join, then a per-parent rank comparison against the
  extreme context child of that parent (gathered via ``searchsorted``).
* ``parent``/``self``/``*-or-self`` — single gathers and sorted unions.

Results are identical to the scalar kernels (asserted property-based in
the test suite); :func:`axis_step_vectorized` is the engine entry point
the :class:`~repro.xpath.axes.AxisExecutor` dispatches to when
constructed with ``engine="vectorized"``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.pruning import (
    normalize_context,
    prune_vectorized,
    validate_context,
)
from repro.counters import JoinStatistics
from repro.encoding.doctable import DocTable
from repro.errors import XPathEvaluationError
from repro.xmltree.model import NodeKind

__all__ = ["staircase_join_vectorized", "axis_step_vectorized"]

_ATTR = int(NodeKind.ATTRIBUTE)


def _empty() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


def _strip_attributes(doc: DocTable, pres: np.ndarray) -> np.ndarray:
    if len(pres) == 0:
        return pres
    return pres[doc.kind[pres] != _ATTR]


def subtree_sizes(doc: DocTable, pres: np.ndarray) -> np.ndarray:
    """Exact ``|v/descendant|`` per node — Equation (1) with the level term."""
    return np.maximum(doc.post[pres] - pres + doc.level[pres], 0)


def concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate the ranges ``[starts_i, starts_i + counts_i)`` bulk-wise.

    The concatenation is ``arange(total)`` shifted per range: each range's
    shift is its start minus the number of output slots that precede it.
    Ranges with ``counts == 0`` must be filtered out by the caller.
    """
    if len(counts) == 0:
        return _empty()
    ends = np.cumsum(counts)
    shifts = np.repeat(starts - (ends - counts), counts)
    return np.arange(int(ends[-1]), dtype=np.int64) + shifts


def _require_context(context: np.ndarray, axis: str) -> None:
    """The region kernels need at least one context node to anchor on.

    ``staircase_join_vectorized`` short-circuits empty contexts before
    dispatching, so an empty array here means a caller bypassed the public
    entry point with malformed input — raise instead of crashing on an
    out-of-bounds index.
    """
    if len(context) == 0:
        raise XPathEvaluationError(
            f"vectorised {axis!r} kernel requires a non-empty context"
        )


# ----------------------------------------------------------------------
# Partitioning axes
# ----------------------------------------------------------------------
def _desc_vectorized(doc: DocTable, context: np.ndarray) -> np.ndarray:
    """Concatenate the (disjoint) subtree intervals of the staircase."""
    if len(context) == 0:
        return _empty()
    sizes = subtree_sizes(doc, context)
    populated = sizes > 0
    return concat_ranges(context[populated] + 1, sizes[populated])


def _anc_vectorized(doc: DocTable, context: np.ndarray) -> np.ndarray:
    """Union of ancestor paths via batched, level-synchronised parent hops.

    The whole frontier hops one level per iteration; paths that meet are
    merged by the visited mask, so the loop body runs at most ``height``
    times and each document node is marked at most once.
    """
    parent = doc.parent
    visited = np.zeros(len(doc), dtype=bool)
    frontier = parent[context]
    frontier = np.unique(frontier[frontier >= 0])
    while len(frontier):
        fresh = frontier[~visited[frontier]]
        if len(fresh) == 0:
            break
        visited[fresh] = True
        frontier = parent[fresh]
        frontier = np.unique(frontier[frontier >= 0])
    return np.nonzero(visited)[0].astype(np.int64)


def _following_vectorized(doc: DocTable, context: np.ndarray) -> np.ndarray:
    """Everything after the anchor's subtree, as one ``arange``.

    For a multi-node context the union of following regions is the region
    of the node with *minimum postorder* rank (the invariant
    :func:`~repro.core.pruning.prune_following` establishes); the kernel
    computes that anchor itself, so it is correct for arbitrary contexts,
    pruned or not.
    """
    _require_context(context, "following")
    anchor = int(context[np.argmin(doc.post[context])])
    end_of_subtree = anchor + doc.subtree_size_exact(anchor)
    return np.arange(end_of_subtree + 1, len(doc), dtype=np.int64)


def _preceding_vectorized(doc: DocTable, context: np.ndarray) -> np.ndarray:
    """Everything before the anchor that is not one of its ancestors.

    The union of preceding regions is the region of the context node with
    *maximum preorder* rank (:func:`~repro.core.pruning.prune_preceding`'s
    invariant); ancestors of the anchor sit before it in preorder but have
    larger postorder ranks, hence the boolean mask.
    """
    _require_context(context, "preceding")
    anchor = int(context.max())
    candidates = np.arange(0, anchor, dtype=np.int64)
    return candidates[doc.post[candidates] < int(doc.post[anchor])]


# ----------------------------------------------------------------------
# Structural axes (parent-column equi-joins, windowed)
# ----------------------------------------------------------------------
def _nodes_with_parent_in(
    doc: DocTable, parents: np.ndarray, want_attributes: bool
) -> np.ndarray:
    """All nodes whose parent is in ``parents``, filtered by kind.

    Children of ``c`` live inside ``c``'s subtree span, so the union of
    spans bounds the scan — a predicate evaluating a child step per small
    subtree touches a few dozen slots instead of the whole column.  The
    single-parent case (every predicate sub-evaluation) avoids all array
    temporaries beyond the window itself; the general case replaces
    ``np.isin`` with a ``searchsorted`` probe against the sorted parent
    set, which has far lower constant overhead.
    """
    if len(parents) == 0:
        return _empty()
    if len(parents) == 1:
        anchor = int(parents[0])
        lo = anchor + 1
        hi = min(anchor + doc.subtree_size_exact(anchor) + 1, len(doc))
        if lo >= hi:
            return _empty()
        window = slice(lo, hi)
        mask = doc.parent[window] == anchor
    else:
        lo = int(parents[0]) + 1  # parents arrive sorted
        hi = min(int((parents + subtree_sizes(doc, parents)).max()) + 1, len(doc))
        if lo >= hi:
            return _empty()
        window = slice(lo, hi)
        segment = doc.parent[window]
        if len(parents) * 16 > hi - lo:
            # Dense context: one boolean lookup table beats a log-factor
            # searchsorted probe per window slot.  Parents all lie in
            # [lo-1, hi), so a window-sized table suffices; window nodes
            # whose parent sits before the window (outer ancestors, or
            # the root's -1) can never match.
            base = lo - 1
            table = np.zeros(hi - base, dtype=bool)
            table[parents - base] = True
            shifted = segment - base
            mask = (shifted >= 0) & table[np.maximum(shifted, 0)]
        else:
            slots = np.searchsorted(parents, segment)
            slots[slots == len(parents)] = 0
            mask = parents[slots] == segment
    if want_attributes:
        mask &= doc.kind[window] == _ATTR
    else:
        mask &= doc.kind[window] != _ATTR
    return np.nonzero(mask)[0].astype(np.int64) + lo


def _child_vectorized(doc: DocTable, context: np.ndarray) -> np.ndarray:
    return _nodes_with_parent_in(doc, context, want_attributes=False)


def _attribute_vectorized(doc: DocTable, context: np.ndarray) -> np.ndarray:
    return _nodes_with_parent_in(doc, context, want_attributes=True)


def _parent_vectorized(doc: DocTable, context: np.ndarray) -> np.ndarray:
    parents = doc.parent[context]
    return np.unique(parents[parents >= 0])


def _siblings_vectorized(
    doc: DocTable, context: np.ndarray, following: bool
) -> np.ndarray:
    """Siblings on one side of any context node, set-at-a-time.

    A node ``v`` is a following sibling of *some* context node iff
    ``parent(v)`` holds a context child smaller than ``v`` — so per parent
    only the extreme (min for following, max for preceding) context child
    matters.  Context order is ascending, so a stable sort by parent keeps
    each group ascending and the group edges are the extremes.  Attribute
    context nodes have no siblings in the XPath sense (attributes are not
    children), and attribute nodes are never produced.
    """
    kinds = doc.kind[context]
    parents = doc.parent[context]
    eligible = (parents >= 0) & (kinds != _ATTR)
    ctx = context[eligible]
    parent_of_ctx = parents[eligible]
    if len(ctx) == 0:
        return _empty()
    order = np.argsort(parent_of_ctx, kind="stable")
    parent_sorted = parent_of_ctx[order]
    ctx_sorted = ctx[order]
    group_ends = np.nonzero(np.diff(parent_sorted))[0]
    if following:
        edges = np.concatenate(([0], group_ends + 1), dtype=np.int64)  # min child per parent
    else:
        edges = np.concatenate(  # max child
            (group_ends, [len(parent_sorted) - 1]), dtype=np.int64
        )
    unique_parents = parent_sorted[edges]
    extreme_child = ctx_sorted[edges]
    candidates = _nodes_with_parent_in(doc, unique_parents, want_attributes=False)
    if len(candidates) == 0:
        return candidates
    slot = np.searchsorted(unique_parents, doc.parent[candidates])
    bound = extreme_child[slot]
    return candidates[candidates > bound] if following else candidates[candidates < bound]


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def staircase_join_vectorized(
    doc: DocTable,
    context: np.ndarray,
    axis: str,
    stats: Optional[JoinStatistics] = None,
    keep_attributes: bool = False,
) -> np.ndarray:
    """Bulk staircase join along any partitioning axis.

    Same contract as :func:`repro.core.staircase.staircase_join`: context
    is normalised and pruned (via the branch-free
    :func:`~repro.core.pruning.prune_vectorized`), the result is
    duplicate-free and in document order.  ``stats`` receives pruning and
    result counters only (bulk kernels have no per-node scan counts by
    construction).
    """
    stats = stats if stats is not None else JoinStatistics()
    context = prune_vectorized(
        doc, validate_context(doc, normalize_context(context)), axis, stats
    )
    if len(context) == 0:
        return _empty()
    if axis == "descendant":
        result = _desc_vectorized(doc, context)
    elif axis == "ancestor":
        result = _anc_vectorized(doc, context)
    elif axis == "following":
        result = _following_vectorized(doc, context)
    elif axis == "preceding":
        result = _preceding_vectorized(doc, context)
    else:
        raise XPathEvaluationError(
            f"vectorised staircase join handles the partitioning axes, not {axis!r}"
        )
    if not keep_attributes:
        result = _strip_attributes(doc, result)
    stats.result_size += int(len(result))
    return result


_PARTITIONING = frozenset(("descendant", "ancestor", "following", "preceding"))


def axis_step_vectorized(
    doc: DocTable,
    context: np.ndarray,
    axis: str,
    stats: Optional[JoinStatistics] = None,
    keep_attributes: bool = False,
) -> np.ndarray:
    """One bulk axis step — the vectorised engine's counterpart of
    :meth:`repro.xpath.axes.AxisExecutor.step`.

    Accepts any of the implemented axes (:data:`repro.xpath.ast.AXES`),
    normalises the context, and returns a sorted, duplicate-free ``int64``
    array of preorder ranks identical to the scalar executor's output.
    Partitioning axes route through :func:`staircase_join_vectorized`
    (pruning + counters included); the remaining axes are pure numpy
    gathers and windowed parent-column joins.

    ``keep_attributes`` (raw region semantics) applies to the region
    axes — the four partitioning axes and their ``*-or-self`` variants.
    The structural axes have fixed kind semantics by the XPath data
    model (``child``/siblings never yield attributes, ``attribute``
    yields nothing else), so the flag does not affect them.
    """
    if axis in _PARTITIONING:
        # Delegates normalisation/validation to the join entry point.
        return staircase_join_vectorized(
            doc, context, axis, stats, keep_attributes=keep_attributes
        )
    context = validate_context(doc, normalize_context(context))
    if len(context) == 0:
        return _empty()
    if axis == "descendant-or-self":
        descendants = staircase_join_vectorized(
            doc, context, "descendant", stats, keep_attributes=keep_attributes
        )
        return np.union1d(context, descendants)
    if axis == "ancestor-or-self":
        ancestors = staircase_join_vectorized(
            doc, context, "ancestor", stats, keep_attributes=keep_attributes
        )
        return np.union1d(context, ancestors)
    if axis == "child":
        return _child_vectorized(doc, context)
    if axis == "attribute":
        return _attribute_vectorized(doc, context)
    if axis == "parent":
        return _parent_vectorized(doc, context)
    if axis == "self":
        return context
    if axis == "following-sibling":
        return _siblings_vectorized(doc, context, following=True)
    if axis == "preceding-sibling":
        return _siblings_vectorized(doc, context, following=False)
    raise XPathEvaluationError(f"unsupported axis {axis!r}")
