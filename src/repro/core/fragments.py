"""Tag-name fragmentation (the paper's Future Research section).

"An interesting strategy is to fragment by tag name.  First experiments
are encouraging: the execution time of Q1 could be brought down from
345 ms to 39 ms."

A :class:`FragmentedDocument` splits the ``doc`` table into per-tag
fragments: for every tag name, the (pre, post) pairs of the elements
carrying it, pre-sorted.  An axis step with a name test then only ever
reads the fragment of the tested tag — the name test has effectively been
pushed *into the storage layout*.  The staircase join logic carries over
unchanged except that preorder ranks inside a fragment are no longer
contiguous, so the partition scan walks fragment positions (found by
binary search) instead of plane positions; the postorder boundary tests
and skip reasoning are identical because pre/post ranks keep their global
meaning inside a fragment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.pruning import (
    normalize_context,
    prune,
    prune_vectorized,
    validate_context,
)
from repro.core.vectorized import (
    concat_ranges,
    staircase_join_vectorized,
    subtree_sizes,
)
from repro.counters import JoinStatistics
from repro.encoding.doctable import DocTable
from repro.xmltree.model import NodeKind

__all__ = ["FragmentedDocument"]


class FragmentedDocument:
    """Per-tag fragments of a document's element nodes.

    Fragments are built once (the analogue of choosing a fragmented
    storage layout at load time) and reused across queries.  Text,
    comment, PI and attribute nodes are not fragmented — the paper's
    fragmentation experiment concerns name-tested element steps.
    """

    def __init__(self, doc: DocTable):
        self.doc = doc
        self._fragments: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        element_kind = int(NodeKind.ELEMENT)
        for code, tag in enumerate(doc.tag.dictionary):
            mask = (doc.tag.codes == code) & (doc.kind == element_kind)
            pres = np.nonzero(mask)[0].astype(np.int64)
            if len(pres):
                self._fragments[tag] = (pres, doc.post[pres])

    # ------------------------------------------------------------------
    def tags(self) -> List[str]:
        """Tag names that have a fragment, sorted."""
        return sorted(self._fragments)

    def fragment(self, tag: str) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(pre, post)`` arrays of the elements tagged ``tag``.

        Unknown tags yield empty fragments (an absent tag is an empty
        relation, not an error — mirroring ``code_of``'s −1 sentinel).
        """
        if tag in self._fragments:
            return self._fragments[tag]
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    def fragment_sizes(self) -> Dict[str, int]:
        """Tag → element count, e.g. for choosing fragmentation thresholds."""
        return {tag: len(pres) for tag, (pres, _) in self._fragments.items()}

    # ------------------------------------------------------------------
    def descendant_step(
        self,
        context: np.ndarray,
        tag: str,
        stats: Optional[JoinStatistics] = None,
    ) -> np.ndarray:
        """``context/descendant::tag`` reading only ``tag``'s fragment.

        For each pruned context node ``c``: binary-search the fragment for
        the first pre rank beyond ``pre(c)``, then take entries while
        ``post < post(c)``.  Inside a partition the fragment is "scanned
        with skipping": the first entry at or beyond the boundary ends the
        partition (type-``Z`` empty region, exactly as in Algorithm 3).
        """
        stats = stats if stats is not None else JoinStatistics()
        context = prune(self.doc, normalize_context(context), "descendant", stats)
        pres, posts = self.fragment(tag)
        result: List[int] = []
        for c in context:
            c = int(c)
            post_c = int(self.doc.post[c])
            stats.partitions += 1
            stats.index_probes += 1
            i = int(np.searchsorted(pres, c + 1, side="left"))
            while i < len(pres):
                stats.nodes_scanned += 1
                stats.post_comparisons += 1
                if posts[i] < post_c:
                    result.append(int(pres[i]))
                    stats.result_size += 1
                    i += 1
                else:
                    break  # skip — rest of fragment is outside c's subtree
        return np.asarray(result, dtype=np.int64)

    def descendant_step_vectorized(
        self,
        context: np.ndarray,
        tag: str,
        stats: Optional[JoinStatistics] = None,
    ) -> np.ndarray:
        """Bulk ``context/descendant::tag`` over the fragment.

        Descendants of a pruned context node ``c`` occupy the contiguous
        preorder interval ``pre(c)+1 .. pre(c)+|desc(c)|``, and the
        fragment is pre-sorted — so the per-``c`` hits are a contiguous
        *fragment* slice found by two binary searches, and the whole step
        is a batched ``searchsorted`` plus one gather (the vectorised
        engine's counterpart of :meth:`descendant_step`).
        """
        stats = stats if stats is not None else JoinStatistics()
        context = prune_vectorized(
            self.doc,
            validate_context(self.doc, normalize_context(context)),
            "descendant",
            stats,
        )
        pres, _ = self.fragment(tag)
        if len(context) == 0 or len(pres) == 0:
            return np.empty(0, dtype=np.int64)
        sizes = subtree_sizes(self.doc, context)
        lo = np.searchsorted(pres, context + 1, side="left")
        hi = np.searchsorted(pres, context + sizes + 1, side="left")
        counts = hi - lo
        populated = counts > 0
        indices = concat_ranges(lo[populated], counts[populated])
        result = pres[indices]
        stats.partitions += int(len(context))
        stats.index_probes += int(len(context))
        stats.result_size += int(len(result))
        return result

    def ancestor_step_vectorized(
        self,
        context: np.ndarray,
        tag: str,
        stats: Optional[JoinStatistics] = None,
    ) -> np.ndarray:
        """Bulk ``context/ancestor::tag`` over the fragment.

        Climbs the whole pruned context level-synchronously (the batched
        parent hops of :func:`repro.core.vectorized.axis_step_vectorized`)
        and intersects the ancestor set with the fragment — both inputs
        are sorted, so the intersection is a merge.
        """
        stats = stats if stats is not None else JoinStatistics()
        context = prune_vectorized(
            self.doc,
            validate_context(self.doc, normalize_context(context)),
            "ancestor",
            stats,
        )
        pres, _ = self.fragment(tag)
        if len(context) == 0 or len(pres) == 0:
            return np.empty(0, dtype=np.int64)
        ancestors = staircase_join_vectorized(self.doc, context, "ancestor")
        result = np.intersect1d(ancestors, pres, assume_unique=True)
        stats.partitions += int(len(context))
        stats.index_probes += int(len(context))
        stats.result_size += int(len(result))
        return result

    def ancestor_step(
        self,
        context: np.ndarray,
        tag: str,
        stats: Optional[JoinStatistics] = None,
    ) -> np.ndarray:
        """``context/ancestor::tag`` reading only ``tag``'s fragment.

        Walks the fragment once, partition by partition, in the shape of
        ``staircasejoin_anc``; within the partition ending at context node
        ``c``, fragment entries with ``post > post(c)`` are ancestors of
        ``c``.  Entries that fail the test are skipped together with their
        fragment-resident subtree via binary search (the fragment analogue
        of the subtree hop).
        """
        stats = stats if stats is not None else JoinStatistics()
        context = prune(self.doc, normalize_context(context), "ancestor", stats)
        pres, posts = self.fragment(tag)
        result: List[int] = []
        emitted = -1  # largest fragment index appended (avoid re-adding)
        previous = -1
        for c in context:
            c = int(c)
            post_c = int(self.doc.post[c])
            stats.partitions += 1
            stats.index_probes += 1
            i = int(np.searchsorted(pres, previous + 1, side="left"))
            while i < len(pres) and pres[i] < c:
                stats.nodes_scanned += 1
                stats.post_comparisons += 1
                if posts[i] > post_c:
                    if i > emitted:
                        result.append(int(pres[i]))
                        stats.result_size += 1
                        emitted = i
                    i += 1
                else:
                    # Not an ancestor of c: hop over its subtree inside the
                    # fragment (entries with pre ≤ post[i] are descendants).
                    hop_to = int(np.searchsorted(pres, int(posts[i]) + 1, side="left"))
                    stats.nodes_skipped += max(0, hop_to - i - 1)
                    i = max(i + 1, hop_to)
            previous = c
        return np.asarray(result, dtype=np.int64)
