"""Instrumentation counters for join algorithms.

The paper's Figures 11(a) and 11(c) report *node-access counts*, not times:
how many nodes each algorithm scanned, copied, skipped, and how many
duplicates a tree-unaware evaluation would have produced.  Every join
implementation in :mod:`repro.core` and :mod:`repro.baselines` accepts an
optional :class:`JoinStatistics` object and increments it while running, so
the experiment harness can regenerate those figures exactly (counts are
deterministic, unlike wall-clock times).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["JoinStatistics"]


@dataclass
class JoinStatistics:
    """Mutable counter bundle threaded through join algorithms.

    Attributes
    ----------
    nodes_scanned:
        Document nodes whose postorder rank was inspected during a scan
        phase (the ``(?)`` comparison of Algorithm 3).
    nodes_copied:
        Document nodes copied to the result without a comparison
        (the copy phase of Algorithm 4, estimation-based skipping).
    nodes_skipped:
        Document nodes hopped over without being touched at all
        (the ``skip`` arrow of Figure 9 / the subtree hop of the
        ancestor-axis skip).
    result_size:
        Nodes appended to the result.
    duplicates_generated:
        Result tuples that duplicate an earlier tuple (only non-zero for
        tree-unaware algorithms; staircase join never generates any —
        property (3) in Section 3.2).
    context_pruned:
        Context nodes removed by pruning (Algorithm 1).
    post_comparisons:
        Total postorder-rank comparisons performed.  Estimation-based
        skipping bounds this by ``h × |context|`` (Section 4.2).
    index_probes:
        B+-tree descents performed (tree-unaware baseline only).
    partitions:
        Partition scans started (one per surviving context node).
    """

    nodes_scanned: int = 0
    nodes_copied: int = 0
    nodes_skipped: int = 0
    result_size: int = 0
    duplicates_generated: int = 0
    context_pruned: int = 0
    post_comparisons: int = 0
    index_probes: int = 0
    partitions: int = 0

    @property
    def nodes_touched(self) -> int:
        """Nodes physically accessed: scanned plus copied.

        Skipped nodes are *not* touched — that is the whole point of
        Section 3.3 ("skipping makes the number of accessed nodes
        independent of the document size").
        """
        return self.nodes_scanned + self.nodes_copied

    def reset(self) -> None:
        """Zero every counter in place."""
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def merge(self, other: "JoinStatistics") -> "JoinStatistics":
        """Add ``other``'s counters into ``self`` and return ``self``.

        Used by the partition-parallel strategy to combine per-partition
        statistics into a single report.
        """
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def as_dict(self) -> Dict[str, int]:
        """Return a plain ``dict`` snapshot (for reporting/serialisation)."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={v}" for k, v in self.as_dict().items() if v)
        return f"JoinStatistics({parts})"


# A shared "do not count" sink.  Passing ``None`` everywhere would force
# ``if stats is not None`` checks in inner loops; handing out a throwaway
# JoinStatistics keeps the algorithms branch-free, matching the paper's
# emphasis on predictable control flow.
def null_statistics() -> JoinStatistics:
    """Return a fresh statistics sink callers may ignore."""
    return JoinStatistics()
