"""Instrumentation counters for join algorithms and the query server.

The paper's Figures 11(a) and 11(c) report *node-access counts*, not times:
how many nodes each algorithm scanned, copied, skipped, and how many
duplicates a tree-unaware evaluation would have produced.  Every join
implementation in :mod:`repro.core` and :mod:`repro.baselines` accepts an
optional :class:`JoinStatistics` object and increments it while running, so
the experiment harness can regenerate those figures exactly (counts are
deterministic, unlike wall-clock times).

:class:`LatencyHistogram` is the serving-side counterpart: a
thread-safe, geometrically bucketed latency recorder the
:mod:`repro.server` stats surface uses to report p50/p99 without
retaining per-request samples.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Dict, List

__all__ = ["JoinStatistics", "LatencyHistogram"]


@dataclass
class JoinStatistics:
    """Mutable counter bundle threaded through join algorithms.

    Attributes
    ----------
    nodes_scanned:
        Document nodes whose postorder rank was inspected during a scan
        phase (the ``(?)`` comparison of Algorithm 3).
    nodes_copied:
        Document nodes copied to the result without a comparison
        (the copy phase of Algorithm 4, estimation-based skipping).
    nodes_skipped:
        Document nodes hopped over without being touched at all
        (the ``skip`` arrow of Figure 9 / the subtree hop of the
        ancestor-axis skip).
    result_size:
        Nodes appended to the result.
    duplicates_generated:
        Result tuples that duplicate an earlier tuple (only non-zero for
        tree-unaware algorithms; staircase join never generates any —
        property (3) in Section 3.2).
    context_pruned:
        Context nodes removed by pruning (Algorithm 1).
    post_comparisons:
        Total postorder-rank comparisons performed.  Estimation-based
        skipping bounds this by ``h × |context|`` (Section 4.2).
    index_probes:
        B+-tree descents performed (tree-unaware baseline only).
    partitions:
        Partition scans started (one per surviving context node).
    """

    nodes_scanned: int = 0
    nodes_copied: int = 0
    nodes_skipped: int = 0
    result_size: int = 0
    duplicates_generated: int = 0
    context_pruned: int = 0
    post_comparisons: int = 0
    index_probes: int = 0
    partitions: int = 0

    @property
    def nodes_touched(self) -> int:
        """Nodes physically accessed: scanned plus copied.

        Skipped nodes are *not* touched — that is the whole point of
        Section 3.3 ("skipping makes the number of accessed nodes
        independent of the document size").
        """
        return self.nodes_scanned + self.nodes_copied

    def reset(self) -> None:
        """Zero every counter in place."""
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def merge(self, other: "JoinStatistics") -> "JoinStatistics":
        """Add ``other``'s counters into ``self`` and return ``self``.

        Used by the partition-parallel strategy to combine per-partition
        statistics into a single report.
        """
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def as_dict(self) -> Dict[str, int]:
        """Return a plain ``dict`` snapshot (for reporting/serialisation)."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={v}" for k, v in self.as_dict().items() if v)
        return f"JoinStatistics({parts})"


class LatencyHistogram:
    """A thread-safe latency histogram with bounded memory.

    Observations land in geometric buckets (each ×2 wider than the
    last, from 1 µs up to ~16 minutes), so the histogram answers
    quantile queries over millions of requests from a few dozen
    integers instead of a sample reservoir.  Quantiles are read off as
    a bucket's upper bound — a ≤ factor-of-2 overestimate, never an
    underestimate, which is the conservative direction for a p99 a
    load-shedding decision or a bench contract reads.

    ``observe``/``snapshot``/``merge`` are safe to call from any
    thread (the server records from the event loop while ``/stats``
    handlers and the bench read concurrently).
    """

    #: Bucket ``i`` covers latencies in ``[2**i, 2**(i+1))`` microseconds;
    #: 30 buckets reach ~17.9 minutes, far past any served request.
    BUCKETS = 30

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: List[int] = [0] * self.BUCKETS  # guarded-by: _lock
        self._count = 0  # guarded-by: _lock
        self._sum = 0.0  # guarded-by: _lock
        self._max = 0.0  # guarded-by: _lock

    @staticmethod
    def _bucket(seconds: float) -> int:
        micros = max(1, int(seconds * 1e6))
        return min(micros.bit_length() - 1, LatencyHistogram.BUCKETS - 1)

    def observe(self, seconds: float) -> None:
        """Record one latency (in seconds; negatives clamp to zero)."""
        seconds = max(0.0, float(seconds))
        with self._lock:
            self._counts[self._bucket(seconds)] += 1
            self._count += 1
            self._sum += seconds
            if seconds > self._max:
                self._max = seconds

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def _percentile_locked(self, p: float) -> float:
        if self._count == 0:
            return 0.0
        rank = math.ceil(self._count * p / 100.0) or 1
        seen = 0
        for i, n in enumerate(self._counts):
            seen += n
            if seen >= rank:
                if i == self.BUCKETS - 1:
                    # The overflow bucket has no finite upper bound —
                    # the tracked maximum is the only honest answer.
                    return self._max
                return min((2 ** (i + 1)) / 1e6, self._max)
        return self._max  # pragma: no cover - rank <= count always hits

    def percentile(self, p: float) -> float:
        """The upper bound (seconds) of the bucket holding the ``p``-th
        percentile observation; ``0.0`` while empty."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            return self._percentile_locked(p)

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Add ``other``'s buckets into ``self`` and return ``self``."""
        with other._lock:
            counts = list(other._counts)
            count, total, peak = other._count, other._sum, other._max
        with self._lock:
            for i, n in enumerate(counts):
                self._counts[i] += n
            self._count += count
            self._sum += total
            self._max = max(self._max, peak)
        return self

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * self.BUCKETS
            self._count = 0
            self._sum = 0.0
            self._max = 0.0

    def snapshot(self) -> Dict[str, float]:
        """One consistent ``{count, mean_ms, p50_ms, p99_ms, max_ms}``."""
        with self._lock:
            return {
                "count": self._count,
                "mean_ms": round(self._sum / self._count * 1e3, 3)
                if self._count
                else 0.0,
                "p50_ms": round(self._percentile_locked(50.0) * 1e3, 3),
                "p99_ms": round(self._percentile_locked(99.0) * 1e3, 3),
                "max_ms": round(self._max * 1e3, 3),
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.snapshot()
        return (
            f"LatencyHistogram(count={s['count']}, p50={s['p50_ms']}ms, "
            f"p99={s['p99_ms']}ms)"
        )


# A shared "do not count" sink.  Passing ``None`` everywhere would force
# ``if stats is not None`` checks in inner loops; handing out a throwaway
# JoinStatistics keeps the algorithms branch-free, matching the paper's
# emphasis on predictable control flow.
def null_statistics() -> JoinStatistics:
    """Return a fresh statistics sink callers may ignore."""
    return JoinStatistics()
