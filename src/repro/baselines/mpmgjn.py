"""Multi-Predicate Merge Join (MPMGJN) [Zhang et al., SIGMOD 2001].

The containment join the paper discusses in Section 5: a merge join over
two pre-sorted node lists with the join predicate generalised to interval
containment.  An ancestor-list entry ``a`` matches a descendant-list
entry ``d`` when ``pre(a) < pre(d)`` and ``post(d) < post(a)``.

What MPMGJN *has*: interval nesting means the descendants of ``a`` form a
contiguous run in pre-sorted order, so the inner scan for ``a`` may stop
once ``pre(d)`` passes the end of ``a``'s subtree — we bound the end with
Equation (1)'s upper diagonal, ``pre(d) ≤ post(a) + h``, exactly the
"line 7" predicate of Section 2.1 (tree-unaware systems know interval
arithmetic, not tree shape).

What MPMGJN *lacks* (Section 5): context pruning and staircase skipping.
Overlapping context subtrees are scanned once per covering context node —
"due to pruning and skipping, staircase join touches and tests less nodes
than MPMGJN" — and matched pairs repeat result nodes, so an explicit
sort/unique pass is still required.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.pruning import normalize_context
from repro.counters import JoinStatistics
from repro.encoding.doctable import DocTable
from repro.errors import XPathEvaluationError
from repro.xmltree.model import NodeKind

__all__ = ["mpmgjn_step", "mpmgjn_pairs"]

_ATTR = int(NodeKind.ATTRIBUTE)


def mpmgjn_pairs(
    doc: DocTable,
    ancestor_list: np.ndarray,
    descendant_list: np.ndarray,
    stats: Optional[JoinStatistics] = None,
) -> List[tuple]:
    """All ``(a, d)`` containment pairs between two pre-sorted lists.

    The faithful nested-merge shape of MPMGJN: the outer cursor walks the
    ancestor list; for each ``a`` the inner cursor starts at the first
    entry past ``pre(a)`` (remembered across outer iterations, as in the
    original's mark/restore) and scans while the Equation (1) upper bound
    admits further descendants.
    """
    stats = stats if stats is not None else JoinStatistics()
    post = doc.post
    h = doc.height
    pairs: List[tuple] = []
    j_start = 0
    n_desc = len(descendant_list)
    for a in ancestor_list:
        a = int(a)
        post_a = int(post[a])
        # Advance the shared start cursor past entries before a.
        while j_start < n_desc and descendant_list[j_start] <= a:
            j_start += 1
        j = j_start
        while j < n_desc:
            d = int(descendant_list[j])
            if d > post_a + h:  # beyond a's subtree: Eq. (1) upper bound
                break
            stats.nodes_scanned += 1
            stats.post_comparisons += 1
            if post[d] < post_a:
                pairs.append((a, d))
            j += 1
    return pairs


def mpmgjn_step(
    doc: DocTable,
    context: np.ndarray,
    axis: str,
    stats: Optional[JoinStatistics] = None,
    keep_attributes: bool = False,
) -> np.ndarray:
    """Evaluate a ``descendant`` or ``ancestor`` step with MPMGJN.

    For ``descendant`` the context plays the ancestor list and the whole
    document the descendant list (vice versa for ``ancestor``).  The pair
    output is projected to the step's result column, counted, and then
    de-duplicated — MPMGJN emits one tuple per matching *pair*.
    """
    stats = stats if stats is not None else JoinStatistics()
    context = normalize_context(context)
    everything = doc.pres()
    if axis == "descendant":
        pairs = mpmgjn_pairs(doc, context, everything, stats)
        produced = np.asarray([d for _, d in pairs], dtype=np.int64)
    elif axis == "ancestor":
        pairs = mpmgjn_pairs(doc, everything, context, stats)
        produced = np.asarray([a for a, _ in pairs], dtype=np.int64)
    else:
        raise XPathEvaluationError(
            f"MPMGJN evaluates descendant/ancestor steps, not {axis!r}"
        )
    if not keep_attributes and len(produced):
        produced = produced[doc.kind[produced] != _ATTR]
    stats.result_size += len(produced)
    unique = np.unique(produced)
    stats.duplicates_generated += len(produced) - len(unique)
    return unique
