"""Stack-based structural join (Stack-Tree style).

The related-work algorithms the paper positions against ([5, 9] build
indexes to add skipping to this family): a single merge pass over two
pre-sorted node lists with an in-flight stack holding the current chain
of nested ancestor-list entries.  Every list element is visited exactly
once, but — unlike the staircase join — the context is not pruned and the
output is per *pair*, so duplicate result nodes appear whenever a node
has several matching partners and a final sort/unique pass is needed.

The stack discipline relies only on interval nesting: when the merge
reaches node ``x``, every stack entry ``s`` with ``post(s) < post(x)``
has ended (its subtree cannot contain ``x``) and is popped; the survivors
all contain ``x``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.pruning import normalize_context
from repro.counters import JoinStatistics
from repro.encoding.doctable import DocTable
from repro.errors import XPathEvaluationError
from repro.xmltree.model import NodeKind

__all__ = ["stack_tree_step", "stack_tree_pairs"]

_ATTR = int(NodeKind.ATTRIBUTE)


def stack_tree_pairs(
    doc: DocTable,
    ancestor_list: np.ndarray,
    descendant_list: np.ndarray,
    stats: Optional[JoinStatistics] = None,
) -> List[Tuple[int, int]]:
    """All ``(a, d)`` containment pairs via one stack-merge pass."""
    stats = stats if stats is not None else JoinStatistics()
    post = doc.post
    stack: List[int] = []
    pairs: List[Tuple[int, int]] = []
    i = 0  # ancestor cursor
    j = 0  # descendant cursor
    n_a, n_d = len(ancestor_list), len(descendant_list)
    while j < n_d:
        d = int(descendant_list[j])
        if i < n_a and int(ancestor_list[i]) < d:
            a = int(ancestor_list[i])
            stats.nodes_scanned += 1
            while stack and post[stack[-1]] < post[a]:
                stack.pop()  # ended before a begins
            stack.append(a)
            i += 1
            continue
        stats.nodes_scanned += 1
        while stack and post[stack[-1]] < post[d]:
            stack.pop()  # ended before d begins
        for s in stack:  # every survivor contains d
            pairs.append((s, d))
        j += 1
    return pairs


def stack_tree_step(
    doc: DocTable,
    context: np.ndarray,
    axis: str,
    stats: Optional[JoinStatistics] = None,
    keep_attributes: bool = False,
) -> np.ndarray:
    """Evaluate a ``descendant`` or ``ancestor`` step with the stack join.

    ``descendant``: context = ancestor list, document = descendant list.
    ``ancestor``: document = ancestor list, context = descendant list.
    The pair output is projected, counted (``result_size`` includes the
    duplicates) and de-duplicated.
    """
    stats = stats if stats is not None else JoinStatistics()
    context = normalize_context(context)
    everything = doc.pres()
    if axis == "descendant":
        pairs = stack_tree_pairs(doc, context, everything, stats)
        produced = np.asarray([d for _, d in pairs], dtype=np.int64)
    elif axis == "ancestor":
        pairs = stack_tree_pairs(doc, everything, context, stats)
        produced = np.asarray([a for a, _ in pairs], dtype=np.int64)
    else:
        raise XPathEvaluationError(
            f"stack-tree join evaluates descendant/ancestor steps, not {axis!r}"
        )
    if not keep_attributes and len(produced):
        produced = produced[doc.kind[produced] != _ATTR]
    stats.result_size += len(produced)
    unique = np.unique(produced)
    stats.duplicates_generated += len(produced) - len(unique)
    return unique
