"""The naive per-context-node axis step (Experiment 1's strawman).

"The naive way of evaluating an axis step for a context node sequence
would be to evaluate the step for each context node independently and
construct the end result from these intermediary results."  Every region
query is answered exactly (we use the encoding's subtree/ancestor
structure, not a full table scan, so the *time* stays tolerable in
Python), but — crucially — overlapping regions produce their nodes once
per covering context node.  The duplicates, and the sort/unique pass that
removes them, are what the staircase join eliminates by construction.

``stats.duplicates_generated`` counts surplus tuples;
``stats.result_size`` counts the tuples *produced* (duplicates included),
which is the "naive" series of Figure 11 (a).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.pruning import normalize_context
from repro.counters import JoinStatistics
from repro.encoding.doctable import DocTable
from repro.errors import XPathEvaluationError
from repro.xmltree.model import NodeKind

__all__ = ["naive_step", "naive_step_with_duplicates"]

_ATTR = int(NodeKind.ATTRIBUTE)


def _region_for(doc: DocTable, c: int, axis: str) -> np.ndarray:
    """Exact region query for a single context node."""
    post_c = int(doc.post[c])
    if axis == "descendant":
        end = c + int(doc.post[c]) - c + int(doc.level[c])  # Equation (1)
        return np.arange(c + 1, end + 1, dtype=np.int64)
    if axis == "ancestor":
        return np.asarray(sorted(doc.ancestors_of(c)), dtype=np.int64)
    if axis == "following":
        end = c + int(doc.post[c]) - c + int(doc.level[c])
        return np.arange(end + 1, len(doc), dtype=np.int64)
    if axis == "preceding":
        before = np.arange(0, c, dtype=np.int64)
        return before[doc.post[before] < post_c]
    raise XPathEvaluationError(f"naive step handles partitioning axes, not {axis!r}")


def naive_step_with_duplicates(
    doc: DocTable,
    context: np.ndarray,
    axis: str,
    stats: Optional[JoinStatistics] = None,
    keep_attributes: bool = False,
) -> np.ndarray:
    """All per-context region results concatenated — duplicates included.

    This is the raw join output before the ``unique`` operator of the
    Figure 3 plan; callers measuring duplicate ratios use it directly.
    """
    stats = stats if stats is not None else JoinStatistics()
    context = normalize_context(context)
    pieces: List[np.ndarray] = []
    for c in context:
        region = _region_for(doc, int(c), axis)
        if not keep_attributes and len(region):
            region = region[doc.kind[region] != _ATTR]
        pieces.append(region)
        stats.partitions += 1
        stats.nodes_scanned += len(region)
    produced = (
        np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)
    )
    stats.result_size += len(produced)
    return produced


def naive_step(
    doc: DocTable,
    context: np.ndarray,
    axis: str,
    stats: Optional[JoinStatistics] = None,
    keep_attributes: bool = False,
) -> np.ndarray:
    """Naive step with the mandatory sort + duplicate elimination.

    Returns the same node set as the staircase join;
    ``stats.duplicates_generated`` records how many surplus tuples the
    ``unique`` pass had to discard.
    """
    stats = stats if stats is not None else JoinStatistics()
    produced = naive_step_with_duplicates(
        doc, context, axis, stats, keep_attributes=keep_attributes
    )
    unique = np.unique(produced)
    stats.duplicates_generated += len(produced) - len(unique)
    return unique
