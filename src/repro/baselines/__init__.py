"""Baseline join algorithms the paper compares against (or cites).

* :mod:`repro.baselines.naive` — the "naive approach" of Experiment 1:
  evaluate the region query independently per context node and merge,
  generating (and then having to remove) duplicate result nodes.
* :mod:`repro.baselines.mpmgjn` — the multi-predicate merge join of
  Zhang et al. [SIGMOD 2001], designed for interval containment; it
  exploits interval nesting but lacks pruning and staircase skipping
  (Section 5).
* :mod:`repro.baselines.stacktree` — the stack-based structural join in
  the style the paper's related work ([5, 9]) builds on: a single merge
  pass with an ancestor stack.

All baselines return the same duplicate-free, document-ordered node sets
as the staircase join (asserted property-based in the tests); what differs
is how many nodes they touch and how many duplicates they generate on the
way — the quantities Figures 11(a) and (c) report.
"""

from repro.baselines.mpmgjn import mpmgjn_step
from repro.baselines.naive import naive_step
from repro.baselines.stacktree import stack_tree_step

__all__ = ["naive_step", "mpmgjn_step", "stack_tree_step"]
