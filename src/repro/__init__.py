"""Staircase join — a reproduction of Grust, van Keulen & Teubner (VLDB 2003).

``repro`` packages a tree-aware XPath execution stack on top of a small
main-memory column store:

* :mod:`repro.xmltree` — XML model, parser, serializer (from scratch);
* :mod:`repro.storage` — Monet-style BATs, void columns, a B+-tree;
* :mod:`repro.encoding` — the XPath accelerator pre/post encoding;
* :mod:`repro.core` — **the staircase join**: pruning, skipping,
  estimation-based skipping, partitioning, tag fragmentation;
* :mod:`repro.baselines` — naive region joins, MPMGJN, Stack-Tree;
* :mod:`repro.engine` — a tree-unaware SQL-plan emulation (the "DB2"
  comparison point);
* :mod:`repro.xpath` — XPath parsing + evaluation over the accelerator;
* :mod:`repro.xmark` — deterministic XMark-style documents;
* :mod:`repro.simulator` — the paper's cache/CPU cost arithmetic;
* :mod:`repro.harness` — experiment runners for every table and figure.

Quickstart
----------
>>> from repro import xmark, xpath
>>> doc = xmark.generate_table(0.5)           # ~25k-node auction document
>>> hits = xpath.evaluate(doc, "/descendant::increase/ancestor::bidder")
>>> [doc.tag_of(int(p)) for p in hits[:1]]
['bidder']
"""

from repro.core import (
    FragmentedDocument,
    SkipMode,
    prune,
    staircase_join,
    staircase_join_vectorized,
)
from repro.counters import JoinStatistics
from repro.encoding import DocTable, encode
from repro.xmltree import parse, serialize
from repro.xpath import Evaluator, evaluate, parse_xpath

__version__ = "1.0.0"

__all__ = [
    "JoinStatistics",
    "DocTable",
    "encode",
    "SkipMode",
    "staircase_join",
    "staircase_join_vectorized",
    "prune",
    "FragmentedDocument",
    "parse",
    "serialize",
    "Evaluator",
    "evaluate",
    "parse_xpath",
    "__version__",
]
