"""Mini main-memory column store in the spirit of Monet.

The paper implements staircase join inside the Monet kernel (Section 4).
Monet's bulk type is the *binary association table* (BAT): a two-column
table of (head, tail) pairs.  Two of its features matter for the paper:

* the ``void`` column type ("virtual oid"): a contiguous integer sequence
  ``o, o+1, o+2, ...`` stored as just the offset ``o`` — the preorder ranks
  of the ``doc`` table are exactly such a sequence, so positional lookup
  ``doc[i]`` is O(1) and storage is a single dense array of postorder ranks;
* strictly sequential, positionally addressable scans — the access pattern
  every staircase join loop relies on.

This package reproduces that substrate: typed columns
(:class:`~repro.storage.column.VoidColumn`,
:class:`~repro.storage.column.IntColumn`,
:class:`~repro.storage.column.StringColumn` with dictionary encoding),
the :class:`~repro.storage.bat.BAT` itself, and a from-scratch B+-tree
(:mod:`repro.storage.btree`) used by the tree-unaware "DB2-style" baseline
to index concatenated ``(pre, post, tag)`` keys.
"""

from repro.storage.bat import BAT
from repro.storage.btree import BPlusTree
from repro.storage.column import Column, IntColumn, StringColumn, VoidColumn

__all__ = [
    "Column",
    "VoidColumn",
    "IntColumn",
    "StringColumn",
    "BAT",
    "BPlusTree",
]
