"""A from-scratch B+-tree.

The tree-unaware baseline of Section 2.1 evaluates region queries through a
B-tree over concatenated ``(pre, post, tag)`` keys: the outer input is
scanned in pre-sorted order and the region predicates act as index range
delimiters.  This module provides that index.

Design
------
* Keys are tuples of integers (lexicographic comparison models concatenated
  keys); values are arbitrary (the baseline stores preorder ranks).
* Leaves are chained left-to-right, so a range scan is one descent plus a
  linked-leaf walk — the classic B+-tree access pattern whose cost the
  experiment counters report (``index_probes`` counts descents,
  ``nodes_scanned`` counts leaf entries visited).
* Both one-by-one :meth:`BPlusTree.insert` and :meth:`BPlusTree.bulk_load`
  from sorted input are supported; document loading uses bulk load (the
  paper builds the index "at document loading time", Section 5).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.errors import BTreeError

__all__ = ["BPlusTree"]

Key = Tuple[int, ...]


class _Node:
    """Internal or leaf node.

    For leaves, ``children`` holds the values parallel to ``keys`` and
    ``next_leaf`` links to the right sibling.  For internal nodes,
    ``children[i]`` is the subtree for keys < ``keys[i]`` and
    ``children[-1]`` the subtree for keys >= ``keys[-1]``.
    """

    __slots__ = ("leaf", "keys", "children", "next_leaf")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        self.keys: List[Key] = []
        self.children: List[Any] = []
        self.next_leaf: Optional["_Node"] = None


class BPlusTree:
    """B+-tree mapping integer-tuple keys to values.

    Parameters
    ----------
    order:
        Maximum number of keys per node (fan-out − 1).  The default of 64
    keeps trees shallow for the document sizes the benchmarks use.
    key_width:
        When given, every key must be a tuple of exactly this many
        integers; mismatches raise :class:`~repro.errors.BTreeError`.
        Catches accidental mixing of ``(pre,)`` and ``(pre, post, tag)``
        keys in one index.
    """

    def __init__(self, order: int = 64, key_width: Optional[int] = None):
        if order < 3:
            raise BTreeError("B+-tree order must be at least 3")
        self.order = order
        self.key_width = key_width
        self._root = _Node(leaf=True)
        self._size = 0
        self.probe_count = 0  # descents performed (reset by callers at will)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check_key(self, key: Key) -> Key:
        if not isinstance(key, tuple):
            raise BTreeError(f"keys must be tuples, got {type(key).__name__}")
        if self.key_width is not None and len(key) != self.key_width:
            raise BTreeError(
                f"key width {len(key)} != declared width {self.key_width}"
            )
        return key

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (a lone leaf has height 1)."""
        node, levels = self._root, 1
        while not node.leaf:
            node = node.children[0]
            levels += 1
        return levels

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _descend(self, key: Key) -> _Node:
        """Walk to the leaf that would contain ``key``."""
        self.probe_count += 1
        node = self._root
        while not node.leaf:
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        return node

    def search(self, key: Key) -> Optional[Any]:
        """Return the value stored under ``key`` or ``None``."""
        key = self._check_key(key)
        leaf = self._descend(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.children[index]
        return None

    def __contains__(self, key: Key) -> bool:
        return self.search(self._check_key(key)) is not None

    def range_scan(
        self,
        low: Optional[Key] = None,
        high: Optional[Key] = None,
        include_high: bool = True,
    ) -> Iterator[Tuple[Key, Any]]:
        """Yield ``(key, value)`` pairs with ``low <= key (<|<=) high``.

        ``None`` bounds are open.  This is the index range scan of the
        Figure 3 plan: one descent to the ``low`` position, then a linked
        walk across leaves until ``high`` is passed.
        """
        if low is not None:
            low = self._check_key(low)
            leaf = self._descend(low)
            index = bisect.bisect_left(leaf.keys, low)
        else:
            self.probe_count += 1
            leaf = self._root
            while not leaf.leaf:
                leaf = leaf.children[0]
            index = 0
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if high is not None:
                    if include_high:
                        if key > high:
                            return
                    elif key >= high:
                        return
                yield key, leaf.children[index]
                index += 1
            leaf = leaf.next_leaf
            index = 0

    def iter_items(self) -> Iterator[Tuple[Key, Any]]:
        """All items in key order."""
        return self.range_scan()

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, key: Key, value: Any) -> None:
        """Insert ``key`` → ``value``; duplicate keys are rejected."""
        key = self._check_key(key)
        split = self._insert_into(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _Node(leaf=False)
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1

    def _insert_into(
        self, node: _Node, key: Key, value: Any
    ) -> Optional[Tuple[Key, _Node]]:
        """Recursive insert; returns a (separator, new right node) split."""
        if node.leaf:
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                raise BTreeError(f"duplicate key {key!r}")
            node.keys.insert(index, key)
            node.children.insert(index, value)
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        index = bisect.bisect_right(node.keys, key)
        split = self._insert_into(node.children[index], key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right)
        if len(node.keys) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node) -> Tuple[Key, _Node]:
        mid = len(node.keys) // 2
        right = _Node(leaf=True)
        right.keys = node.keys[mid:]
        right.children = node.children[mid:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Node) -> Tuple[Key, _Node]:
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        right = _Node(leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return separator, right

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        items: Sequence[Tuple[Key, Any]],
        order: int = 64,
        key_width: Optional[int] = None,
    ) -> "BPlusTree":
        """Build a tree from *sorted, duplicate-free* ``(key, value)`` pairs.

        Packs leaves to ~full and builds internal levels bottom-up; loading
        a document index this way is O(n) and yields better-packed leaves
        than repeated inserts.
        """
        tree = cls(order=order, key_width=key_width)
        if not items:
            return tree
        previous: Optional[Key] = None
        for key, _ in items:
            tree._check_key(key)
            if previous is not None and key <= previous:
                raise BTreeError("bulk_load requires strictly sorted unique keys")
            previous = key

        # Build the leaf level.
        per_leaf = max(2, order)  # full leaves
        leaves: List[_Node] = []
        for start in range(0, len(items), per_leaf):
            chunk = items[start : start + per_leaf]
            leaf = _Node(leaf=True)
            leaf.keys = [k for k, _ in chunk]
            leaf.children = [v for _, v in chunk]
            if leaves:
                leaves[-1].next_leaf = leaf
            leaves.append(leaf)

        # Build internal levels until a single root remains.
        level: List[_Node] = leaves
        while len(level) > 1:
            parents: List[_Node] = []
            fanout = max(2, order)  # children per internal node
            for start in range(0, len(level), fanout):
                group = level[start : start + fanout]
                parent = _Node(leaf=False)
                parent.children = list(group)
                parent.keys = [_leftmost_key(child) for child in group[1:]]
                parents.append(parent)
            level = parents
        tree._root = level[0]
        tree._size = len(items)
        return tree

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BPlusTree(size={self._size}, order={self.order}, height={self.height})"


def _leftmost_key(node: _Node) -> Key:
    while not node.leaf:
        node = node.children[0]
    return node.keys[0]
