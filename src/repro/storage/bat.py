"""Binary association tables (BATs).

A BAT is Monet's two-column table of (head, tail) pairs.  The ``doc`` table
of the XPath accelerator is stored as a small family of BATs all sharing the
same void head (the preorder rank): ``pre|post``, ``pre|level``,
``pre|parent``, ``pre|kind``, ``pre|tag``.  This module provides the generic
container plus the handful of relational operations the evaluation layer
uses — positional slicing, theta-selects on the tail, reverse/mirror, and
semijoin-style filtering by head values.

The operations return new BATs; columns are immutable, so slices share the
underlying numpy buffers (zero copy) exactly like Monet's views.
"""

from __future__ import annotations

from typing import Callable, Iterator, Tuple, Union

import numpy as np

from repro.errors import StorageError
from repro.storage.column import Column, IntColumn, VoidColumn

__all__ = ["BAT"]

_THETA_OPS = {
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "==": np.equal,
    "!=": np.not_equal,
}


class BAT:
    """A binary (head, tail) table.

    Parameters
    ----------
    head, tail:
        Two equal-length :class:`~repro.storage.column.Column` objects.
    name:
        Optional label used in ``repr`` and error messages.
    """

    __slots__ = ("head", "tail", "name")

    def __init__(self, head: Column, tail: Column, name: str = ""):
        if len(head) != len(tail):
            raise StorageError(
                f"BAT {name or '<anon>'}: head length {len(head)} != "
                f"tail length {len(tail)}"
            )
        self.head = head
        self.tail = tail
        self.name = name

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def dense(cls, tail: Union[Column, np.ndarray], name: str = "") -> "BAT":
        """A BAT with a void head starting at 0 (the common ``doc`` shape)."""
        if isinstance(tail, np.ndarray):
            tail = IntColumn(tail)
        return cls(VoidColumn(len(tail)), tail, name=name)

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.head)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        for i in range(len(self)):
            yield (self.head[i], self.tail[i])

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return BAT(self.head[index], self.tail[index], name=self.name)
        return (self.head[index], self.tail[index])

    @property
    def is_dense_head(self) -> bool:
        """True when the head is a void column (positional addressing OK)."""
        return isinstance(self.head, VoidColumn)

    # ------------------------------------------------------------------
    # Relational operations
    # ------------------------------------------------------------------
    def reverse(self) -> "BAT":
        """Swap head and tail (Monet's ``reverse``); O(1)."""
        return BAT(self.tail, self.head, name=self.name)

    def mirror(self) -> "BAT":
        """A BAT pairing the head with itself (Monet's ``mirror``)."""
        return BAT(self.head, self.head, name=self.name)

    def select(self, theta: str, value: int) -> "BAT":
        """Select pairs whose *tail* satisfies ``tail θ value``.

        Returns a BAT with materialised (non-void) head holding the
        qualifying head values and their tails.
        """
        op = _THETA_OPS.get(theta)
        if op is None:
            raise StorageError(f"unknown theta operator {theta!r}")
        tails = self.tail.to_numpy()
        mask = op(tails, value)
        heads = self.head.to_numpy()[mask]
        return BAT(IntColumn(heads), IntColumn(tails[mask]), name=self.name)

    def range_select(self, low: int, high: int) -> "BAT":
        """Select pairs with ``low <= tail <= high`` (inclusive range)."""
        tails = self.tail.to_numpy()
        mask = (tails >= low) & (tails <= high)
        heads = self.head.to_numpy()[mask]
        return BAT(IntColumn(heads), IntColumn(tails[mask]), name=self.name)

    def positional_slice(self, start: int, stop: int) -> "BAT":
        """Rows at positions ``[start, stop)`` — Monet's void-head virtue.

        Requires a dense head; raises :class:`StorageError` otherwise to
        catch accidental positional access on materialised BATs.
        """
        if not self.is_dense_head:
            raise StorageError("positional_slice requires a dense (void) head")
        start = max(0, start)
        stop = min(len(self), stop)
        if stop < start:
            stop = start
        return self[start:stop]

    def filter_head(self, predicate: Callable[[int], bool]) -> "BAT":
        """Keep pairs whose head satisfies ``predicate`` (Python-level)."""
        heads = self.head.to_numpy()
        tails = self.tail.to_numpy()
        keep = np.fromiter(
            (predicate(int(h)) for h in heads), dtype=bool, count=len(heads)
        )
        return BAT(IntColumn(heads[keep]), IntColumn(tails[keep]), name=self.name)

    def semijoin_head(self, heads: np.ndarray) -> "BAT":
        """Keep pairs whose head value appears in ``heads`` (a sorted array)."""
        mine = self.head.to_numpy()
        mask = np.isin(mine, heads)
        return BAT(
            IntColumn(mine[mask]),
            IntColumn(self.tail.to_numpy()[mask]),
            name=self.name,
        )

    def tails_for_heads(self, heads: np.ndarray) -> np.ndarray:
        """Positional fetch of tails for the given head values.

        Only valid for dense heads where head value == position - offset.
        This is the ``doc[i]`` lookup of Algorithm 2 in vector form.
        """
        if not self.is_dense_head:
            raise StorageError("tails_for_heads requires a dense (void) head")
        offset = self.head.offset  # type: ignore[union-attr]
        return self.tail.to_numpy()[np.asarray(heads, dtype=np.int64) - offset]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def memory_footprint(self) -> int:
        """Approximate bytes used, counting void columns as free.

        Supports the paper's storage claim ("a document occupies only about
        1.5× its size in Monet", Section 4.1): void heads cost nothing,
        dense tails cost 8 bytes/row here (4 in Monet), dictionaries are
        shared.
        """
        total = 0
        for col in (self.head, self.tail):
            if isinstance(col, VoidColumn):
                continue
            total += col.to_numpy().nbytes
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "<anon>"
        return f"BAT({label}, rows={len(self)}, dense_head={self.is_dense_head})"
