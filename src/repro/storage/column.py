"""Typed storage columns.

Three column types cover everything the document encoding needs:

* :class:`VoidColumn` — Monet's ``void`` (virtual oid) type: the contiguous
  sequence ``offset, offset+1, ...`` materialising nothing.  The ``pre``
  column of the ``doc`` table is void, which is what makes ``doc[i]`` a
  positional lookup rather than a search (Section 4.1).
* :class:`IntColumn` — a dense numpy ``int64`` vector (``post``, ``level``,
  ``parent``, ``kind``).
* :class:`StringColumn` — dictionary-encoded strings: a dense ``int32`` code
  vector plus a shared code↔string dictionary (``tag`` names; XMark uses a
  few dozen distinct tags over millions of nodes, so this is the natural
  representation and makes name tests integer comparisons).

Columns are immutable after construction; builders collect Python values and
freeze them into columns.  That split keeps the hot query path allocation
free and lets hypothesis tests treat columns as values.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Union

import numpy as np

from repro.errors import StorageError

__all__ = ["Column", "VoidColumn", "IntColumn", "StringColumn"]


class Column:
    """Abstract base: a fixed-length, positionally indexed vector."""

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def __getitem__(self, index):  # pragma: no cover - abstract
        raise NotImplementedError

    def __iter__(self) -> Iterator:
        for i in range(len(self)):
            yield self[i]

    def to_numpy(self) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError


class VoidColumn(Column):
    """The contiguous sequence ``offset, offset+1, ..., offset+length-1``.

    Only the offset and length are stored.  ``to_numpy`` materialises the
    sequence on demand (used by vectorised kernels); positional access is
    pure arithmetic.
    """

    __slots__ = ("offset", "length")

    def __init__(self, length: int, offset: int = 0):
        if length < 0:
            raise StorageError("VoidColumn length must be non-negative")
        self.offset = offset
        self.length = length

    def __len__(self) -> int:
        return self.length

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            start, stop, step = index.indices(self.length)
            if step != 1:
                raise StorageError("VoidColumn slices must be contiguous")
            return VoidColumn(max(0, stop - start), offset=self.offset + start)
        if index < 0:
            index += self.length
        if not 0 <= index < self.length:
            raise IndexError(f"void index {index} out of range [0, {self.length})")
        return self.offset + index

    def to_numpy(self) -> np.ndarray:
        return np.arange(self.offset, self.offset + self.length, dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VoidColumn(offset={self.offset}, length={self.length})"


class IntColumn(Column):
    """A dense vector of 64-bit integers backed by numpy."""

    __slots__ = ("values",)

    def __init__(self, values: Union[Sequence[int], np.ndarray]):
        array = np.asarray(values, dtype=np.int64)
        if array.ndim != 1:
            raise StorageError("IntColumn requires a one-dimensional sequence")
        self.values = array

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def __getitem__(self, index):
        if isinstance(index, slice):
            return IntColumn(self.values[index])
        return int(self.values[index])

    def to_numpy(self) -> np.ndarray:
        return self.values

    def max(self) -> int:
        if len(self) == 0:
            raise StorageError("max() of an empty IntColumn")
        return int(self.values.max())

    def min(self) -> int:
        if len(self) == 0:
            raise StorageError("min() of an empty IntColumn")
        return int(self.values.min())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IntColumn(len={len(self)})"


class StringColumn(Column):
    """Dictionary-encoded string vector.

    ``codes`` is a dense ``int32`` vector; ``dictionary`` maps code → string.
    Lookups by string go through ``code_of``; a name test then becomes a
    single integer comparison per node, exactly as in Monet where the tag
    BAT holds integer object identifiers.
    """

    __slots__ = ("codes", "dictionary", "_index")

    def __init__(
        self,
        codes: Union[Sequence[int], np.ndarray],
        dictionary: List[str],
        validate: bool = True,
    ):
        if getattr(codes, "packed_bytes", None) is not None:
            # A paged (compressed) code vector: keep it as-is — coercing
            # through np.asarray would decode every page eagerly.
            self.codes = codes  # type: ignore[assignment]
        else:
            self.codes = np.asarray(codes, dtype=np.int32)
        if self.codes.ndim != 1:
            raise StorageError("StringColumn requires a one-dimensional code vector")
        self.dictionary = list(dictionary)
        if validate and len(self.codes) and (
            self.codes.min() < 0 or self.codes.max() >= len(self.dictionary)
        ):
            raise StorageError("StringColumn code out of dictionary range")
        self._index: Dict[str, int] = {s: i for i, s in enumerate(self.dictionary)}
        if len(self._index) != len(self.dictionary):
            raise StorageError("StringColumn dictionary contains duplicates")

    @classmethod
    def from_strings(cls, strings: Iterable[str]) -> "StringColumn":
        """Build a column (and its dictionary) from raw strings."""
        index: Dict[str, int] = {}
        codes: List[int] = []
        for s in strings:
            code = index.get(s)
            if code is None:
                code = len(index)
                index[s] = code
            codes.append(code)
        dictionary = [""] * len(index)
        for s, code in index.items():
            dictionary[code] = s
        return cls(np.asarray(codes, dtype=np.int32), dictionary)

    def __len__(self) -> int:
        return int(self.codes.shape[0])

    def __getitem__(self, index):
        if isinstance(index, slice):
            return StringColumn(self.codes[index], self.dictionary)
        return self.dictionary[int(self.codes[index])]

    def to_numpy(self) -> np.ndarray:
        """The raw code vector (not the strings)."""
        return self.codes

    def code_of(self, value: str) -> int:
        """Return the dictionary code for ``value``, or ``-1`` if absent.

        A ``-1`` sentinel (never a valid code) lets name tests on tags that
        do not occur in the document short-circuit to an empty result.
        """
        return self._index.get(value, -1)

    def code_at(self, index: int) -> int:
        """The integer code at ``index`` (no string materialisation)."""
        return int(self.codes[index])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StringColumn(len={len(self)}, dict={len(self.dictionary)})"
