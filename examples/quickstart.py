#!/usr/bin/env python
"""Quickstart: from XML text to staircase-join-powered XPath.

Walks the paper's own running example (Figures 1 and 2): parse a small
document, pre/post encode it, look at the plane, and evaluate axis steps
with the staircase join — watching the counters that make the paper's
claims measurable.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import JoinStatistics, SkipMode, encode, evaluate, parse, staircase_join
from repro.core.pruning import prune

XML = """
<a>
  <b><c/></b>
  <d/>
  <e>
    <f><g/><h/></f>
    <i><j/></i>
  </e>
</a>
"""


def main():
    # 1. Parse and encode -------------------------------------------------
    tree = parse(XML)
    doc = encode(tree)
    print("The doc table of Figure 2 (pre | post | level | tag):")
    for pre in range(len(doc)):
        print(
            f"  {pre:3d} | {doc.post_of(pre):4d} | {doc.level_of(pre):5d} "
            f"| {doc.tag_of(pre)}"
        )
    print(f"document height h = {doc.height}\n")

    # 2. Axis steps are region queries ------------------------------------
    f = int(doc.pres_with_tag("f")[0])
    for axis in ("preceding", "descendant", "ancestor", "following"):
        result = staircase_join(doc, np.array([f]), axis)
        tags = ", ".join(doc.tag_of(int(p)) for p in result)
        print(f"f/{axis:11s} -> ({tags})")
    print()

    # 3. XPath, evaluated through the staircase join ----------------------
    result = evaluate(doc, "following::node()/descendant::node()", context=2)
    print(
        "(c)/following::node()/descendant::node() =",
        "(" + ", ".join(doc.tag_of(int(p)) for p in result) + ")",
        "   # the paper's Section 2.1 example",
    )
    print()

    # 4. Pruning and skipping in action -----------------------------------
    context = doc.pres_with_tag("g")  # deep node: long ancestor path
    context = np.union1d(context, doc.pres_with_tag("f"))
    pruned = prune(doc, context, "ancestor")
    print(
        f"ancestor context {[doc.tag_of(int(p)) for p in context]} "
        f"prunes to {[doc.tag_of(int(p)) for p in pruned]}"
    )

    stats = JoinStatistics()
    result = staircase_join(doc, context, "ancestor", SkipMode.ESTIMATE, stats)
    print(
        f"ancestor step: result={[doc.tag_of(int(p)) for p in result]}, "
        f"touched {stats.nodes_touched} nodes, skipped {stats.nodes_skipped}, "
        f"duplicates {stats.duplicates_generated} (always 0 — Section 3.2)"
    )


if __name__ == "__main__":
    main()
