#!/usr/bin/env python
"""Document lifecycle: persist, update, federate, and script plans.

The capabilities a downstream adopter needs around the staircase join
core: saving encoded documents (skip re-parsing), in-place-style updates
(rank splicing on the pre/post encoding), multi-document databases (the
paper's footnote 1), and hand-written physical plans in the MIL-style
notation of Section 4.4.

Run:  python examples/document_lifecycle.py
"""

import os
import tempfile
import time

from repro.encoding.collection import DocumentCollection
from repro.encoding.persist import load, save
from repro.encoding.prepost import encode
from repro.encoding.updates import delete_subtree, insert_subtree
from repro.engine.mil import run_mil
from repro.xmark.generator import XMarkConfig, generate
from repro.xmltree.model import element, text
from repro.xmltree.parser import parse
from repro.xmltree.serializer import serialize
from repro.xpath.evaluator import evaluate


def main():
    # 1. Persist: parse once, load columns forever -------------------------
    tree = generate(0.2)
    xml_text = serialize(tree)
    started = time.perf_counter()
    doc = encode(parse(xml_text))
    cold = time.perf_counter() - started

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "auction.npz")
        save(doc, path)
        started = time.perf_counter()
        doc = load(path)
        warm = time.perf_counter() - started
        size = os.path.getsize(path)
    print(
        f"load: parse+encode {cold * 1000:.1f} ms vs npz load {warm * 1000:.1f} ms "
        f"({cold / warm:.0f}x); archive {size / 1024:.0f} KiB for {len(doc):,} nodes"
    )

    # 2. Update: rank splicing on the pre/post encoding ---------------------
    people = int(doc.pres_with_tag("people")[0])
    newcomer = element(
        "person",
        element("name", text("Edgar Codd")),
        element("emailaddress", text("mailto:codd@example.org")),
        id="person-new",
    )
    before = len(evaluate(doc, "//person"))
    doc = insert_subtree(doc, people, newcomer)
    print(f"insert: {before} -> {len(evaluate(doc, '//person'))} persons")

    victim = int(evaluate(doc, '//person[name = "Edgar Codd"]')[0])
    doc = delete_subtree(doc, victim)
    print(f"delete: back to {len(evaluate(doc, '//person'))} persons "
          "(splice equals re-encode — see tests/test_encoding_updates.py)")

    # 3. Federate: several documents, one pre/post plane --------------------
    collection = DocumentCollection(
        [(f"site{i}", generate(0.05, XMarkConfig(seed=i))) for i in range(3)]
    )
    bidders = collection.evaluate("//increase/ancestor::bidder")
    per_member = {
        name: len(pres)
        for name, pres in collection.partition_by_document(bidders).items()
    }
    print(f"collection: {len(collection.doc):,} nodes across {len(collection)} "
          f"documents; bidders per member: {per_member}")
    print(f"  scoped query (site1 only): "
          f"{len(collection.evaluate('/descendant::bidder', document='site1'))} bidders")

    # 4. Script a physical plan (the Section 4.4 notation) -----------------
    script = """
    # Q2, written as the paper executes it inside Monet:
    r  := root(doc)
    s1 := nametest(staircasejoin_desc(doc, r), "increase")
    s2 := nametest(staircasejoin_anc(doc, s1), "bidder")
    return count(s2)
    """
    print(f"MIL plan result: count = {run_mil(doc, script)} "
          f"(XPath agrees: {len(evaluate(doc, '/descendant::increase/ancestor::bidder'))})")


if __name__ == "__main__":
    main()
