#!/usr/bin/env python
"""Explore the Section 4 cache/CPU cost model on different machines.

Reproduces the paper's arithmetic for its 2.2 GHz Pentium 4 Xeon and then
re-derives the same quantities for other cache hierarchies, showing how
the scan loop's CPU-bound / copy loop's cache-bound split moves around —
the analysis a staircase join implementor would redo for their hardware
("we believe a staircase join implementation in another RDBMS may
encounter similar conditions", Section 4.3).

Run:  python examples/cache_cost_model.py
"""

from repro.harness.reporting import format_table
from repro.simulator.cache import PAPER_MACHINE, CacheLevel, CacheSimulator, Machine
from repro.simulator.cost import (
    COPY_CYCLES_PER_NODE,
    SCAN_CYCLES_PER_NODE,
    cycles_per_cache_line,
    join_time_estimate,
    phase_bound,
    sequential_bandwidth_mb_s,
)

MACHINES = {
    "paper P4 Xeon 2.2GHz": PAPER_MACHINE,
    "slow clock, same caches": Machine(
        clock_ghz=1.0,
        l1=CacheLevel(8 * 1024, 32, 28),
        l2=CacheLevel(512 * 1024, 128, 387),
    ),
    "modern-ish (big L2, short miss)": Machine(
        clock_ghz=3.5,
        l1=CacheLevel(32 * 1024, 64, 12),
        l2=CacheLevel(4 * 1024 * 1024, 64, 200),
    ),
}


def main():
    rows = []
    for name, machine in MACHINES.items():
        rows.append(
            {
                "machine": name,
                "scan_cy_per_line": cycles_per_cache_line(SCAN_CYCLES_PER_NODE, machine),
                "copy_cy_per_line": cycles_per_cache_line(COPY_CYCLES_PER_NODE, machine),
                "l2_miss_cy": machine.l2.miss_latency_cycles,
                "scan_bound": phase_bound(SCAN_CYCLES_PER_NODE, machine),
                "copy_bound": phase_bound(COPY_CYCLES_PER_NODE, machine),
                "seq_bw_mb_s": sequential_bandwidth_mb_s(machine),
            }
        )
    print("cost model across machines:")
    print(format_table(rows))
    print(
        "\npaper reference: scan 544 cy vs 387 cy (CPU-bound), copy 160 cy "
        "(cache-bound), 551 MB/s"
    )

    # End-to-end estimate for the (root)/descendant copy experiment.
    print("\n(root)/descendant on 50,844,982 nodes (the paper measured 519 ms):")
    for name, machine in MACHINES.items():
        estimate = join_time_estimate(
            copy_nodes=50_844_982, scan_nodes=1, machine=machine, prefetch="hardware"
        )
        print(
            f"  {name:32s} {estimate.total_seconds * 1000:7.1f} ms "
            f"({estimate.bound}-bound)"
        )

    # Trace-driven sanity check of the analytic model.
    print("\ntrace-driven simulator, 64k sequential 4-byte node touches:")
    simulator = CacheSimulator(PAPER_MACHINE)
    simulator.access_run(0, 64_000, 4)
    print(f"  {simulator.summary()}")
    per_line = 64_000 * 4 / PAPER_MACHINE.l2.line_bytes
    print(f"  expected L2 misses: one per line = {per_line:.0f}")


if __name__ == "__main__":
    main()
