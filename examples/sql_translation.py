#!/usr/bin/env python
"""What a tree-unaware RDBMS does with XPath — and what tree awareness buys.

Reproduces the Section 2.1 story end to end:

1. translate an XPath path to the self-join SQL of Figure 3;
2. execute the corresponding physical plan (B+-tree index scans, a
   nested region join, `unique`, sort);
3. run the same step through the staircase join and compare the work.

Run:  python examples/sql_translation.py
"""


from repro.core.staircase import SkipMode, staircase_join
from repro.counters import JoinStatistics
from repro.engine.db2 import DocIndex, db2_path
from repro.engine.sqlgen import path_to_sql
from repro.harness.workloads import Q1, Q2, get_document
from repro.xpath.evaluator import evaluate
from repro.xpath.rewrite import symmetry_rewrite


def main():
    doc = get_document(0.11)
    index = DocIndex(doc)
    print(f"document: {len(doc):,} nodes, height {doc.height}\n")

    # 1. The SQL an RDBMS sees --------------------------------------------
    print("Figure 3 — SQL for (c)/following::node()/descendant::node():\n")
    print(path_to_sql("following::node()/descendant::node()", context_name="c"))
    print("\nwith the Equation (1) 'line 7' delimiter:\n")
    print(
        path_to_sql(
            "following::node()/descendant::node()",
            context_name="c",
            eq1_delimiter=True,
        )
    )

    print("\nQ1 as SQL:\n")
    print(path_to_sql(Q1))

    # 2. Tree-unaware execution -------------------------------------------
    print("\n--- executing Q1 the DB2 way (B+-tree + unique + sort) ---")
    db2_stats = JoinStatistics()
    db2_result = db2_path(index, Q1, stats=db2_stats)
    print(
        f"result {len(db2_result)} nodes; scanned {db2_stats.nodes_scanned:,} "
        f"index entries over {db2_stats.index_probes:,} probes; removed "
        f"{db2_stats.duplicates_generated:,} duplicates"
    )

    # 3. Tree-aware execution ----------------------------------------------
    print("\n--- the same query through the staircase join ---")
    scj_stats = JoinStatistics()
    result = evaluate(doc, Q1, stats=scj_stats)
    print(
        f"result {len(result)} nodes; touched {scj_stats.nodes_touched:,} nodes, "
        f"skipped {scj_stats.nodes_skipped:,}; duplicates "
        f"{scj_stats.duplicates_generated}"
    )
    assert db2_result.tolist() == result.tolist()

    # 4. The Q2 mis-planning story ------------------------------------------
    print("\n--- Q2 and the symmetry rewrite [Olteanu et al.] ---")
    rewritten = symmetry_rewrite(Q2)
    print(f"{Q2}  ->  {rewritten}")
    raw_stats, rewritten_stats = JoinStatistics(), JoinStatistics()
    db2_path(index, Q2, rewrite_ancestor=False, stats=raw_stats)
    db2_path(index, Q2, rewrite_ancestor=True, stats=rewritten_stats)
    print(
        f"tree-unaware ancestor plan: {raw_stats.nodes_scanned:,} entries scanned; "
        f"rewritten plan: {rewritten_stats.nodes_scanned:,} "
        f"({raw_stats.nodes_scanned / max(1, rewritten_stats.nodes_scanned):.0f}x less)"
    )
    scj = JoinStatistics()
    context = doc.pres_with_tag("increase")
    staircase_join(doc, context, "ancestor", SkipMode.ESTIMATE, scj)
    print(
        f"staircase join needs no rewrite at all: {scj.nodes_touched:,} nodes "
        f"touched for the ancestor step"
    )


if __name__ == "__main__":
    main()
