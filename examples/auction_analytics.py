#!/usr/bin/env python
"""Auction analytics over an XMark document.

The scenario the paper's XMark workload models: an auction site whose
catalogue, people and running auctions live in one XML document, queried
with XPath.  This example exercises the realistic query surface — name
tests, predicates, positions, value comparisons — through the staircase
join evaluator, with name-test pushdown enabled (Experiment 3's fast
configuration).

Run:  python examples/auction_analytics.py [size_mb]
"""

import sys
import time

from repro.xmark import generate_table
from repro.xpath.evaluator import Evaluator


def headline(text):
    print(f"\n== {text}")


def main():
    size = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    started = time.perf_counter()
    doc = generate_table(size)
    print(
        f"generated + encoded a {size} MB XMark instance: {len(doc):,} nodes, "
        f"height {doc.height}, {time.perf_counter() - started:.2f}s"
    )

    analytics = Evaluator(doc, pushdown=True)

    headline("How busy is the site?")
    for tag in ("item", "person", "open_auction", "bidder"):
        count = len(analytics.evaluate(f"/descendant::{tag}"))
        print(f"  {tag:13s} {count:6,d}")

    headline("Q1 — the paper's education query")
    education = analytics.evaluate("/descendant::profile/descendant::education")
    print(f"  {len(education)} people list an education; first few values:")
    for pre in education[:3]:
        print(f"    - {doc.string_value(int(pre))}")

    headline("Q2 — bidders that actually raised the price")
    bidders = analytics.evaluate("/descendant::increase/ancestor::bidder")
    print(f"  {len(bidders):,} bidders placed an increase")

    headline("Auctions with a bidding war (3+ bidders)")
    contested = analytics.evaluate("//open_auction[count(bidder) >= 3]")
    print(f"  {len(contested):,} contested auctions")

    headline("Opening bids of contested auctions")
    opening = analytics.evaluate("bidder[1]/increase", context=contested)
    values = [float(doc.string_value(int(p))) for p in opening]
    if values:
        print(
            f"  first-increase stats: n={len(values)}, "
            f"min={min(values):.2f}, max={max(values):.2f}, "
            f"mean={sum(values) / len(values):.2f}"
        )

    headline("People with graduate education and a credit card")
    vips = analytics.evaluate(
        '//person[profile/education = "Graduate School" and creditcard]'
    )
    print(f"  {len(vips):,} qualified bidders")

    headline("Items shipped from 'north'-ish locations")
    northern = analytics.evaluate('//item[starts-with(location, "North")]')
    print(f"  {len(northern):,} items")

    headline("Cross-check: closed vs open auctions")
    closed = analytics.evaluate("/site/closed_auctions/closed_auction")
    open_ = analytics.evaluate("/site/open_auctions/open_auction")
    print(f"  {len(open_):,} open / {len(closed):,} closed")

    print(
        f"\njoin statistics accumulated over the session: "
        f"{analytics.stats.nodes_touched:,} nodes touched, "
        f"{analytics.stats.nodes_skipped:,} skipped, "
        f"{analytics.stats.duplicates_generated} duplicates (staircase join: always 0)"
    )


if __name__ == "__main__":
    main()
