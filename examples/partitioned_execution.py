#!/usr/bin/env python
"""Partitioned staircase join and per-tag fragmentation.

Two execution strategies the paper sketches beyond the core algorithm:

* Section 3.2's observation that the pruned context partitions the
  pre/post plane — "the partitioned pre/post plane naturally leads to a
  parallel XPath execution strategy";
* the future-work fragmentation by tag name (Q1: 345 ms → 39 ms in the
  paper's first experiments).

Run:  python examples/partitioned_execution.py [size_mb]
"""

import sys
import time

from repro.core.fragments import FragmentedDocument
from repro.core.partition import partitioned_staircase_join, plan_partitions
from repro.core.pruning import prune
from repro.core.staircase import SkipMode, staircase_join
from repro.counters import JoinStatistics
from repro.harness.workloads import get_document


def main():
    size = float(sys.argv[1]) if len(sys.argv) > 1 else 1.1
    doc = get_document(size)
    context = doc.pres_with_tag("increase")
    print(f"document: {len(doc):,} nodes; context: {len(context):,} increase nodes\n")

    # 1. The partition plan -------------------------------------------------
    pruned = prune(doc, context, "ancestor")
    plan = plan_partitions(doc, pruned, "ancestor")
    widths = [p.pre2 - p.pre1 + 1 for p in plan]
    print(
        f"ancestor staircase: {len(plan)} partitions, widths "
        f"min={min(widths)}, median={sorted(widths)[len(widths) // 2]}, "
        f"max={max(widths)}"
    )

    # 2. Serial vs thread-pool execution ------------------------------------
    for workers in (0, 4):
        stats = JoinStatistics()
        started = time.perf_counter()
        result = partitioned_staircase_join(
            doc, context, "ancestor", SkipMode.ESTIMATE, workers=workers, stats=stats
        )
        elapsed = time.perf_counter() - started
        label = "serial" if workers == 0 else f"{workers} threads"
        print(
            f"  {label:10s} {elapsed * 1000:7.2f} ms, result {len(result):,}, "
            f"touched {stats.nodes_touched:,}"
        )
    print(
        "  (CPython threads add no speedup for pure-Python loops; the plan\n"
        "   shows *what* a C kernel would parallelise, and that results and\n"
        "   statistics merge exactly.)\n"
    )

    # 3. Fragmentation by tag name ------------------------------------------
    started = time.perf_counter()
    fragmented = FragmentedDocument(doc)
    build = time.perf_counter() - started
    sizes = fragmented.fragment_sizes()
    top = sorted(sizes.items(), key=lambda kv: -kv[1])[:5]
    print(f"built {len(sizes)} tag fragments in {build * 1000:.1f} ms; largest:")
    for tag, count in top:
        print(f"    {tag:12s} {count:6,d} elements")

    profiles = doc.pres_with_tag("profile")
    started = time.perf_counter()
    monolithic = staircase_join(doc, profiles, "descendant", SkipMode.ESTIMATE)
    from repro.xpath.axes import apply_node_test

    monolithic = apply_node_test(doc, monolithic, "descendant", "name", "education")
    t_monolithic = time.perf_counter() - started

    started = time.perf_counter()
    via_fragment = fragmented.descendant_step(profiles, "education")
    t_fragment = time.perf_counter() - started
    assert monolithic.tolist() == via_fragment.tolist()
    print(
        f"\nQ1 second step: monolithic {t_monolithic * 1000:.2f} ms vs "
        f"fragment {t_fragment * 1000:.2f} ms "
        f"({t_monolithic / max(t_fragment, 1e-9):.1f}x; paper reported 8.8x "
        "end-to-end on 1 GB)"
    )


if __name__ == "__main__":
    main()
