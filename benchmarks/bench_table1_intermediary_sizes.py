"""E2 — Table 1: number of nodes in intermediary results (Q1, Q2).

Paper (1 GB document, 50 844 982 nodes):

    Q1: /descendant::profile /descendant::education
        47,015,212   127,984   1,849,360   63,793
    Q2: /descendant::increase /ancestor::bidder
        47,015,212   597,777     706,193  597,777

We regenerate the same four counts per query on the scaled document and
assert the structural identities the paper's numbers exhibit (bidder
count == increase count; counts shrink along Q1's pipeline; sizes for
other documents are 'proportionally smaller').
"""

import pytest
from conftest import BENCH_SIZE, SWEEP_SIZES

from repro.harness.experiments import table1_intermediary_sizes
from repro.harness.reporting import format_table
from repro.xpath.evaluator import evaluate

COLUMNS = [
    "query",
    "descendant_from_root",
    "after_first_nametest",
    "second_axis_step",
    "after_second_nametest",
]


def test_table1_regeneration(benchmark, emit):
    rows = benchmark.pedantic(
        table1_intermediary_sizes, args=(BENCH_SIZE,), rounds=1, iterations=1
    )
    emit(
        f"Table 1 — intermediary result sizes ({BENCH_SIZE} MB nominal)",
        format_table(rows, COLUMNS),
        "paper @1GB: Q1 47,015,212 / 127,984 / 1,849,360 / 63,793",
        "            Q2 47,015,212 / 597,777 /   706,193 / 597,777",
    )
    q1, q2 = rows
    # Structural identities from the paper's Table 1:
    assert q2["after_second_nametest"] == q2["after_first_nametest"]
    assert q1["descendant_from_root"] > q1["second_axis_step"] > q1["after_second_nametest"]
    assert q2["second_axis_step"] > q2["after_first_nametest"]


def test_table1_proportional_scaling(benchmark, emit):
    """'sizes for other documents are proportionally smaller'."""

    def sweep():
        return [
            dict(size_mb=size, **table1_intermediary_sizes(size)[1])
            for size in SWEEP_SIZES
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("Q2 counts across sizes:", format_table(rows, ["size_mb"] + COLUMNS[1:]))
    small, large = rows[0], rows[-1]
    scale = large["size_mb"] / small["size_mb"]
    measured = large["after_first_nametest"] / small["after_first_nametest"]
    assert measured == pytest.approx(scale, rel=0.35)


@pytest.mark.parametrize("query_index, name", [(0, "Q1"), (1, "Q2")])
def test_query_evaluation_benchmark(benchmark, bench_doc, query_index, name):
    paths = (
        "/descendant::profile/descendant::education",
        "/descendant::increase/ancestor::bidder",
    )
    result = benchmark(lambda: evaluate(bench_doc, paths[query_index]))
    benchmark.extra_info["result_size"] = int(len(result))
    assert len(result) > 0
