"""Planner benchmarks: prefix-sharing throughput and no-regression.

Two contracts guard the cost-based planner (`repro.xpath.planner` plus
the executor's step-prefix trie):

* **batch ≥ 2×** — on a prefix-heavy XMark batch (12 queries sharing
  2–3-step prefixes) the planned path answers at least twice the
  queries/sec of the unplanned path on the same store, even with a cold
  prefix cache (the sharing happens *within* the batch);
* **single-query ≤ +10 %** — automatic planning (rewrites, pushdown,
  skip-mode choice) is never more than 10 % slower than the unplanned
  path on any single query of the suite, either engine.  A planner that
  can only win on averages is not trustworthy enough to be the default.

Identity of planned and unplanned results is asserted on every measured
query (the hypothesis-backed equivalence lives in the test suite).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_planner.py --benchmark-only
"""

import time

import numpy as np
import pytest

from repro.harness.reporting import format_table
from repro.harness.workloads import get_forest
from repro.service import QueryService, ShardedStore

DOCUMENTS = 8
SHARDS = 4
SIZE_MB = 0.11

#: ≥8 queries sharing ≥2-step prefixes after the planner's //-collapse
#: (`descendant::open_auction` / `descendant::person` / …): the trie
#: evaluates each distinct prefix once per shard.
PREFIX_BATCH = (
    "//open_auction/bidder/increase",
    "//open_auction/bidder/personref",
    "//open_auction/seller",
    "//open_auction/initial",
    "//open_auction/current",
    "//open_auction/itemref",
    "//open_auction/reserve",
    "//open_auction/interval",
    "//person/profile/education",
    "//person/profile/interest",
    "//person/name",
    "//item/description/text/keyword",
)

#: The per-query no-regression suite: rewrite shapes, pushdown shapes,
#: predicates (bulk and per-node), positionals, unions, kind tests.
SINGLE_SUITE = (
    "/descendant::increase/ancestor::bidder",
    "/descendant::category/ancestor::categories",
    "//open_auction/bidder/increase",
    "//keyword",
    "//site",
    "//person//profile//education",
    "//open_auction[bidder]/seller",
    "//open_auction[bidder][initial]",
    "//bidder[1]",
    "//seller | //buyer",
    "/descendant::node()",
    '//item[starts-with(location, "A")]',
)

ENGINES = ("vectorized", "scalar")


@pytest.fixture(scope="module")
def planner_store(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("planner-bench") / "store")
    return ShardedStore.build(
        directory, get_forest(DOCUMENTS, SIZE_MB), shards=SHARDS
    )


def _clear_execution_caches(service):
    """Cold-*execution* reset: result cache and the worker prefix cache
    (the serial worker state is in-process and reachable).  The plan
    cache stays warm — parsed ASTs (planner-off) and costed plans
    (planner-on) are both once-per-query-per-epoch work, and keeping
    both keeps the comparison about execution.
    """
    service.result_cache.clear()
    state = service.executor._serial_state
    if state is not None:
        state.prefix_cache.clear()


def _best_batch_seconds(service, queries, use_planner, rounds=5):
    best = float("inf")
    results = None
    for _ in range(rounds):
        _clear_execution_caches(service)
        started = time.perf_counter()
        results = service.execute_batch(
            queries, use_cache=False, use_planner=use_planner
        )
        best = min(best, time.perf_counter() - started)
    return best, results


def _assert_identical(planned, plain, label):
    for a, b in zip(planned, plain):
        assert list(a.per_document) == list(b.per_document), label
        for name in a.per_document:
            assert np.array_equal(
                a.per_document[name], b.per_document[name]
            ), (label, a.query, name)


# ----------------------------------------------------------------------
def test_prefix_batch_speedup(planner_store, emit, benchmark):
    """The ≥2× batch contract (and planned == unplanned, byte for byte)."""
    rows = []
    outcome = {}

    def run():
        rows.clear()
        with QueryService(planner_store, workers=0) as service:
            service.execute_batch(PREFIX_BATCH, use_cache=False)  # warm mmaps
            off_s, plain = _best_batch_seconds(service, PREFIX_BATCH, False)
            on_s, planned = _best_batch_seconds(service, PREFIX_BATCH, True)
            _assert_identical(planned, plain, "prefix batch")
        outcome["speedup"] = off_s / on_s
        for label, seconds in (("planner-off", off_s), ("planner-on", on_s)):
            rows.append(
                {
                    "config": label,
                    "batch_ms": f"{seconds * 1e3:.2f}",
                    "queries_per_s": f"{len(PREFIX_BATCH) / seconds:,.0f}",
                }
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["contract_min_prefix_speedup"] = round(
        outcome["speedup"], 2
    )
    emit(
        f"prefix-heavy batch — {len(PREFIX_BATCH)} queries, {DOCUMENTS} "
        f"documents / {SHARDS} shards, cold prefix cache each round",
        format_table(rows),
        f"speedup: {outcome['speedup']:.2f}x (contract: >= 2.0x)",
    )
    assert outcome["speedup"] >= 2.0, (
        f"planned batch only {outcome['speedup']:.2f}x over planner-off "
        "(contract: >= 2x)"
    )


# ----------------------------------------------------------------------
def test_single_query_never_regresses(planner_store, emit, benchmark):
    """Auto-planning within +10 % of planner-off on every single query.

    Sub-millisecond queries get a 0.3 ms absolute allowance on top (the
    10 % of a 50 µs query is inside timer noise).
    """
    rows = []
    worst = {}

    def measure(service, query, rounds=9):
        """Best-of-``rounds`` for planner-off and planner-on, measured
        interleaved so machine noise (page cache, GC) hits both arms."""
        best = {False: float("inf"), True: float("inf")}
        results = {}
        for _ in range(rounds):
            for use_planner in (False, True):
                _clear_execution_caches(service)
                started = time.perf_counter()
                results[use_planner] = service.execute(
                    query, use_cache=False, use_planner=use_planner
                )
                best[use_planner] = min(
                    best[use_planner], time.perf_counter() - started
                )
        return best[False], best[True], results[False], results[True]

    def run():
        rows.clear()
        worst.clear()
        worst["ratio"], worst["query"] = 0.0, ""
        for engine in ENGINES:
            with QueryService(
                planner_store, workers=0, engine=engine
            ) as service:
                service.execute_batch(SINGLE_SUITE, use_cache=False)  # warm
                for query in SINGLE_SUITE:
                    off_s, on_s, plain, planned = measure(service, query)
                    _assert_identical([planned], [plain], engine)
                    ratio = on_s / off_s
                    # The recorded drift metric only counts queries long
                    # enough for a ratio to mean anything; sub-ms ones
                    # are governed by the absolute allowance below.
                    if ratio > worst["ratio"] and off_s >= 1e-3:
                        worst["ratio"], worst["query"] = ratio, f"{engine}: {query}"
                    rows.append(
                        {
                            "engine": engine,
                            "query": query,
                            "off_ms": f"{off_s * 1e3:.3f}",
                            "on_ms": f"{on_s * 1e3:.3f}",
                            "on/off": f"{ratio:.2f}",
                        }
                    )
                    assert on_s <= 1.10 * off_s + 3e-4, (
                        f"{engine}: {query!r} regressed {ratio:.2f}x "
                        "under auto-planning (contract: <= 1.10x)"
                    )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    if worst["ratio"] > 0:
        # Only meaningful when some query crossed the 1 ms floor — a
        # committed 0.0 would make every honest future run look like
        # drift.
        benchmark.extra_info["contract_max_single_ratio"] = round(
            worst["ratio"], 2
        )
    emit(
        f"single-query planner overhead — {len(SINGLE_SUITE)} queries × "
        f"{len(ENGINES)} engines (cold caches, best of 9, interleaved)",
        format_table(rows),
        f"worst on/off ratio: {worst['ratio']:.2f} ({worst['query']})",
    )
