"""Write-path benchmark: subtree splice vs full-shard rebuild.

A single-document edit on a 16-document shard can be served two ways:

* ``QueryService.apply_updates`` — O(n) rank splicing on the existing
  gathered plane (:mod:`repro.encoding.updates`), then one new shard
  file + manifest flip;
* ``ShardedStore.replace_shard`` — re-encode all 16 member trees from
  scratch, then the same file + manifest flip.

Both end in an identical store state (pinned below by comparing a query
batch byte-for-byte against a store built fresh from equivalently edited
trees, on both engines).  The contract this file enforces — and CI
uploads as ``BENCH_updates.json`` — is that the splice path is **≥ 5×**
faster on single-document edits.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_update_path.py --benchmark-only
"""

import copy
import time

import pytest

from repro.harness.reporting import format_table
from repro.harness.workloads import get_forest
from repro.service import QueryService, ShardedStore, UpdateOp
from repro.xmltree.model import NodeKind, element, text

#: One shard holding all member documents — the worst case for a
#: rebuild, the common case for a co-located collection.
DOCUMENTS = 16
SHARDS = 1
SIZE_MB = 0.05

#: Queries used for the post-update byte-identity check.
VERIFY_QUERIES = (
    "//person",
    "/descendant::increase/ancestor::bidder",
    "//open_auction[bidder]/seller",
    "//*/attribute::*",
)

ENGINES = ("scalar", "vectorized")


def fresh_store(tmp_path_factory, name, forest):
    directory = str(tmp_path_factory.mktemp(name) / "store")
    return ShardedStore.build(directory, forest, shards=SHARDS)


def edited_tree(tree, marker):
    """The tree-level equivalent of the benchmark's splice insert."""
    edited = copy.deepcopy(tree)
    root = (
        edited
        if edited.kind == NodeKind.ELEMENT
        else next(c for c in edited.children if c.kind == NodeKind.ELEMENT)
    )
    root.append(element("promo", text(marker)))
    return edited


def splice_op(marker):
    """The benchmark edit: append one small element to one document."""
    return UpdateOp(
        "insert", "xmark-00", tree=element("promo", text(marker)), pre=0
    )


def _measure(action, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        action()
        best = min(best, time.perf_counter() - started)
    return best


def test_splice_vs_rebuild_contract(tmp_path_factory, emit, benchmark):
    """Single-document edits: splice must beat a shard rebuild ≥ 5×."""
    forest = get_forest(DOCUMENTS, SIZE_MB)
    store = fresh_store(tmp_path_factory, "update-bench", forest)
    nodes = sum(e["nodes"] for e in store.describe()["shards"])
    serial = iter(range(10_000))

    def splice_once():
        store.apply_updates([splice_op(f"s{next(serial)}")])

    def rebuild_once():
        store.replace_shard(0, forest)

    # Warm both paths (page cache, lazy imports) before timing.
    splice_once()
    rebuild_once()

    timings = {}

    def run():
        timings["splice"] = _measure(splice_once)
        timings["rebuild"] = _measure(rebuild_once)
        return timings

    benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = timings["rebuild"] / timings["splice"]
    emit(
        f"update path — {DOCUMENTS} documents / {SHARDS} shard, "
        f"{nodes:,} nodes, single-document edit",
        format_table(
            [
                {
                    "path": "apply_updates (splice)",
                    "best_ms": f"{timings['splice'] * 1e3:.2f}",
                },
                {
                    "path": "replace_shard (re-encode)",
                    "best_ms": f"{timings['rebuild'] * 1e3:.2f}",
                },
                {"path": "speedup", "best_ms": f"{speedup:.1f}x"},
            ]
        ),
    )
    benchmark.extra_info["splice_ms"] = timings["splice"] * 1e3
    benchmark.extra_info["rebuild_ms"] = timings["rebuild"] * 1e3
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["contract_min_splice_speedup"] = round(speedup, 2)
    assert speedup >= 5.0, (
        "subtree splice below the 5x contract over a full-shard rebuild: "
        f"{speedup:.1f}x"
    )


@pytest.mark.parametrize("engine", ENGINES)
def test_post_update_results_equal_fresh_build(
    tmp_path_factory, engine, benchmark
):
    """A query batch after ``apply_updates`` is byte-identical to one
    against a store rebuilt from scratch with the same edits."""
    forest = get_forest(DOCUMENTS, SIZE_MB)
    updated = fresh_store(tmp_path_factory, f"update-id-{engine}", forest)
    edited = [
        (name, edited_tree(tree, "mark") if name == "xmark-00" else tree)
        for name, tree in forest
    ]
    rebuilt = fresh_store(tmp_path_factory, f"rebuilt-id-{engine}", edited)

    def run():
        with QueryService(updated, workers=0) as service:
            service.apply_updates([splice_op("mark")])
            got = service.execute_batch(VERIFY_QUERIES, engine=engine)
        with QueryService(rebuilt, workers=0) as service:
            expected = service.execute_batch(VERIFY_QUERIES, engine=engine)
        return got, expected

    got, expected = benchmark.pedantic(run, rounds=1, iterations=1)
    for query, mine, reference in zip(VERIFY_QUERIES, got, expected):
        assert list(mine.per_document) == list(reference.per_document), query
        for name in reference.per_document:
            assert (
                mine.per_document[name].tobytes()
                == reference.per_document[name].tobytes()
            ), (query, name)
