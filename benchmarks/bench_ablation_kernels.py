"""E11c — Ablation: scalar loops vs vectorised kernels vs partitioning.

The scalar kernels transcribe the paper's algorithms (and feed the node
counters); the vectorised kernels express the same tree knowledge as
numpy bulk operations.  In C the two would be within a small factor; in
Python the bulk kernels show what the algorithm costs without
interpreter overhead.  Partition-parallel execution is measured for plan
overhead (CPython threads cannot speed the loops up — the bench
documents that honestly rather than claiming a parallel win).
"""

import pytest

from repro.baselines.mpmgjn import mpmgjn_step
from repro.baselines.stacktree import stack_tree_step
from repro.core.partition import partitioned_staircase_join
from repro.core.staircase import SkipMode, staircase_join
from repro.core.vectorized import axis_step_vectorized, staircase_join_vectorized
from repro.xpath.ast import AXES
from repro.xpath.axes import AxisExecutor


@pytest.fixture(scope="module")
def desc_context(bench_doc):
    return bench_doc.pres_with_tag("open_auction")


@pytest.fixture(scope="module")
def anc_context(bench_doc):
    return bench_doc.pres_with_tag("increase")


class TestDescendantKernels:
    def test_scalar(self, benchmark, bench_doc, desc_context):
        benchmark(
            lambda: staircase_join(
                bench_doc, desc_context, "descendant", SkipMode.ESTIMATE
            )
        )

    def test_vectorized(self, benchmark, bench_doc, desc_context):
        benchmark(
            lambda: staircase_join_vectorized(bench_doc, desc_context, "descendant")
        )

    def test_partitioned_serial(self, benchmark, bench_doc, desc_context):
        benchmark(
            lambda: partitioned_staircase_join(
                bench_doc, desc_context, "descendant", workers=0
            )
        )

    def test_partitioned_threads(self, benchmark, bench_doc, desc_context):
        benchmark(
            lambda: partitioned_staircase_join(
                bench_doc, desc_context, "descendant", workers=4
            )
        )


class TestAncestorKernels:
    def test_scalar(self, benchmark, bench_doc, anc_context):
        benchmark(
            lambda: staircase_join(
                bench_doc, anc_context, "ancestor", SkipMode.ESTIMATE
            )
        )

    def test_vectorized(self, benchmark, bench_doc, anc_context):
        benchmark(
            lambda: staircase_join_vectorized(bench_doc, anc_context, "ancestor")
        )

    def test_mpmgjn(self, benchmark, bench_doc, anc_context):
        benchmark(lambda: mpmgjn_step(bench_doc, anc_context, "ancestor"))

    def test_stack_tree(self, benchmark, bench_doc, anc_context):
        benchmark(lambda: stack_tree_step(bench_doc, anc_context, "ancestor"))


class TestStructuralAxisKernels:
    """The engine's non-partitioning kernels: scalar loops vs bulk joins.

    ``bidder`` contexts exercise the parent-column equi-joins on a
    realistic fan-out (each auction holds a handful of bidders).
    """

    @pytest.fixture(scope="class")
    def sibling_context(self, bench_doc):
        return bench_doc.pres_with_tag("bidder")

    @pytest.mark.parametrize("axis", ["child", "following-sibling", "parent"])
    def test_scalar(self, benchmark, bench_doc, sibling_context, axis):
        executor = AxisExecutor(bench_doc, engine="scalar")
        benchmark(lambda: executor.step(sibling_context, axis))

    @pytest.mark.parametrize("axis", ["child", "following-sibling", "parent"])
    def test_vectorized(self, benchmark, bench_doc, sibling_context, axis):
        benchmark(lambda: axis_step_vectorized(bench_doc, sibling_context, axis))


def test_kernels_agree(bench_doc, desc_context, anc_context, benchmark):
    def check():
        for axis, context in (
            ("descendant", desc_context),
            ("ancestor", anc_context),
        ):
            scalar = staircase_join(bench_doc, context, axis, SkipMode.ESTIMATE)
            bulk = staircase_join_vectorized(bench_doc, context, axis)
            assert scalar.tolist() == bulk.tolist()
        for axis in AXES:
            scalar = AxisExecutor(bench_doc, engine="scalar").step(anc_context, axis)
            bulk = axis_step_vectorized(bench_doc, anc_context, axis)
            assert scalar.tolist() == bulk.tolist(), axis
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
