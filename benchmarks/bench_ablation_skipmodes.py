"""E11a — Ablation: the four skip modes on both staircase axes.

DESIGN.md calls out the design ladder NONE → SKIP → ESTIMATE → EXACT
(our extension using the level term, cf. the paper's footnote 5 on exact
subtree-size encodings).  This bench quantifies each rung on Q1's and
Q2's second step: node touches are exact counters, times come from
pytest-benchmark.
"""

import pytest

from repro.core.staircase import SkipMode, staircase_join
from repro.counters import JoinStatistics
from repro.harness.reporting import format_table

MODES = [SkipMode.NONE, SkipMode.SKIP, SkipMode.ESTIMATE, SkipMode.EXACT]


def test_touch_counts_ladder(benchmark, bench_doc, emit):
    """Each rung must touch no more nodes than the one below."""

    def measure():
        rows = []
        for axis, tag in (("descendant", "profile"), ("ancestor", "increase")):
            context = bench_doc.pres_with_tag(tag)
            for mode in MODES:
                stats = JoinStatistics()
                staircase_join(bench_doc, context, axis, mode, stats)
                rows.append(
                    {
                        "axis": axis,
                        "mode": mode.value,
                        "touched": stats.nodes_touched,
                        "skipped": stats.nodes_skipped,
                        "comparisons": stats.post_comparisons,
                    }
                )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit("Skip-mode ablation (node touches):", format_table(rows))
    by_key = {(r["axis"], r["mode"]): r for r in rows}
    for axis in ("descendant", "ancestor"):
        none = by_key[(axis, "none")]["touched"]
        skip = by_key[(axis, "skip")]["touched"]
        estimate = by_key[(axis, "estimate")]["touched"]
        assert skip <= none
        assert estimate <= none
        # EXACT eliminates comparisons entirely on the descendant axis.
        if axis == "descendant":
            assert by_key[(axis, "exact")]["comparisons"] == 0


@pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
@pytest.mark.parametrize("axis, tag", [("descendant", "profile"), ("ancestor", "increase")])
def test_skip_mode_timing(benchmark, bench_doc, mode, axis, tag):
    context = bench_doc.pres_with_tag(tag)
    benchmark(lambda: staircase_join(bench_doc, context, axis, mode))
