"""E11b — Ablation: what pruning itself buys and costs.

Pruning is a single pass over the context (cheap); its payoff is that
the join's partition count drops to the staircase boundary.  Measured on
a deliberately nested context (open_auction ∪ bidder ∪ increase — every
increase is covered twice over).
"""

import numpy as np
import pytest

from repro.baselines.naive import naive_step_with_duplicates
from repro.core.pruning import prune
from repro.core.staircase import SkipMode, staircase_join
from repro.counters import JoinStatistics
from repro.harness.reporting import format_table


@pytest.fixture(scope="module")
def nested_context(bench_doc):
    return np.sort(
        np.concatenate(
            [
                bench_doc.pres_with_tag("open_auction"),
                bench_doc.pres_with_tag("bidder"),
                bench_doc.pres_with_tag("increase"),
            ]
        )
    )


def test_pruning_effect_report(benchmark, bench_doc, nested_context, emit):
    def measure():
        stats = JoinStatistics()
        pruned = prune(bench_doc, nested_context, "descendant", stats)
        naive = JoinStatistics()
        naive_step_with_duplicates(bench_doc, nested_context, "descendant", naive)
        return {
            "context": len(nested_context),
            "pruned_context": len(pruned),
            "removed": stats.context_pruned,
            "naive_produced": naive.result_size,
        }

    row = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit("Pruning ablation (nested auction context):", format_table([row]))
    # bidders and increases are inside their open_auction: all pruned.
    assert row["pruned_context"] == len(bench_doc.pres_with_tag("open_auction"))
    assert row["naive_produced"] > 0


def test_prune_pass_cost(benchmark, bench_doc, nested_context):
    benchmark(lambda: prune(bench_doc, nested_context, "descendant"))


def test_join_on_pruned_vs_duplicate_work(benchmark, bench_doc, nested_context):
    """The staircase join (pruning included) on the nested context."""
    result = benchmark(
        lambda: staircase_join(
            bench_doc, nested_context, "descendant", SkipMode.ESTIMATE
        )
    )
    assert np.all(np.diff(result) > 0)


def test_naive_on_unpruned_context(benchmark, bench_doc, nested_context):
    """The counterfactual: per-context evaluation re-derives covered
    subtrees once per covering context node."""
    produced = benchmark(
        lambda: naive_step_with_duplicates(bench_doc, nested_context, "descendant")
    )
    unique = len(np.unique(produced))
    benchmark.extra_info["duplicate_ratio"] = round(1 - unique / len(produced), 3)
