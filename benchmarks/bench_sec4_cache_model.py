"""E9 — Sections 4.2/4.3: CPU- and cache-conscious analysis.

Regenerates the paper's published cost-model numbers on the modelled
Pentium 4 Xeon — 544 cy vs 387 cy (scan loop is CPU-bound), 160 cy (copy
loop is cache-bound), 551 MB/s sequential bandwidth, and the
719 / 805 MB/s prefetch ladder — and validates the analytic model with
the trace-driven cache simulator: a sequential scan misses once per
line; random probes are miss-bound.
"""

import pytest

from repro.harness.experiments import cache_model_report
from repro.harness.reporting import format_table
from repro.simulator.cache import PAPER_MACHINE, CacheSimulator
from repro.simulator.cost import join_time_estimate


def test_section4_numbers_regeneration(benchmark, emit):
    report = benchmark.pedantic(cache_model_report, rounds=1, iterations=1)
    emit(
        "Section 4.2/4.3 — cost model on the paper machine",
        format_table([report]),
        "paper: scan 544 cy/line (CPU-bound), copy 160 cy/line (cache-bound),",
        "       551 MB/s sequential, 719 MB/s hw prefetch, 805 MB/s sw prefetch",
    )
    assert report["scan_cycles_per_line"] == 544
    assert report["copy_cycles_per_line"] == 160
    assert report["scan_phase_bound"] == "cpu"
    assert report["copy_phase_bound"] == "cache"
    assert report["sequential_bandwidth_mb_s"] == pytest.approx(551, rel=0.03)
    assert report["hw_prefetch_bandwidth_mb_s"] == pytest.approx(719, rel=0.03)
    assert report["sw_prefetch_bandwidth_mb_s"] == pytest.approx(805, rel=0.03)


def test_root_descendant_copy_experiment_estimate(benchmark, emit):
    """The (root)/descendant experiment of Section 4.3: 50,844,982 nodes,
    measured 519 ms on the paper machine.  The analytic model should land
    in the same regime."""
    breakdown = benchmark.pedantic(
        join_time_estimate,
        kwargs={"copy_nodes": 50_844_982, "scan_nodes": 1, "prefetch": "hardware"},
        rounds=1,
        iterations=1,
    )
    emit(
        f"(root)/descendant model estimate: {breakdown.total_seconds * 1000:.0f} ms "
        f"({breakdown.bound}-bound; paper measured 519 ms)"
    )
    assert 0.1 < breakdown.total_seconds < 2.0
    assert breakdown.bound == "cache"


def test_sequential_scan_simulation_benchmark(benchmark, emit):
    """Trace-driven validation: one L2 miss per 128-byte line."""

    def run():
        simulator = CacheSimulator(PAPER_MACHINE)
        simulator.access_run(start=0, count=32_000, stride=4)
        return simulator

    simulator = benchmark(run)
    assert simulator.l2_misses == 32_000 * 4 // 128
    assert simulator.l1_misses == 32_000 * 4 // 32


def test_random_probe_simulation_benchmark(benchmark, emit):
    """Counterfactual: the same node count probed randomly is an order
    of magnitude more stall-expensive — why staircase join never chases
    pointers."""
    import numpy as np

    addresses = np.random.default_rng(42).integers(
        0, PAPER_MACHINE.l2.size_bytes * 8, size=32_000
    )

    def run():
        simulator = CacheSimulator(PAPER_MACHINE)
        for address in addresses:
            simulator.access(int(address) & ~3, 4)
        return simulator

    random_sim = benchmark(run)
    sequential = CacheSimulator(PAPER_MACHINE)
    sequential.access_run(0, 32_000, 4)
    emit(
        f"stall cycles, 32k node touches: sequential "
        f"{sequential.stall_cycles:,.0f} vs random {random_sim.stall_cycles:,.0f} "
        f"({random_sim.stall_cycles / sequential.stall_cycles:.1f}x)"
    )
    assert random_sim.stall_cycles > 5 * sequential.stall_cycles
