"""E1 — Figure 3: the translated SQL query and its physical plan.

Regenerates the SQL text of Figure 3 and executes its plan shape
(pre-sorted outer index scan, delimited inner range scans, unique, sort)
against the staircase join on the same step — the plan computes the same
nodes while generating duplicates the staircase join never creates.
"""

import numpy as np
import pytest

from repro.core.staircase import staircase_join
from repro.counters import JoinStatistics
from repro.engine.operators import (
    IndexRangeScan,
    NestedLoopRegionJoin,
    Sort,
    Unique,
)
from repro.engine.sqlgen import path_to_sql
from repro.storage.btree import BPlusTree


@pytest.fixture(scope="module")
def index(request):
    from repro.harness.workloads import get_document

    # The un-delimited inner scans of the literal Figure 3 plan are
    # O(n²); a small instance keeps the faithful plan measurable.
    doc = get_document(0.02)
    items = [((pre,), (pre, int(doc.post[pre]))) for pre in range(len(doc))]
    return doc, BPlusTree.bulk_load(items, order=64, key_width=1)


def figure3_plan(tree, context_pre, context_post, stats):
    """The plan of Figure 3 for (c)/following::node()/descendant::node()."""
    outer = IndexRangeScan(
        tree,
        (context_pre + 1,),
        None,
        residual=lambda row: row[1] > context_post,
        stats=stats,
    )
    join = NestedLoopRegionJoin(
        outer,
        lambda v1: IndexRangeScan(
            tree,
            (v1[0] + 1,),
            None,
            residual=lambda v2, post=v1[1]: v2[1] < post,
            stats=stats,
        ),
    )
    return Sort(Unique(join, stats=stats))


def test_figure3_sql_text(benchmark, emit):
    sql = benchmark.pedantic(
        path_to_sql,
        args=("following::node()/descendant::node()",),
        kwargs={"context_name": "c"},
        rounds=1,
        iterations=1,
    )
    emit("Figure 3 — SQL translation of (c)/following/descendant:", sql)
    assert "SELECT DISTINCT v2.pre" in sql


def test_figure3_plan_vs_staircase(benchmark, emit, index):
    doc, tree = index
    context = np.array([len(doc) // 2])
    c = int(context[0])

    def run_plan():
        stats = JoinStatistics()
        rows = list(figure3_plan(tree, c, int(doc.post[c]), stats))
        return rows, stats

    (rows, stats) = benchmark.pedantic(run_plan, rounds=1, iterations=1)
    plan_result = sorted({r[0] for r in rows})
    following = staircase_join(doc, context, "following", keep_attributes=True)
    expected = staircase_join(doc, following, "descendant", keep_attributes=True)
    assert plan_result == expected.tolist()
    emit(
        f"Figure 3 plan: {len(rows):,} result rows after unique; "
        f"{stats.duplicates_generated:,} duplicate rows removed; "
        f"{stats.nodes_scanned:,} index entries scanned "
        f"(staircase join touches {len(expected):,}+context and no duplicates)"
    )
    assert stats.duplicates_generated > 0  # why Figure 3 needs `unique`
