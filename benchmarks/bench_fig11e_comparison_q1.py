"""E7 — Figure 11 (e): performance comparison for Q1.

Three systems, as in the paper: the staircase join (name test after the
join), 'scj (early nametest)' (name-test pushdown), and the tree-unaware
SQL plan over a B+-tree ('IBM DB2 SQL', which also performs an early
name test via its concatenated key).  The shape to reproduce: pushdown
beats plain by roughly the paper's factor 3, and both staircase variants
beat the tree-unaware plan.
"""


from conftest import SWEEP_SIZES

from repro.engine.db2 import DocIndex, db2_path
from repro.harness.experiments import experiment3_comparison
from repro.harness.reporting import format_series
from repro.harness.workloads import Q1
from repro.xpath.evaluator import Evaluator

SERIES = ["staircase_seconds", "scj_pushdown_seconds", "db2_seconds"]


def test_figure11e_regeneration(benchmark, emit):
    rows = benchmark.pedantic(
        experiment3_comparison,
        args=(SWEEP_SIZES, Q1),
        kwargs={"repeats": 3},
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 11(e) — performance comparison, Q1",
        format_series(rows, "size_mb", SERIES),
    )
    for row in rows[1:]:  # skip the smallest (timer noise)
        assert row["scj_pushdown_seconds"] < row["staircase_seconds"]
        assert row["scj_pushdown_seconds"] < row["db2_seconds"]


def test_q1_staircase_benchmark(benchmark, bench_doc):
    evaluator = Evaluator(bench_doc, pushdown=False)
    benchmark(lambda: evaluator.evaluate(Q1))


def test_q1_pushdown_benchmark(benchmark, bench_doc):
    evaluator = Evaluator(bench_doc, pushdown=True)
    evaluator.fragments  # load-time work
    benchmark(lambda: evaluator.evaluate(Q1))


def test_q1_db2_benchmark(benchmark, bench_doc):
    index = DocIndex(bench_doc)
    benchmark(lambda: db2_path(index, Q1))
