"""Result-mode benchmarks: streaming count/exists vs materializing.

Two contracts guard the operator pipeline's terminal modes on the
sharded service (`repro.xpath.pipeline` + the executor's mode-aware
merge), both on the default (vectorized) engine:

* **exists ≥ 3×** — on a descendant-heavy XMark batch evaluated cold
  (result and prefix caches cleared per round, serial executor),
  ``mode="exists"`` answers at least three times faster than
  materializing the per-document rank arrays and truth-testing them:
  the pipeline leaves the shared prefix at its earliest chunkable
  frontier and stops at the first non-empty final frontier per shard;
* **count ≥ 1.5×** — in steady-state pooled serving (worker processes,
  warm prefix caches, result cache off), ``mode="count"`` beats
  materialize-then-``len`` by at least 1.5×: the final frontier is
  never converted to document-relative rank arrays, and the merge ships
  and sums integers across the process boundary instead of pickling
  rank payloads.

Value identity is asserted on every measured query against the seed
evaluator (a plain per-shard :class:`Evaluator`), on both engines —
materialized ranks byte-for-byte, counts against ``len``, existence
against truthiness.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_result_modes.py --benchmark-only
"""

import time

import pytest

from repro.encoding.collection import DocumentCollection
from repro.harness.reporting import format_table
from repro.harness.workloads import get_forest
from repro.service import QueryService, ShardedStore
from repro.xpath.evaluator import Evaluator

DOCUMENTS = 8
SHARDS = 4
SIZE_MB = 0.6
WORKERS = 2

#: Descendant-heavy paths whose final steps dominate the evaluation —
#: the shapes where a caller asking "any?" pays the most for full
#: materialization.
EXISTS_BATCH = (
    "//open_auction/bidder/increase",
    "//open_auction/bidder/personref",
    "//open_auction/bidder/date",
    "//person/profile/interest",
    "//person/profile/education",
    "//item/mailbox/mail",
    "//open_auction/annotation/description",
    "//item/location",
)

#: Large-result queries — the shapes where shipping rank arrays across
#: the pool's process boundary dominates a count-only answer.
COUNT_BATCH = (
    "/descendant::node()",
    "//open_auction/descendant::node()",
    "//text",
    "//listitem//text",
    "//item/description",
    "/descendant::listitem/descendant::text",
    "//keyword",
    "//item//keyword",
)

ENGINES = ("vectorized", "scalar")


@pytest.fixture(scope="module")
def modes_forest():
    return get_forest(DOCUMENTS, SIZE_MB)


@pytest.fixture(scope="module")
def modes_store(modes_forest, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("modes-bench") / "store")
    return ShardedStore.build(directory, modes_forest, shards=SHARDS)


def _best_batch_seconds(service, queries, mode, cold, rounds=5):
    best = float("inf")
    results = None
    for _ in range(rounds):
        service.result_cache.clear()
        if cold:
            state = service.executor._serial_state
            if state is not None:
                state.prefix_cache.clear()
        started = time.perf_counter()
        results = service.execute_batch(queries, use_cache=False, mode=mode)
        best = min(best, time.perf_counter() - started)
    return best, results


def _seed_reference(store, forest, query, engine):
    """The seed path: one plain Evaluator per shard collection."""
    trees = dict(forest)
    merged = {}
    for shard_id in store.shard_ids():
        names = store.shard_entry(shard_id)["documents"]
        collection = DocumentCollection([(n, trees[n]) for n in names])
        evaluator = Evaluator(collection.doc, engine=engine)
        pres = collection.evaluate(query, evaluator=evaluator)
        merged.update(collection.partition_relative(pres))
    return {name: merged[name] for name in store.document_names()}


def _assert_seed_identity(store, forest, queries):
    """Materialized == seed evaluator (both engines), counts == len,
    exists == truthiness — on every measured query."""
    with QueryService(store, workers=0) as service:
        for engine in ENGINES:
            materialized = service.execute_batch(
                queries, engine=engine, use_cache=False
            )
            counted = service.execute_batch(
                queries, engine=engine, use_cache=False, mode="count"
            )
            existing = service.execute_batch(
                queries, engine=engine, use_cache=False, mode="exists"
            )
            for query, mat, cnt, ex in zip(queries, materialized, counted, existing):
                reference = _seed_reference(store, forest, query, engine)
                assert list(mat.per_document) == list(reference), (engine, query)
                for name, expected in reference.items():
                    actual = mat.per_document[name]
                    assert actual.tobytes() == expected.tobytes(), (
                        engine, query, name,
                    )
                    assert cnt.per_document[name] == len(expected), (
                        engine, query, name,
                    )
                assert cnt.total == mat.total, (engine, query)
                assert ex.value is (mat.total > 0), (engine, query)


def _mode_rows(timings):
    reference = timings[0][1]
    return [
        {
            "mode": label,
            "batch_ms": f"{seconds * 1e3:.2f}",
            "vs_materialize": f"{reference / seconds:.2f}x",
        }
        for label, seconds in timings
    ]


# ----------------------------------------------------------------------
def test_exists_speedup(modes_store, modes_forest, emit, benchmark):
    """The ≥3× exists contract (cold execution, serial executor)."""
    rows = []
    outcome = {}

    def run():
        rows.clear()
        _assert_seed_identity(modes_store, modes_forest, EXISTS_BATCH)
        with QueryService(modes_store, workers=0) as service:
            service.execute_batch(EXISTS_BATCH, use_cache=False)  # warm mmaps
            mat_s, materialized = _best_batch_seconds(
                service, EXISTS_BATCH, "materialize", cold=True
            )
            ex_s, existing = _best_batch_seconds(
                service, EXISTS_BATCH, "exists", cold=True
            )
            for mat, ex in zip(materialized, existing):
                assert ex.value is (mat.total > 0), mat.query
        outcome["speedup"] = mat_s / ex_s
        rows.extend(_mode_rows((("materialize", mat_s), ("exists", ex_s))))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["contract_min_exists_speedup"] = round(
        outcome["speedup"], 2
    )
    emit(
        f"exists — {len(EXISTS_BATCH)} descendant-heavy queries, "
        f"{DOCUMENTS} documents / {SHARDS} shards, serial, cold caches, "
        "best of 5",
        format_table(rows),
        f"speedup: {outcome['speedup']:.2f}x (contract: >= 3.0x)",
    )
    assert outcome["speedup"] >= 3.0, (
        f"exists only {outcome['speedup']:.2f}x over materialize "
        "(contract: >= 3x)"
    )


# ----------------------------------------------------------------------
def test_count_speedup(modes_store, modes_forest, emit, benchmark):
    """The ≥1.5× count contract (steady-state pooled serving)."""
    rows = []
    outcome = {}

    def run():
        rows.clear()
        _assert_seed_identity(modes_store, modes_forest, COUNT_BATCH)
        with QueryService(modes_store, workers=WORKERS) as service:
            service.execute_batch(COUNT_BATCH, use_cache=False)  # warm pool
            mat_s, materialized = _best_batch_seconds(
                service, COUNT_BATCH, "materialize", cold=False
            )
            cnt_s, counted = _best_batch_seconds(
                service, COUNT_BATCH, "count", cold=False
            )
            for mat, cnt in zip(materialized, counted):
                assert cnt.total == mat.total, mat.query
                assert cnt.counts() == mat.counts(), mat.query
        outcome["speedup"] = mat_s / cnt_s
        rows.extend(_mode_rows((("materialize", mat_s), ("count", cnt_s))))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["contract_min_count_speedup"] = round(
        outcome["speedup"], 2
    )
    emit(
        f"count — {len(COUNT_BATCH)} large-result queries, "
        f"{DOCUMENTS} documents / {SHARDS} shards, {WORKERS} workers, "
        "warm prefix caches, result cache off, best of 5",
        format_table(rows),
        f"speedup: {outcome['speedup']:.2f}x (contract: >= 1.5x)",
    )
    assert outcome["speedup"] >= 1.5, (
        f"count only {outcome['speedup']:.2f}x over materialize "
        "(contract: >= 1.5x)"
    )
