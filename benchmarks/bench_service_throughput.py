"""Query-service throughput: shard fan-out × worker count × cache state.

Measures queries/sec of :class:`repro.service.QueryService` on a
multi-shard XMark batch, sweeping

* worker processes 0 (serial) → 4, cold result cache (the fan-out win),
* cold vs warm result cache at 4 workers (the caching win),
* serial scalar execution as the pre-service baseline — single
  collection path, per-node loops, nothing cached.

The summary asserts the service contract: **≥ 3×** queries/sec for
4 workers + warm caches over serial cold-cache scalar execution.
("Cold" means the service's plan/result caches are cleared; OS page
cache and worker pools are warmed before timing, as any long-running
service would be.)

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_throughput.py --benchmark-only
"""

import time

import pytest

from repro.harness.reporting import format_table
from repro.harness.workloads import get_forest
from repro.service import QueryService, ShardedStore

#: Documents in the store / shards it is split into.
DOCUMENTS = 8
SHARDS = 4
SIZE_MB = 0.11

#: The batch: descendant-heavy staircase territory plus predicate,
#: positional, union, and value-comparison queries.
BATCH = (
    "/descendant::open_auction/descendant::increase",
    "/descendant::description/descendant::keyword",
    "/descendant::item/descendant::text/descendant::keyword",
    "/descendant::increase/ancestor::bidder",
    "//open_auction[bidder]/seller",
    "//open_auction/bidder[1]/increase",
    "//seller | //buyer",
    '//item[starts-with(location, "A")]',
)

#: (label, engine, backend spec, warm-result-cache) configurations.
CONFIGS = (
    ("serial-cold-scalar", "scalar", "serial", False),
    ("w4-cold-scalar", "scalar", "pool:4", False),
    ("serial-cold-vectorized", "vectorized", "serial", False),
    ("w1-cold-vectorized", "vectorized", "pool:1", False),
    ("w2-cold-vectorized", "vectorized", "pool:2", False),
    ("w4-cold-vectorized", "vectorized", "pool:4", False),
    ("w4-warm-vectorized", "vectorized", "pool:4", True),
)


@pytest.fixture(scope="module")
def service_store(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("service-bench") / "store")
    return ShardedStore.build(directory, get_forest(DOCUMENTS, SIZE_MB), shards=SHARDS)


def _measure_qps(store, engine, backend, warm, rounds=3, batch=BATCH):
    """Best-of-``rounds`` queries/sec for one configuration."""
    with QueryService(store, engine=engine, backend=backend) as service:
        # Touch every shard once: spin up the workers, mmap the columns.
        service.execute_batch(batch, use_cache=warm)
        best = float("inf")
        for _ in range(rounds):
            if not warm:
                service.clear_caches()
            started = time.perf_counter()
            results = service.execute_batch(batch, use_cache=warm)
            best = min(best, time.perf_counter() - started)
        total = sum(r.total for r in results)
    return len(batch) / best, best, total


@pytest.mark.parametrize(
    "label,engine,backend,warm", CONFIGS, ids=[c[0] for c in CONFIGS]
)
def test_batch_config(benchmark, service_store, label, engine, backend, warm):
    """One pytest-benchmark line item per service configuration."""
    with QueryService(service_store, engine=engine, backend=backend) as service:
        service.execute_batch(BATCH, use_cache=warm)

        def run():
            if not warm:
                service.clear_caches()
            return service.execute_batch(BATCH, use_cache=warm)

        results = benchmark(run)
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["warm_cache"] = warm
    benchmark.extra_info["results"] = int(sum(r.total for r in results))


def test_throughput_summary(service_store, emit, benchmark):
    """Sweep every configuration once; assert the ≥ 3× service contract."""
    rows = []
    qps_by_label = {}

    def run():
        rows.clear()
        qps_by_label.clear()
        for label, engine, backend, warm in CONFIGS:
            qps, best_s, total = _measure_qps(service_store, engine, backend, warm)
            qps_by_label[label] = qps
            rows.append(
                {
                    "config": label,
                    "batch_ms": f"{best_s * 1e3:.2f}",
                    "queries_per_s": f"{qps:,.0f}",
                    "results": total,
                }
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    nodes = sum(entry["nodes"] for entry in service_store.describe()["shards"])
    emit(
        f"service throughput — {DOCUMENTS} documents / {SHARDS} shards, "
        f"{nodes:,} nodes, batch of {len(BATCH)} queries",
        format_table(rows),
    )
    contract = qps_by_label["w4-warm-vectorized"] / qps_by_label["serial-cold-scalar"]
    # The drift metric CI compares against the committed baseline must
    # be machine-portable: the warm-cache ratio above swings orders of
    # magnitude with CPU speed (a cache hit is ~constant; the cold
    # denominator isn't), so the recorded ratio is the *cold* engine
    # speedup, whose numerator and denominator scale together.
    cold_speedup = (
        qps_by_label["serial-cold-vectorized"] / qps_by_label["serial-cold-scalar"]
    )
    benchmark.extra_info["contract_min_cold_engine_speedup"] = round(
        cold_speedup, 2
    )
    assert contract >= 3.0, (
        "4 workers + warm caches below the 3x contract over serial "
        f"cold-cache scalar execution: {contract:.1f}x"
    )


# ----------------------------------------------------------------------
# Fabric: shared-memory result planes vs the pickling pool.
#
# The fabric's claim is about *transfer*, not compute: on a
# materialize-heavy batch the pool pickles every rank array through a
# pipe while the fabric writes them once into a shared-memory segment
# the parent maps zero-copy.  The batch below is deliberately
# rank-dense (broad node tests over every shard) so result bytes, not
# staircase work, dominate the worker→parent path.

#: Queries whose answers are a large fraction of the store's nodes.
RANK_BATCH = (
    "//*",
    "/descendant::node()",
    "//site//item",
    "//open_auction//node()",
    "//text//keyword",
    "//person",
    "//bidder",
    "//item//description//node()",
)

FABRIC_DOCUMENTS = 8
FABRIC_SIZE_MB = 0.22
FABRIC_WORKER_SWEEP = (1, 2, 4)


@pytest.fixture(scope="module")
def fabric_store(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("fabric-bench") / "store")
    return ShardedStore.build(
        directory, get_forest(FABRIC_DOCUMENTS, FABRIC_SIZE_MB), shards=SHARDS
    )


def test_fabric_worker_scaling(fabric_store, emit, benchmark):
    """Fabric 1→4 worker curve + the ≥ 1.5× contract over the pool.

    Both backends run the identical cold-cache materialize batch; at
    equal worker counts the staircase compute is the same, so the gap
    is the result plane: ``multiprocessing`` pipe + pickle for the
    pool, one shared-memory segment per worker for the fabric.
    """
    rows = []
    qps_by_label = {}

    def run():
        rows.clear()
        qps_by_label.clear()
        sweep = [(f"fabric:{n}", f"fabric:{n}") for n in FABRIC_WORKER_SWEEP]
        for label, spec in [("pool:4", "pool:4"), *sweep]:
            qps, best_s, total = _measure_qps(
                fabric_store, "vectorized", spec, warm=False, batch=RANK_BATCH
            )
            qps_by_label[label] = qps
            rows.append(
                {
                    "backend": label,
                    "batch_ms": f"{best_s * 1e3:.2f}",
                    "queries_per_s": f"{qps:,.0f}",
                    "result_mb": f"{total * 8 / 1e6:.2f}",
                }
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    nodes = sum(entry["nodes"] for entry in fabric_store.describe()["shards"])
    emit(
        f"fabric worker scaling — {FABRIC_DOCUMENTS} documents / {SHARDS} "
        f"shards, {nodes:,} nodes, rank-dense batch of {len(RANK_BATCH)}",
        format_table(rows),
    )
    speedup = qps_by_label["fabric:4"] / qps_by_label["pool:4"]
    benchmark.extra_info["contract_min_fabric_vs_pool_speedup"] = round(speedup, 2)
    for n in FABRIC_WORKER_SWEEP:
        benchmark.extra_info[f"qps_fabric_{n}"] = round(qps_by_label[f"fabric:{n}"], 1)
    assert speedup >= 1.5, (
        "fabric shared-memory transfer below the 1.5x contract over the "
        f"pickling pool on a rank-dense batch: {speedup:.2f}x"
    )
