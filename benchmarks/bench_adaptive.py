"""Adaptive-loop benchmarks: adversarial re-planning and observation cost.

Two contracts guard the runtime-feedback loop (`repro.feedback` plus the
planner's selectivity blending):

* **adaptive ≥ 1.5×** — on a workload built to defeat static costing (a
  ``dictionary`` section inflates ``count(name)``, so the cost model
  orders the only selective predicate — a value comparison — *last*),
  steady-state queries/sec after the loop has absorbed a couple of
  sampled drives is at least 1.5× the static planner on the same store;
* **observe ≤ 1.02×** — with feedback enabled but no batch sampled (the
  interval never ticks over), the per-batch bookkeeping and the
  kernels' observer ``None``-checks cost at most 2 % against a
  feedback-off service.

Identity of static and adaptive results is asserted on every measured
query (the hypothesis-backed equivalence lives in ``tests/test_feedback.py``).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_adaptive.py --benchmark-only
"""

import os
import time

import pytest

from repro.harness.reporting import format_table
from repro.service import QueryService, ShardedStore
from repro.xmltree.model import element, text

DOCUMENTS = 6
SHARDS = 3
ITEMS_PER_DOCUMENT = 200
#: ``<name>`` entries per document *outside* the items — enough to push
#: the value predicate's static cost well past the cheap exists
#: predicates (so static ordering runs it last), small enough that one
#: observed generation already ranks it first.
DICTIONARY_ENTRIES = 150

#: Every item passes the three exists predicates; exactly one item per
#: document carries the needle.  Static costing orders by tag count —
#: cheapest (useless) filters first, the selective comparison last.
ADVERSARIAL_QUERY = '//item[status][avail][onsale][name="needle"]'

#: The overhead arm: an ordinary mixed batch, no needle anywhere.
OVERHEAD_BATCH = (
    "//item/name",
    "//item[status]",
    "//item[avail][onsale]",
    "//dictionary/name",
    "//item[2]",
    "//name | //status",
)


def _document(index):
    items = []
    for i in range(ITEMS_PER_DOCUMENT):
        name = "needle" if i == index else f"item{i}"
        items.append(
            element(
                "item",
                element("status", text("ok")),
                element("avail", text("yes")),
                element("onsale", text("no")),
                element("name", text(name)),
            )
        )
    dictionary = element(
        "dictionary",
        *[element("name", text(f"w{j}")) for j in range(DICTIONARY_ENTRIES)],
    )
    return element("site", element("items", *items), dictionary)


@pytest.fixture(scope="module")
def adversarial_store(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("adaptive-bench") / "store")
    forest = [(f"d{i}", _document(i)) for i in range(DOCUMENTS)]
    return ShardedStore.build(directory, forest, shards=SHARDS)


def _best_query_seconds(service, query, rounds=7):
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = service.execute(query, engine="scalar", use_cache=False)
        best = min(best, time.perf_counter() - started)
    return best, result


# ----------------------------------------------------------------------
def test_adversarial_workload_speedup(adversarial_store, emit, benchmark):
    """The ≥1.5× contract: feedback re-orders the mis-costed predicates."""
    rows = []
    outcome = {}

    def run():
        rows.clear()
        with QueryService(
            adversarial_store, backend="serial", engine="scalar", feedback=False
        ) as static:
            static.execute(ADVERSARIAL_QUERY, use_cache=False)  # warm mmaps
            static_s, static_result = _best_query_seconds(
                static, ADVERSARIAL_QUERY
            )
            static_order = [
                str(p)
                for p in static.explain(ADVERSARIAL_QUERY).steps[0].step.predicates
            ]
        with QueryService(
            adversarial_store, backend="serial", engine="scalar"
        ) as adaptive:
            # Learn: two analyzed drives absorb the observed
            # selectivities and bump the feedback generation.
            for _ in range(2):
                adaptive.analyze(ADVERSARIAL_QUERY, engine="scalar")
            adaptive_order = [
                str(p)
                for p in adaptive.explain(
                    ADVERSARIAL_QUERY, engine="scalar"
                ).steps[0].step.predicates
            ]
            adaptive_s, adaptive_result = _best_query_seconds(
                adaptive, ADVERSARIAL_QUERY
            )
        assert static_result.counts() == adaptive_result.counts()
        assert static_order[-1] == adaptive_order[0], (
            "feedback did not move the selective comparison first: "
            f"{adaptive_order}"
        )
        outcome["speedup"] = static_s / adaptive_s
        for label, seconds, order in (
            ("static", static_s, static_order),
            ("adaptive", adaptive_s, adaptive_order),
        ):
            rows.append(
                {
                    "planner": label,
                    "query_ms": f"{seconds * 1e3:.2f}",
                    "queries_per_s": f"{1.0 / seconds:.1f}",
                    "first_predicate": order[0],
                }
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["contract_min_adaptive_speedup"] = round(
        outcome["speedup"], 2
    )
    emit(
        f"adversarial predicate order — {DOCUMENTS} documents × "
        f"{ITEMS_PER_DOCUMENT} items, dictionary inflates count(name), "
        "scalar engine, steady state after 2 analyzed drives",
        format_table(rows),
        f"speedup: {outcome['speedup']:.2f}x (contract: >= 1.5x)",
    )
    assert outcome["speedup"] >= 1.5, (
        f"adaptive planner only {outcome['speedup']:.2f}x over static "
        "(contract: >= 1.5x)"
    )


# ----------------------------------------------------------------------
def test_observation_overhead(adversarial_store, emit, benchmark):
    """The ≤1.02× contract: an unused feedback loop is (nearly) free."""
    rows = []
    outcome = {}

    def best_batch(service, rounds=9):
        best = float("inf")
        for _ in range(rounds):
            service.result_cache.clear()
            started = time.perf_counter()
            service.execute_batch(OVERHEAD_BATCH, use_cache=False)
            best = min(best, time.perf_counter() - started)
        return best

    def run():
        rows.clear()
        # An interval no bench-sized run ever reaches: feedback stays
        # enabled (ticks, None-checks) but no batch is ever observed.
        os.environ["REPRO_FEEDBACK_SAMPLE"] = "1000000000"
        try:
            with QueryService(
                adversarial_store, backend="serial", feedback=False
            ) as off, QueryService(
                adversarial_store, backend="serial"
            ) as on:
                off.execute_batch(OVERHEAD_BATCH, use_cache=False)  # warm
                on.execute_batch(OVERHEAD_BATCH, use_cache=False)
                # Interleaved best-of-9 so machine noise hits both arms.
                off_s, on_s = float("inf"), float("inf")
                for _ in range(3):
                    off_s = min(off_s, best_batch(off, rounds=3))
                    on_s = min(on_s, best_batch(on, rounds=3))
        finally:
            del os.environ["REPRO_FEEDBACK_SAMPLE"]
        outcome["ratio"] = on_s / off_s
        for label, seconds in (("feedback-off", off_s), ("feedback-on", on_s)):
            rows.append(
                {
                    "config": label,
                    "batch_ms": f"{seconds * 1e3:.2f}",
                    "queries_per_s": f"{len(OVERHEAD_BATCH) / seconds:,.0f}",
                }
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["contract_max_observe_overhead"] = round(
        outcome["ratio"], 3
    )
    emit(
        f"observation overhead — {len(OVERHEAD_BATCH)}-query batch, "
        "feedback enabled but never sampled (best of 9, interleaved)",
        format_table(rows),
        f"on/off ratio: {outcome['ratio']:.3f} (contract: <= 1.02)",
    )
    assert outcome["ratio"] <= 1.02, (
        f"unused observation layer costs {outcome['ratio']:.3f}x "
        "(contract: <= 1.02x)"
    )
