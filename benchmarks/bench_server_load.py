"""Server load benchmarks: coalescing throughput + overload backpressure.

Two contracts guard the async front door (:mod:`repro.server`), both
driven by a closed-loop load generator — real HTTP clients on
persistent connections, each issuing its next request only after the
previous answer arrives:

* **coalescing ≥ 2×** — with a ~4 ms coalescing window, aggregate
  throughput over a shared-prefix query pool is at least twice the
  one-request-per-call baseline (window 0).  The speedup is
  architectural, not scheduling luck: coalesced batches reach
  ``execute_batch``'s operator-prefix trie, which evaluates the shared
  ``//open_auction/bidder`` / ``//person/profile`` prefixes once per
  batch, while per-request calls take the single-task path that never
  sees the trie.
* **bounded p99 under overload** — at 4× sustained overload (16
  closed-loop clients against an admission bound of 4) the server sheds
  with **503** + ``Retry-After`` instead of queueing, so the p99 of
  *admitted* requests does not grow as the burst persists: the
  second-half p99 stays within 3× of the first-half p99, and shed
  responses are counted to prove backpressure actually engaged.

Every 200 response's total is checked against a direct
``QueryService.execute`` answer, so the throughput being bought never
costs correctness.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_server_load.py --benchmark-only
"""

import contextlib
import http.client
import json
import threading
import time

import pytest

from repro.harness.reporting import format_table
from repro.harness.workloads import get_forest
from repro.server import ServerConfig, ThreadedServer
from repro.service import QueryService, ShardedStore

DOCUMENTS = 6
SIZE_MB = 0.3
SHARDS = 2

#: Shared-prefix pool: two operator-prefix families the coalescer's
#: batches hand to the executor trie.  Concurrent clients start at
#: different offsets, so a coalesced batch holds *distinct* queries
#: sharing a prefix — the case the trie accelerates.
POOL = (
    "//open_auction/bidder/increase",
    "//open_auction/bidder/personref",
    "//open_auction/bidder/date",
    "//open_auction/bidder/time",
    "//person/profile/interest",
    "//person/profile/education",
    "//person/profile/gender",
    "//person/profile/business",
)

CLIENTS = 8
REQUESTS_EACH = 30

OVERLOAD_CLIENTS = 16
OVERLOAD_LIMIT = 4  # 16 closed-loop clients vs bound 4 = 4x overload
OVERLOAD_REQUESTS_EACH = 40


@pytest.fixture(scope="module")
def load_store_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("server-load") / "store")
    ShardedStore.build(directory, get_forest(DOCUMENTS, SIZE_MB), shards=SHARDS)
    return directory


@pytest.fixture(scope="module")
def expected_totals(load_store_dir):
    """Ground truth per query, from a direct (no-network) service."""
    with QueryService(ShardedStore.open(load_store_dir), workers=0) as service:
        return {
            query: service.execute(query, mode="count", use_cache=False).total
            for query in POOL
        }


@contextlib.contextmanager
def load_server(store_dir, **config_kw):
    """A fresh service + server so phases never share caches."""
    service = QueryService(ShardedStore.open(store_dir), workers=0)
    server = ThreadedServer(
        service, ServerConfig(port=0, **config_kw)
    ).start()
    try:
        yield server
    finally:
        server.stop()
        service.close()


def run_closed_loop(port, clients, requests_each, expected):
    """Drive ``clients`` closed-loop workers; return samples + wall time.

    Each sample is ``(completed_at, status, latency_s)``.  Workers cycle
    the pool from distinct offsets, pause briefly on a 503 (honouring
    backpressure the way a well-behaved client would, without waiting
    out the full advisory ``Retry-After``), and verify every 200 total.
    """
    samples = [[] for _ in range(clients)]
    errors = []
    barrier = threading.Barrier(clients + 1)

    def worker(idx):
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        try:
            barrier.wait()
            for k in range(requests_each):
                query = POOL[(idx + k) % len(POOL)]
                body = json.dumps(
                    {"query": query, "mode": "count", "use_cache": False}
                )
                started = time.perf_counter()
                conn.request(
                    "POST", "/query", body=body,
                    headers={"X-Client-Id": f"client-{idx}"},
                )
                response = conn.getresponse()
                payload = json.loads(response.read())
                now = time.perf_counter()
                samples[idx].append((now, response.status, now - started))
                if response.status == 200:
                    if payload["total"] != expected[query]:
                        raise AssertionError(
                            f"{query}: served {payload['total']}, "
                            f"expected {expected[query]}"
                        )
                elif response.status == 503:
                    time.sleep(0.002)
                else:
                    raise AssertionError(
                        f"unexpected status {response.status}: {payload}"
                    )
        except Exception as error:  # pragma: no cover - failure reporting
            errors.append(error)
        finally:
            conn.close()

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    started = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    assert not errors, errors[0]
    flat = sorted(s for per_client in samples for s in per_client)
    return flat, elapsed


def percentile(values, p):
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(1, int(round(len(ordered) * p / 100.0)))
    return ordered[rank - 1]


def summarize(samples, elapsed):
    ok = [latency for _, status, latency in samples if status == 200]
    shed = sum(1 for _, status, _ in samples if status == 503)
    return {
        "ok": len(ok),
        "shed": shed,
        "qps": len(ok) / elapsed if elapsed else 0.0,
        "p50_ms": percentile(ok, 50) * 1e3,
        "p99_ms": percentile(ok, 99) * 1e3,
    }


def server_stats(port):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", "/stats")
        return json.loads(conn.getresponse().read())
    finally:
        conn.close()


# ----------------------------------------------------------------------
def test_coalescing_throughput(load_store_dir, expected_totals, emit, benchmark):
    """The ≥2× coalesced-throughput contract."""
    rows = []
    outcome = {}

    def run():
        rows.clear()
        phases = (
            ("per-request", {"coalesce_window_s": 0.0}),
            ("coalesced", {"coalesce_window_s": 0.004, "max_batch": 64}),
        )
        for label, config in phases:
            with load_server(load_store_dir, **config) as server:
                # one warm pass per phase (mmaps, parser) before timing
                run_closed_loop(server.port, 2, len(POOL), expected_totals)
                samples, elapsed = run_closed_loop(
                    server.port, CLIENTS, REQUESTS_EACH, expected_totals
                )
                summary = summarize(samples, elapsed)
                summary["largest_batch"] = server_stats(server.port)[
                    "server"]["coalescer"]["largest_batch"]
                outcome[label] = summary
                rows.append({
                    "phase": label,
                    "qps": f"{summary['qps']:.0f}",
                    "p50_ms": f"{summary['p50_ms']:.2f}",
                    "p99_ms": f"{summary['p99_ms']:.2f}",
                    "largest_batch": summary["largest_batch"],
                })
        outcome["speedup"] = (
            outcome["coalesced"]["qps"] / outcome["per-request"]["qps"]
        )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["contract_min_coalesce_speedup"] = round(
        outcome["speedup"], 2
    )
    benchmark.extra_info["per_request_qps"] = round(
        outcome["per-request"]["qps"], 1
    )
    benchmark.extra_info["coalesced_qps"] = round(
        outcome["coalesced"]["qps"], 1
    )
    emit(
        f"server throughput — {CLIENTS} closed-loop clients x "
        f"{REQUESTS_EACH} requests, {len(POOL)} shared-prefix queries, "
        f"{DOCUMENTS} documents / {SHARDS} shards",
        format_table(rows),
        f"coalescing speedup: {outcome['speedup']:.2f}x (contract: >= 2.0x)",
    )
    assert outcome["coalesced"]["largest_batch"] > 1, (
        "coalescer never merged concurrent requests"
    )
    assert outcome["speedup"] >= 2.0, (
        f"coalescing only {outcome['speedup']:.2f}x over per-request "
        "(contract: >= 2x)"
    )


# ----------------------------------------------------------------------
def test_overload_backpressure(load_store_dir, expected_totals, emit, benchmark):
    """The bounded-p99-under-overload contract."""
    rows = []
    outcome = {}

    def run():
        rows.clear()
        with load_server(
            load_store_dir,
            coalesce_window_s=0.004,
            max_batch=64,
            queue_limit=OVERLOAD_LIMIT,
            retry_after_s=0.05,
        ) as server:
            run_closed_loop(server.port, 2, len(POOL), expected_totals)
            samples, elapsed = run_closed_loop(
                server.port, OVERLOAD_CLIENTS, OVERLOAD_REQUESTS_EACH,
                expected_totals,
            )
            stats = server_stats(server.port)
        summary = summarize(samples, elapsed)
        ok = [(at, latency) for at, status, latency in samples if status == 200]
        half = len(ok) // 2
        early = percentile([latency for _, latency in ok[:half]], 99)
        late = percentile([latency for _, latency in ok[half:]], 99)
        outcome.update(summary)
        outcome["p99_growth"] = late / early if early else 1.0
        outcome["queue_full_sheds"] = stats["server"]["shed"]["queue_full"]
        for label, p99 in (("first half", early), ("second half", late)):
            rows.append({
                "window": label,
                "p99_ms": f"{p99 * 1e3:.2f}",
            })
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    # Growth below 1.0 is measurement noise, not headroom — clamp so the
    # committed baseline doesn't demand impossible luck from CI runners.
    benchmark.extra_info["contract_max_overload_p99_growth"] = round(
        max(1.0, outcome["p99_growth"]), 2
    )
    benchmark.extra_info["overload_shed"] = outcome["shed"]
    benchmark.extra_info["overload_ok"] = outcome["ok"]
    emit(
        f"overload — {OVERLOAD_CLIENTS} closed-loop clients vs admission "
        f"bound {OVERLOAD_LIMIT} (4x), {OVERLOAD_REQUESTS_EACH} requests "
        "each",
        format_table(rows),
        f"served {outcome['ok']}, shed {outcome['shed']} (503), "
        f"p99 growth {outcome['p99_growth']:.2f}x (contract: <= 3x)",
    )
    assert outcome["shed"] > 0, (
        "4x overload produced no 503s — the admission bound never engaged"
    )
    assert outcome["queue_full_sheds"] == outcome["shed"]
    assert outcome["p99_growth"] <= 3.0, (
        f"admitted-request p99 grew {outcome['p99_growth']:.2f}x under "
        "sustained overload (contract: bounded, <= 3x)"
    )
