"""Shared benchmark fixtures and output helpers.

Benchmarks print the regenerated tables/series through ``emit`` (capture
is temporarily disabled so the rows appear in normal ``pytest
benchmarks/ --benchmark-only`` runs, mirroring how the paper's figures
would be read off).
"""

from __future__ import annotations

import pytest

from repro.harness.workloads import get_document

#: Size ladder used by the sweep benchmarks (nominal MB; the paper used
#: 1.1–1111 MB — see workloads.DEFAULT_SIZES for the scaling rationale).
SWEEP_SIZES = (0.11, 0.55, 1.1)

#: Size used by single-document benchmarks.
BENCH_SIZE = 1.1


@pytest.fixture(scope="session")
def bench_doc():
    """The default benchmark document (~55k nodes)."""
    return get_document(BENCH_SIZE)


@pytest.fixture
def emit(capsys):
    """Print experiment output past pytest's capture."""

    def _emit(*chunks):
        with capsys.disabled():
            print()
            for chunk in chunks:
                print(chunk)

    return _emit
