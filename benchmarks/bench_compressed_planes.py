"""Compressed-plane benchmark: bytes on disk, warm speed, out-of-core.

Three contracts back the compressed shard format (FORMAT_VERSION 3:
dictionary-encoded strings + FOR/delta bit-packed vectors in page
blocks), recorded in ``BENCH_compressed.json`` and held against drift by
``compare_baselines.py``:

* **bytes on disk** — a packed store is **≥ 2×** smaller than the same
  forest saved eagerly (v2);
* **warm queries** — with the default ``decode_cache="full"`` open mode
  (columns decoded once at load, then dense), the full query suite runs
  at most **1.5×** slower than the uncompressed store, on both engines;
* **out of core** — under an ``RLIMIT_AS`` address budget that a single
  flat allocation of the plane's decoded bytes cannot fit (proved by a
  ``MemoryError``), the paged open mode (``decode_cache="blocks"``)
  still answers the whole query suite, with identical results to the
  uncapped run.  The budget headroom is several times smaller than the
  collection's decoded size, so the run is genuinely bigger than RAM.

The out-of-core leg runs in a subprocess (this file invoked with
``--out-of-core-worker``) so the address-space cap cannot leak into the
pytest process.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_compressed_planes.py --benchmark-only
"""

import json
import os
import subprocess
import sys
import time

import pytest

#: Forest for the bytes + out-of-core legs (~440k nodes, ~20 MB decoded).
DOCUMENTS = 8
SIZE_MB = 1.1
SHARDS = 4

#: Smaller forest for the warm-timing leg (both engines × both stores).
WARM_DOCUMENTS = 4
WARM_SIZE_MB = 0.55
WARM_SHARDS = 2

#: Address-space budget above the warmed worker's footprint.  The
#: collection's decoded bytes must be ≥ 2× this, and a flat allocation
#: of them must fail under the cap.
HEADROOM_BYTES = 8 << 20

MIN_BYTES_REDUCTION = 2.0
MAX_WARM_SLOWDOWN = 1.5

ENGINES = ("scalar", "vectorized")


def _build_pair(tmp_path_factory, name, documents, size_mb, shards):
    from repro.harness.workloads import get_forest
    from repro.service import ShardedStore

    forest = get_forest(documents, size_mb)
    root = tmp_path_factory.mktemp(name)
    plain = ShardedStore.build(
        str(root / "plain"), forest, shards=shards, compression="none"
    )
    packed = ShardedStore.build(
        str(root / "packed"), forest, shards=shards, compression="packed"
    )
    return plain, packed


@pytest.fixture(scope="module")
def big_stores(tmp_path_factory):
    return _build_pair(
        tmp_path_factory, "compressed-big", DOCUMENTS, SIZE_MB, SHARDS
    )


@pytest.fixture(scope="module")
def warm_stores(tmp_path_factory):
    return _build_pair(
        tmp_path_factory, "compressed-warm", WARM_DOCUMENTS, WARM_SIZE_MB,
        WARM_SHARDS,
    )


def test_bytes_on_disk_contract(big_stores, emit, benchmark):
    """Packed shards must be ≥ 2× smaller on disk than eager (v2) ones."""
    from repro.harness.reporting import format_table

    plain, packed = big_stores
    report = {}

    def run():
        report["plain"] = plain.info()
        report["packed"] = packed.info()
        return report

    benchmark.pedantic(run, rounds=1, iterations=1)
    plain_disk = report["plain"]["total_bytes_on_disk"]
    packed_disk = report["packed"]["total_bytes_on_disk"]
    reduction = plain_disk / packed_disk
    rows = [
        {
            "shard": str(entry["id"]),
            "eager_bytes": f"{plain_entry['bytes_on_disk']:,}",
            "packed_bytes": f"{entry['bytes_on_disk']:,}",
            "ratio": f"{plain_entry['bytes_on_disk'] / entry['bytes_on_disk']:.2f}x",
        }
        for entry, plain_entry in zip(
            report["packed"]["shards"], report["plain"]["shards"]
        )
    ]
    rows.append(
        {
            "shard": "total",
            "eager_bytes": f"{plain_disk:,}",
            "packed_bytes": f"{packed_disk:,}",
            "ratio": f"{reduction:.2f}x",
        }
    )
    emit(
        f"compressed planes — {DOCUMENTS} documents / {SHARDS} shards, "
        f"bytes on disk (v2 eager vs v3 packed)",
        format_table(rows),
    )
    benchmark.extra_info["eager_bytes"] = plain_disk
    benchmark.extra_info["packed_bytes"] = packed_disk
    benchmark.extra_info["contract_min_bytes_reduction"] = round(reduction, 2)
    assert reduction >= MIN_BYTES_REDUCTION, (
        f"packed store only {reduction:.2f}x smaller than eager "
        f"(contract: >= {MIN_BYTES_REDUCTION}x)"
    )


def _suite_seconds(store, queries, engine, rounds=3):
    from repro.service import QueryService

    with QueryService(store, backend="serial") as service:
        service.execute_batch(queries, engine=engine, use_cache=False)  # warm
        best = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            service.execute_batch(queries, engine=engine, use_cache=False)
            best = min(best, time.perf_counter() - started)
    return best


@pytest.mark.parametrize("engine", ENGINES)
def test_warm_query_slowdown_contract(warm_stores, engine, emit, benchmark):
    """Warm suite over a packed store: ≤ 1.5× the uncompressed time."""
    from repro.harness.queries import QUERY_SUITE
    from repro.harness.reporting import format_table

    plain, packed = warm_stores
    queries = tuple(q.xpath for q in QUERY_SUITE)
    timings = {}

    def run():
        timings["plain"] = _suite_seconds(plain, queries, engine)
        timings["packed"] = _suite_seconds(packed, queries, engine)
        return timings

    benchmark.pedantic(run, rounds=1, iterations=1)
    slowdown = timings["packed"] / timings["plain"]
    emit(
        f"compressed planes — warm query suite ({len(queries)} queries, "
        f"{engine} engine)",
        format_table(
            [
                {"store": "eager (v2)", "best_ms": f"{timings['plain'] * 1e3:.2f}"},
                {"store": "packed (v3)", "best_ms": f"{timings['packed'] * 1e3:.2f}"},
                {"store": "slowdown", "best_ms": f"{slowdown:.2f}x"},
            ]
        ),
    )
    benchmark.extra_info["plain_ms"] = timings["plain"] * 1e3
    benchmark.extra_info["packed_ms"] = timings["packed"] * 1e3
    benchmark.extra_info[f"contract_max_warm_slowdown_{engine}"] = round(
        slowdown, 3
    )
    assert slowdown <= MAX_WARM_SLOWDOWN, (
        f"warm packed suite {slowdown:.2f}x slower than eager on "
        f"{engine} (contract: <= {MAX_WARM_SLOWDOWN}x)"
    )


def test_out_of_core_rlimit(big_stores, emit, benchmark):
    """Queries complete under an address budget the decoded plane exceeds."""
    from repro.harness.reporting import format_table

    _, packed = big_stores
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    report = {}

    def run():
        proc = subprocess.run(
            [sys.executable, __file__, "--out-of-core-worker", packed.directory],
            capture_output=True,
            text=True,
            env=env,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        report.update(json.loads(proc.stdout))
        return report

    benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = report["logical_bytes"] / HEADROOM_BYTES
    emit(
        "compressed planes — out-of-core run under RLIMIT_AS",
        format_table(
            [
                {"metric": "decoded plane bytes", "value": f"{report['logical_bytes']:,}"},
                {"metric": "address budget headroom", "value": f"{HEADROOM_BYTES:,}"},
                {"metric": "plane / headroom", "value": f"{ratio:.2f}x"},
                {"metric": "flat allocation", "value": "MemoryError (as required)"},
                {"metric": "suite under cap", "value": "identical results"},
                {"metric": "page decode events / page blocks", "value": f"{report['blocks_decoded']:,} / {report['pages']:,}"},
            ]
        ),
    )
    benchmark.extra_info["logical_bytes"] = report["logical_bytes"]
    benchmark.extra_info["headroom_bytes"] = HEADROOM_BYTES
    benchmark.extra_info["blocks_decoded"] = report["blocks_decoded"]
    benchmark.extra_info["pages"] = report["pages"]
    benchmark.extra_info["contract_min_out_of_core_ratio"] = round(ratio, 2)
    assert report["memory_error_on_flat_alloc"], (
        "a flat allocation of the decoded plane fit inside the address "
        "budget — the run was not actually out of core"
    )
    assert report["suite_matches_uncapped"], "capped suite results diverged"
    assert ratio >= 2.0, (
        f"collection only {ratio:.2f}x the address budget (need >= 2x)"
    )


# ----------------------------------------------------------------------
# Out-of-core worker (subprocess entry point)
# ----------------------------------------------------------------------
def _vm_bytes() -> int:
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith("VmSize:"):
                return int(line.split()[1]) * 1024
    raise RuntimeError("VmSize not found")


def _out_of_core_worker(directory: str) -> None:
    import resource

    import numpy as np

    from repro.harness.queries import QUERY_SUITE
    from repro.service import ShardedStore
    from repro.xpath.evaluator import Evaluator

    store = ShardedStore.open(directory, decode_cache="blocks")
    logical = int(store.info()["total_logical_bytes"])

    def run_suite():
        counts = []
        for query in QUERY_SUITE:
            total = 0
            for shard_id in store.shard_ids():
                collection = store.collection(shard_id)
                evaluator = Evaluator(collection.doc, engine="vectorized")
                total += int(
                    collection.evaluate(query.xpath, evaluator=evaluator).shape[0]
                )
            counts.append(total)
        return counts

    uncapped = run_suite()
    limit = _vm_bytes() + HEADROOM_BYTES
    resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
    try:
        np.zeros(logical, dtype=np.uint8)
        memory_error = False
    except MemoryError:
        memory_error = True
    capped = run_suite()
    blocks = pages = 0
    for shard_id in store.shard_ids():
        plane = store.collection(shard_id).doc.plane
        totals = plane.totals()
        blocks += totals["blocks_decoded"]
        pages += totals["pages"]
    print(
        json.dumps(
            {
                "logical_bytes": logical,
                "limit_bytes": limit,
                "memory_error_on_flat_alloc": memory_error,
                "suite_matches_uncapped": capped == uncapped,
                "result_counts": capped,
                "blocks_decoded": blocks,
                "pages": pages,
            }
        )
    )


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--out-of-core-worker":
        _out_of_core_worker(sys.argv[2])
    else:  # pragma: no cover - defensive
        raise SystemExit(f"usage: {sys.argv[0]} --out-of-core-worker STORE_DIR")
