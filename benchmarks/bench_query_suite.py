"""Query-suite benchmark: the XMark-inspired workload end to end.

Times every suite query through the staircase evaluator (pushdown on —
the fast configuration of Experiment 3) and prints a per-query summary
with result cardinalities, so regressions in any XPath feature path show
up as a line item.
"""

import pytest

from repro.harness.queries import QUERY_SUITE
from repro.harness.reporting import format_table
from repro.xpath.evaluator import Evaluator


@pytest.fixture(scope="module")
def evaluator(bench_doc):
    e = Evaluator(bench_doc, pushdown=True)
    e.fragments  # load-time work
    return e


@pytest.mark.parametrize("query", QUERY_SUITE, ids=[q.key for q in QUERY_SUITE])
def test_suite_query(benchmark, evaluator, query):
    result = benchmark(lambda: evaluator.evaluate(query.xpath))
    benchmark.extra_info["results"] = int(len(result))
    benchmark.extra_info["features"] = ", ".join(query.features)


def test_suite_summary(benchmark, bench_doc, emit):
    evaluator = Evaluator(bench_doc, pushdown=True)
    evaluator.fragments

    def run_all():
        rows = []
        for query in QUERY_SUITE:
            result = evaluator.evaluate(query.xpath)
            rows.append(
                {
                    "query": query.key,
                    "results": len(result),
                    "xpath": query.xpath,
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        f"XMark-inspired query suite on {len(bench_doc):,} nodes:",
        format_table(rows, ["query", "results", "xpath"]),
    )
    assert all(row["results"] >= 0 for row in rows)
