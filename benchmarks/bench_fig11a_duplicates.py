"""E3 — Figure 11 (a): avoiding duplicates (Q2's ancestor step).

The paper plots, per document size, the number of result nodes the naive
per-context evaluation would produce vs the staircase join's
duplicate-free output; "the staircase join saves generation and
subsequent removal of the about 75 % duplicates".
"""

import numpy as np
from conftest import SWEEP_SIZES

from repro.baselines.naive import naive_step_with_duplicates
from repro.core.staircase import SkipMode, staircase_join
from repro.harness.experiments import experiment1_duplicates
from repro.harness.reporting import format_series

SERIES = ["naive_produced", "staircase_result", "duplicates_avoided"]


def test_figure11a_regeneration(benchmark, emit):
    rows = benchmark.pedantic(
        experiment1_duplicates, args=(SWEEP_SIZES,), rounds=1, iterations=1
    )
    emit(
        "Figure 11(a) — duplicates avoided (Q2 ancestor step, log-scale axes)",
        format_series(rows, "size_mb", SERIES),
        f"duplicate ratios: {[round(r['duplicate_ratio'], 3) for r in rows]}"
        "  (paper: ≈ 0.75)",
    )
    for row in rows:
        # who wins and by what shape: the staircase join's output is the
        # naive output minus a majority of duplicates
        assert 0.5 <= row["duplicate_ratio"] <= 0.85
        assert row["staircase_result"] < row["naive_produced"]


def test_naive_ancestor_step_benchmark(benchmark, bench_doc):
    context = bench_doc.pres_with_tag("increase")
    produced = benchmark(
        lambda: naive_step_with_duplicates(bench_doc, context, "ancestor")
    )
    benchmark.extra_info["produced"] = int(len(produced))


def test_staircase_ancestor_step_benchmark(benchmark, bench_doc):
    context = bench_doc.pres_with_tag("increase")
    result = benchmark(
        lambda: staircase_join(bench_doc, context, "ancestor", SkipMode.ESTIMATE)
    )
    benchmark.extra_info["result"] = int(len(result))
    assert np.all(np.diff(result) > 0)  # document order, no duplicates
