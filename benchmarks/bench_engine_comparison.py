"""Engine comparison: scalar loops vs the vectorised bulk engine.

End-to-end wall-clock of ``Evaluator(engine="scalar")`` against
``Evaluator(engine="vectorized")`` on XMark documents — the headline
number for the bulk execution engine.  Two views:

* per-query pytest-benchmark entries over the full workload suite, one
  line per (query, engine), so regressions in either engine show up as a
  line item;
* a summary table (printed through ``emit``) with per-query speedups,
  which also *asserts* the engine contract: ≥ 5× on the descendant-heavy
  queries at the benchmark scale factor (≥ 0.1), and identical node
  sequences everywhere.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_comparison.py --benchmark-only
"""

import time

import pytest

from repro.harness.queries import QUERY_SUITE
from repro.harness.reporting import format_table
from repro.xpath.evaluator import Evaluator

#: Queries dominated by relative descendant/ancestor steps — the
#: staircase join's territory, where the bulk kernels replace the
#: per-node Python loop wholesale.  The summary asserts ≥ 5× on these.
DESCENDANT_HEAVY = (
    "/descendant::open_auction/descendant::increase",
    "/descendant::description/descendant::keyword",
    "/descendant::item/descendant::text/descendant::keyword",
    "/descendant::increase/ancestor::bidder",
)

ENGINES = ("scalar", "vectorized")


@pytest.fixture(scope="module", params=ENGINES)
def engine_evaluator(request, bench_doc):
    return request.param, Evaluator(bench_doc, engine=request.param)


@pytest.mark.parametrize("query", QUERY_SUITE, ids=[q.key for q in QUERY_SUITE])
def test_suite_query(benchmark, engine_evaluator, query):
    engine, evaluator = engine_evaluator
    result = benchmark(lambda: evaluator.evaluate(query.xpath))
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["results"] = int(len(result))


def _best_of(evaluator, xpath, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        result = evaluator.evaluate(xpath)
        best = min(best, time.perf_counter() - started)
    return best, result


def test_engine_summary(bench_doc, emit, benchmark):
    scalar = Evaluator(bench_doc, engine="scalar")
    bulk = Evaluator(bench_doc, engine="vectorized")
    rows = []
    speedups = {}

    def run():
        rows.clear()
        speedups.clear()
        workload = [(f"H{i:02d}", xpath) for i, xpath in enumerate(DESCENDANT_HEAVY)]
        workload += [(q.key, q.xpath) for q in QUERY_SUITE]
        for key, xpath in workload:
            scalar_s, scalar_result = _best_of(scalar, xpath)
            bulk_s, bulk_result = _best_of(bulk, xpath)
            assert scalar_result.tolist() == bulk_result.tolist(), key
            speedups[xpath] = scalar_s / bulk_s
            rows.append(
                {
                    "query": key,
                    "results": len(scalar_result),
                    "scalar_ms": f"{scalar_s * 1e3:.2f}",
                    "vectorized_ms": f"{bulk_s * 1e3:.2f}",
                    "speedup": f"{scalar_s / bulk_s:.1f}x",
                }
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        f"engine comparison — {len(bench_doc):,} nodes "
        f"(scalar = instrumented Algorithms 2-4, vectorized = bulk kernels)",
        format_table(rows),
    )
    benchmark.extra_info["contract_min_engine_speedup"] = round(
        min(speedups[xpath] for xpath in DESCENDANT_HEAVY), 2
    )
    for xpath in DESCENDANT_HEAVY:
        assert speedups[xpath] >= 5.0, (
            f"vectorised engine below the 5x contract on {xpath!r}: "
            f"{speedups[xpath]:.1f}x"
        )
